"""Serving worker pool: claims jobs, computes or cache-serves products.

Each worker is a thread in the server process.  The execution path
reuses the operational machinery of earlier layers rather than
reimplementing it:

* frames resolve deterministically from the dataset factories (the
  request is a pure description of content, so the result cache can be
  content-addressed),
* per-frame surface fits go through the shared, thread-safe
  :class:`~repro.core.prep.FramePreparationCache` -- concurrent jobs
  over the same sequence fit each frame once,
* pair jobs run under the PR-1
  :class:`~repro.reliability.degrade.DegradationLadder`: a request that
  cannot run at the planned segment size degrades (re-plan ->
  Horn-Schunck -> interpolation) instead of killing the worker,
* sequence jobs shard their independent pairs over the PR-2 fork pool
  (:func:`~repro.parallel.pairs.track_pairs_in_pool`) when the server
  is configured with ``pool_workers > 1`` -- bit-identical to the
  sequential path,
* every computed pair's :class:`~repro.maspar.cost.CostLedger` merges
  into the server-wide ledger, so ``GET /metrics`` reports modeled
  MasPar seconds and first-class Gaussian-elimination counts for the
  whole serving session.  Cache hits merge nothing -- the absence of
  new GE solves is the observable proof that no recomputation happened.

**Failure handling.**  Workers hold a queue lease while they execute; a
pool supervisor thread renews those leases every ``lease_seconds / 3``,
runs the queue reaper, and respawns any worker thread that died.  A job
that raises is handed back to the queue (``fail``), which retries it
with backoff or quarantines it dead -- the server never dies on a
poisoned request.  An injected :class:`ChaosWorkerCrash` is the one
exception the loop does *not* absorb into the job: the thread dies with
the job still leased, so recovery must flow through the reap -> requeue
-> respawn machinery this pool exists to prove out.

Workers block on the queue's condition variable (``claim`` with no
timeout) rather than polling, so an idle pool costs nothing until a
submit, retry expiry, or shutdown wakes it.
"""

from __future__ import annotations

import logging
import threading
import time

import numpy as np

from ..core.field import MotionField
from ..core.matching import valid_mask
from ..core.sma import SMAnalyzer
from ..data.datasets import Dataset
from ..obs.log import get_logger, log_context, log_event
from ..obs.metrics import METRICS
from ..obs.tracing import TRACER
from ..parallel.memory_plan import max_feasible_segment_rows
from ..parallel.parallel_sma import machine_for_image
from ..reliability.degrade import DegradationLadder
from ..reliability.injection import ChaosWorkerCrash, ServeChaosPlan
from .cache import result_key
from .jobs import Job

_LOG = get_logger("serve")


def _dataset_for(job: Job) -> Dataset:
    from ..data.datasets import florida_thunderstorm, hurricane_frederic, hurricane_luis

    factories = {
        "florida": florida_thunderstorm,
        "frederic": hurricane_frederic,
        "luis": hurricane_luis,
    }
    request = job.request
    return factories[request.dataset](
        size=request.size, n_frames=request.frames, seed=request.seed
    )


class WorkerPool:
    """Supervised thread pool that drains the job queue.

    ``poll_seconds`` survives as the pause-check interval only; idle
    workers no longer poll -- they block in ``queue.claim``.
    """

    def __init__(
        self,
        app,
        workers: int = 2,
        poll_seconds: float = 0.2,
        chaos: ServeChaosPlan | None = None,
    ) -> None:
        if workers < 0:
            raise ValueError("workers must be >= 0")
        self.app = app
        self.workers = workers
        self.poll_seconds = poll_seconds
        #: Fleet mode prefixes worker identities with the node id
        #: (``<node>/serve-worker-N``) so leases, reaping, and flight
        #: events attribute to the right node across the fleet.
        node = getattr(app, "node", None)
        self.worker_prefix = f"{node}/" if node else ""
        self.chaos = chaos if chaos is not None and not chaos.is_empty else None
        self._threads: list[threading.Thread] = []
        self._supervisor: threading.Thread | None = None
        self._stop = threading.Event()
        self._paused = threading.Event()
        #: thread name -> (job id, lease token); the supervisor renews
        #: these leases.  An entry disappears when the attempt finishes
        #: *or the thread dies* (``finally``), after which the lease
        #: expires and the reaper requeues the job.
        self._executing: dict[str, tuple[str, str]] = {}
        self._exec_lock = threading.Lock()
        #: Worker thread names asked to exit for a rolling restart.
        self._rolling: set[str] = set()

    # -- lifecycle --------------------------------------------------------------------

    def start(self) -> None:
        for index in range(self.workers):
            self._threads.append(self._spawn(index))
        # The supervisor runs even with zero workers: a worker-less
        # fleet frontend still renews nothing but must *reap* -- it may
        # be the surviving node that requeues a dead node's leases --
        # and still heartbeats its registry entry.
        self._supervisor = threading.Thread(
            target=self._supervise, name="serve-supervisor", daemon=True
        )
        self._supervisor.start()

    def _spawn(self, slot: int) -> threading.Thread:
        thread = threading.Thread(
            target=self._loop,
            name=f"{self.worker_prefix}serve-worker-{slot}",
            daemon=True,
        )
        thread.start()
        return thread

    def active_jobs(self) -> int:
        """Jobs this pool is executing right now (heartbeat payload)."""
        with self._exec_lock:
            return len(self._executing)

    def stop(self) -> None:
        self._stop.set()
        self.app.queue.close()
        for thread in self._threads:
            thread.join()
        self._threads.clear()
        if self._supervisor is not None:
            self._supervisor.join()
            self._supervisor = None

    def pause(self) -> None:
        """Stop claiming new jobs (running jobs finish); for tests/drain."""
        self._paused.set()

    def resume(self) -> None:
        self._paused.clear()

    @property
    def paused(self) -> bool:
        return self._paused.is_set()

    def restart_workers(self) -> int:
        """Rolling restart: signal each worker to exit after its current
        job; the supervisor respawns the slots.  Returns the count
        signaled."""
        count = len(self._threads)
        with self._exec_lock:
            for thread in self._threads:
                self._rolling.add(thread.name)
        return count

    # -- the supervisor ---------------------------------------------------------------

    def _supervise(self) -> None:
        """Renew leases, reap expired ones, respawn dead worker slots."""
        interval = max(0.05, self.app.queue.lease_seconds / 3.0)
        while not self._stop.wait(interval):
            with self._exec_lock:
                entries = list(self._executing.values())
            for job_id, token in entries:
                self.app.queue.renew(job_id, token)
            self.app.queue.reap()
            heartbeat = getattr(self.app, "publish_node_heartbeat", None)
            if heartbeat is not None:
                heartbeat()
            for slot, thread in enumerate(self._threads):
                if self._stop.is_set():
                    break
                if not thread.is_alive():
                    replacement = self._spawn(slot)
                    self._threads[slot] = replacement
                    METRICS.inc("serve.workers.restarted")
                    log_event(
                        _LOG, logging.WARNING, "serve.worker_restarted",
                        slot=slot, died=thread.name, spawned=replacement.name,
                    )

    # -- the worker loop --------------------------------------------------------------

    def _loop(self) -> None:
        name = threading.current_thread().name
        while not self._stop.is_set():
            if self._paused.is_set():
                self._stop.wait(self.poll_seconds)
                continue
            with self._exec_lock:
                rolling = name in self._rolling
                self._rolling.discard(name)
            if rolling:  # rolling restart: exit; the supervisor respawns the slot
                return
            job = self.app.queue.claim(timeout=None, worker=name)
            if job is None:
                if self._stop.is_set() or self.app.queue.closed:
                    return
                continue
            token = job.lease_token
            with self._exec_lock:
                self._executing[name] = (job.id, token)
            try:
                # Every log line this attempt emits -- including from
                # library layers that know nothing about serving --
                # carries the job and trace identifiers.
                with log_context(job=job.id, trace=job.trace_id):
                    self.execute(job)
            except ChaosWorkerCrash as crash:
                # Simulated thread death: the job stays leased, the
                # supervisor's reaper requeues it, the supervisor
                # respawns this slot.  Do NOT fail the job here.
                METRICS.inc("serve.chaos.worker_crashes")
                log_event(
                    _LOG, logging.ERROR, "serve.chaos_worker_crash",
                    job=job.id, worker=name, error=str(crash),
                )
                return
            except Exception as exc:  # noqa: BLE001 -- the server must survive
                self.app.queue.fail(
                    job.id, f"{type(exc).__name__}: {exc}", lease_token=token
                )
                METRICS.inc("serve.jobs.failed")
                log_event(
                    _LOG, logging.ERROR, "serve.job_failed", job=job.id, error=str(exc)
                )
            finally:
                with self._exec_lock:
                    self._executing.pop(name, None)

    # -- job execution ----------------------------------------------------------------

    def _flight(self, event: str, job: Job, **fields) -> None:
        """Worker-side lifecycle events into the app's flight recorder."""
        recorder = getattr(self.app, "recorder", None)
        if recorder is None:
            return
        try:
            recorder.record(
                event, job.id, trace_id=job.trace_id, attempt=job.attempts,
                worker=threading.current_thread().name, **fields,
            )
        except OSError:
            METRICS.inc("serve.flight.write_errors")

    def execute(self, job: Job) -> None:
        """Resolve one job: result cache first, compute on miss.

        Chaos (when armed) strikes first, before any frame resolves --
        it can delay or kill an *attempt* but never touch the product.
        """
        token = job.lease_token
        if self.chaos is not None:
            applied = self.chaos.apply(job.seq, job.attempts)
            if applied == "stall":
                METRICS.inc("serve.chaos.stalls")
        with TRACER.span("serve.job", job=job.id, kind=job.request.kind):
            dataset = _dataset_for(job)
            request = job.request
            config = dataset.config.replace(n_zs=request.search, n_zt=request.template)
            if request.kind == "pair":
                frames = dataset.frames[request.pair : request.pair + 2]
            else:
                frames = list(dataset.frames)
            key = result_key(
                frames,
                config,
                dataset.pixel_km,
                kind=request.kind,
                search=request.search_mode,
                backend=request.backend,
            )

            cached = self.app.cache.get(key)
            if cached is not None:
                self._flight("cache_hit", job, key=key)
                done = self.app.queue.complete(
                    job.id, lease_token=token, cache_hit=True, result_key=key,
                    metadata={"model": cached.metadata.get("model")},
                )
                if done is not None:
                    METRICS.inc("serve.jobs.completed")
                    log_event(_LOG, logging.INFO, "serve.cache_hit", job=job.id, key=key)
                return

            compute_started = time.perf_counter()
            if request.kind == "pair":
                field, rung = self._compute_pair(
                    frames, config, dataset.pixel_km, request.search_mode,
                    request.backend,
                )
            else:
                field, rung = self._compute_sequence(
                    frames, config, dataset.pixel_km, request.search_mode,
                    request.backend,
                )
            compute_seconds = time.perf_counter() - compute_started
            METRICS.observe("serve.compute.seconds", compute_seconds)
            self._flight("compute", job, seconds=round(compute_seconds, 6), rung=rung)
            write_started = time.perf_counter()
            self.app.cache.put(key, field)
            write_seconds = time.perf_counter() - write_started
            METRICS.observe("serve.cache.write_seconds", write_seconds)
            self._flight(
                "cache_write", job, seconds=round(write_seconds, 6), key=key
            )
            self.app.publish_ledger_gauges()
            done = self.app.queue.complete(
                job.id, lease_token=token, cache_hit=False, result_key=key, rung=rung,
                metadata={"model": field.metadata.get("model")},
            )
            if done is not None:
                METRICS.inc("serve.jobs.completed")
                log_event(_LOG, logging.INFO, "serve.computed", job=job.id, key=key)

    def _compute_pair(
        self,
        frames,
        config,
        pixel_km,
        search_mode: str = "exhaustive",
        backend: str = "auto",
    ) -> tuple[MotionField, int]:
        """One frame pair under the degradation ladder (bit-identical to
        ``track_dense`` on the healthy rung 0)."""
        before, after = frames
        shape = before.shape
        machine = machine_for_image(shape)
        layers = machine.layers_for_image(*shape)
        planned = max(1, max_feasible_segment_rows(config, layers, machine))
        dt = after.time_seconds - before.time_seconds
        if dt <= 0:
            dt = 1.0
        ladder = DegradationLadder(
            config,
            hs_iterations=self.app.hs_iterations,
            search=search_mode,
            backend=backend,
        )
        result, steps = ladder.track_pair(
            before.surface,
            after.surface,
            machine,
            planned,
            dt_seconds=dt,
            intensity_before=before.intensity,
            intensity_after=after.intensity,
            prep_cache=self.app.prep_cache,
        )
        if steps:
            METRICS.inc("serve.jobs.degraded")
        if result.ledger is not None:
            self.app.merge_ledger(result.ledger)
        field = MotionField(
            u=result.u,
            v=result.v,
            valid=valid_mask(shape, config),
            error=result.error,
            dt_seconds=float(dt),
            pixel_km=pixel_km,
            metadata={
                "model": "semi-fluid" if config.is_semifluid else "continuous",
                "config": config.name,
                "rung": result.rung,
                "search": search_mode,
                "backend": backend,
            },
        )
        return field, result.rung

    def _compute_sequence(
        self,
        frames,
        config,
        pixel_km,
        search_mode: str = "exhaustive",
        backend: str = "auto",
    ) -> tuple[MotionField, int]:
        """Mean field over all pairs; fork-pool sharded when configured."""
        analyzer = SMAnalyzer(
            config, pixel_km=pixel_km, search=search_mode, backend=backend
        )
        fields = analyzer.track_sequence(
            frames,
            workers=self.app.pool_workers,
            transport=getattr(self.app, "transport", "pickle"),
        )
        shape = frames[0].shape
        n = len(fields)
        sum_u = np.zeros(shape, dtype=np.float64)
        sum_v = np.zeros(shape, dtype=np.float64)
        sum_error = np.zeros(shape, dtype=np.float64)
        for f in fields:
            sum_u += f.u
            sum_v += f.v
            sum_error += f.error
        dts = []
        for m in range(n):
            dt = frames[m + 1].time_seconds - frames[m].time_seconds
            dts.append(dt if dt > 0 else 1.0)
        field = MotionField(
            u=sum_u / n,
            v=sum_v / n,
            valid=valid_mask(shape, config),
            error=sum_error / n,
            dt_seconds=float(np.mean(dts)),
            pixel_km=pixel_km,
            metadata={
                "model": "semi-fluid" if config.is_semifluid else "continuous",
                "config": config.name,
                "pairs": n,
                "search": search_mode,
                "backend": backend,
            },
        )
        return field, 0
