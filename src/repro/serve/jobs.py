"""Job model for the serving layer.

A job asks the server for one wind product over a paper-analogue
dataset: either the dense motion field of one frame **pair** (the
paper's Section 5 unit of work) or the time-mean field of a short
**sequence** (the streaming climatology product).  Requests are
validated at the admission boundary -- the serving threads must never
see a payload that can take the process down -- and canonicalized into
a deterministic **fingerprint** used for queue-level deduplication.

Fault injection is never a *request* feature: a payload carrying fault
keys is refused outright with a 400-style error rather than silently
ignored.  Serve-mode chaos exists, but only as explicit server-side
configuration (``repro serve --chaos``), so a client can never ask a
server to sabotage itself.

Lifecycle: an accepted job is always in exactly one of ``pending``
(queued), ``running`` (claimed under a live lease), ``retrying``
(failed or reaped, waiting out its backoff), ``done``, or ``dead``
(attempt budget exhausted -- quarantined in the dead-letter set until
an operator requeues it).  ``failed`` appears only in legacy journals
and restores as ``dead``.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass, field

#: Dataset keys the serving layer accepts (mirrors ``repro.cli``).
SERVABLE_DATASETS = ("florida", "frederic", "luis")

#: Job kinds: one frame pair, or the mean field of a whole sequence.
JOB_KINDS = ("pair", "sequence")

#: Request keys that belong to the offline fault-injection harness.
_FAULT_KEYS = frozenset({"inject_faults", "fault_seed", "faults", "fault_plan"})

#: Job lifecycle states.  ``retrying`` is a failed/reaped job waiting
#: out its backoff; ``dead`` is the dead-letter quarantine (attempt
#: budget exhausted).  Legacy ``failed`` journals restore as ``dead``.
JOB_STATES = ("pending", "running", "retrying", "done", "dead")

#: States that count as accepted-but-unfinished (the drain gate).
ACTIVE_STATES = ("pending", "running", "retrying")

#: Hypothesis schedules a served job may request.  Pyramid is refused:
#: served products promise bit-identity with the reference pipeline.
SERVABLE_SEARCH_MODES = ("exhaustive", "pruned")

#: Kernel backends a served job may request.  These are exactly the
#: bit-identical backends (:data:`repro.kernels.BITWISE_BACKENDS`);
#: ``"device"`` is refused for the same reason pyramid is.
SERVABLE_BACKENDS = ("auto", "numpy", "native")


class JobValidationError(ValueError):
    """A request the admission boundary refuses to queue."""


@dataclass(frozen=True)
class ServeLimits:
    """Admission-control envelope for job requests."""

    max_size: int = 128
    max_frames: int = 16
    max_search: int = 4
    max_template: int = 6


@dataclass(frozen=True)
class JobRequest:
    """One validated unit of servable work.

    ``pair`` indexes the requested frame pair for ``kind="pair"``;
    sequence jobs always cover all ``frames - 1`` pairs.
    """

    dataset: str
    size: int = 64
    frames: int = 2
    seed: int = 0
    pair: int = 0
    search: int = 2
    template: int = 3
    kind: str = "pair"
    search_mode: str = "exhaustive"
    backend: str = "auto"

    def __post_init__(self) -> None:
        if self.dataset not in SERVABLE_DATASETS:
            raise JobValidationError(
                f"unknown dataset {self.dataset!r} "
                f"(choose from {', '.join(SERVABLE_DATASETS)})"
            )
        if self.kind not in JOB_KINDS:
            raise JobValidationError(
                f"unknown job kind {self.kind!r} (choose from {', '.join(JOB_KINDS)})"
            )
        if self.search_mode not in SERVABLE_SEARCH_MODES:
            raise JobValidationError(
                f"unknown search_mode {self.search_mode!r} "
                f"(choose from {', '.join(SERVABLE_SEARCH_MODES)}; the approximate "
                "pyramid schedule is not servable)"
            )
        if self.backend not in SERVABLE_BACKENDS:
            raise JobValidationError(
                f"unknown backend {self.backend!r} "
                f"(choose from {', '.join(SERVABLE_BACKENDS)}; the "
                "tolerance-equivalent device backend is not servable)"
            )
        for name in ("size", "frames", "seed", "pair", "search", "template"):
            if not isinstance(getattr(self, name), int):
                raise JobValidationError(f"{name} must be an integer")
        if self.frames < 2:
            raise JobValidationError("frames must be >= 2")
        if not 0 <= self.pair < self.frames - 1:
            raise JobValidationError(
                f"pair must be in [0, {self.frames - 2}] for {self.frames} frames"
            )
        if self.size < 16:
            raise JobValidationError("size must be >= 16")
        if self.search < 1 or self.template < 1:
            raise JobValidationError("search and template must be >= 1")

    @classmethod
    def from_payload(
        cls, payload: dict, limits: ServeLimits | None = None
    ) -> "JobRequest":
        """Parse an untrusted JSON payload into a validated request.

        Unknown keys are refused (a typo must not silently change the
        product), fault-injection keys are refused *loudly*, and the
        admission limits bound the work a single request can demand.
        ``priority`` is queue metadata, not part of the request content,
        and is handled by the caller.
        """
        if not isinstance(payload, dict):
            raise JobValidationError("request body must be a JSON object")
        payload = dict(payload)
        payload.pop("priority", None)
        bad_fault = _FAULT_KEYS.intersection(payload)
        if bad_fault:
            raise JobValidationError(
                f"fault injection is refused in serve mode (got {sorted(bad_fault)}); "
                "chaos is server-side configuration ('repro serve --chaos'), or use "
                "'repro stream --inject-faults' for offline fault-tolerance testing"
            )
        allowed = set(cls.__dataclass_fields__)
        unknown = set(payload) - allowed
        if unknown:
            raise JobValidationError(
                f"unknown request field(s) {sorted(unknown)} "
                f"(allowed: {sorted(allowed)} + priority)"
            )
        if "dataset" not in payload:
            raise JobValidationError("request must name a dataset")
        request = cls(**payload)
        limits = limits or ServeLimits()
        if request.size > limits.max_size:
            raise JobValidationError(
                f"size {request.size} exceeds the admission limit {limits.max_size}"
            )
        if request.frames > limits.max_frames:
            raise JobValidationError(
                f"frames {request.frames} exceeds the admission limit {limits.max_frames}"
            )
        if request.search > limits.max_search or request.template > limits.max_template:
            raise JobValidationError(
                f"search/template ({request.search}/{request.template}) exceed the "
                f"admission limits ({limits.max_search}/{limits.max_template})"
            )
        return request

    def canonical(self) -> dict:
        """Sorted-key dict form -- the deduplication identity."""
        return dict(sorted(asdict(self).items()))

    def fingerprint(self) -> str:
        """Deterministic digest of the canonical request content."""
        blob = json.dumps(self.canonical(), sort_keys=True).encode()
        return hashlib.blake2b(blob, digest_size=16).hexdigest()


@dataclass
class Job:
    """A queued request plus its lifecycle bookkeeping."""

    id: str
    request: JobRequest
    priority: int = 0
    seq: int = 0
    state: str = "pending"
    #: Opaque lifecycle-trace identifier assigned at submission; ties
    #: flight-recorder events, structured logs, and ``GET
    #: /v1/jobs/{id}/trace`` together across workers and restarts.
    trace_id: str = ""
    submitted_at: float = 0.0
    started_at: float | None = None
    finished_at: float | None = None
    cache_hit: bool = False
    result_key: str | None = None
    rung: int | None = None
    error: str | None = None
    queue_wait_seconds: float | None = None
    wall_seconds: float | None = None
    #: Execution attempts so far (claims, including reaped/failed ones).
    attempts: int = 0
    #: Lease bookkeeping while ``running``: the claiming worker's name,
    #: an opaque token stale completions must match, and the heartbeat
    #: deadline the reaper enforces.
    worker: str | None = None
    lease_token: str | None = None
    lease_deadline: float | None = None
    #: Earliest wall-clock time a ``retrying`` job may be claimed again.
    not_before: float | None = None
    metadata: dict = field(default_factory=dict)

    @property
    def done(self) -> bool:
        return self.state in ("done", "dead")

    def to_dict(self) -> dict:
        """JSON-ready status payload (also the persistence record)."""
        return {
            "id": self.id,
            "request": self.request.canonical(),
            "priority": self.priority,
            "seq": self.seq,
            "state": self.state,
            "trace_id": self.trace_id,
            "submitted_at": self.submitted_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "cache_hit": self.cache_hit,
            "result_key": self.result_key,
            "rung": self.rung,
            "error": self.error,
            "queue_wait_seconds": self.queue_wait_seconds,
            "wall_seconds": self.wall_seconds,
            "attempts": self.attempts,
            "worker": self.worker,
            "lease_token": self.lease_token,
            "lease_deadline": self.lease_deadline,
            "not_before": self.not_before,
            "metadata": self.metadata,
        }

    @classmethod
    def from_dict(cls, payload: dict, *, revoke_lease: bool = True) -> "Job":
        """Inverse of :meth:`to_dict`.

        With ``revoke_lease`` (the single-process restart default), a
        job persisted mid-run comes back ``pending`` with its lease
        revoked but its attempt count intact: the restarted server
        re-executes it from scratch (the computation is a pure function
        of the request, so the product is unaffected) and the crashed
        attempt still counts against the retry budget, so a job that
        crashes the server on every attempt ends up ``dead``, not in a
        crash loop.  Legacy terminal ``failed`` restores as ``dead``.

        The shared fleet store passes ``revoke_lease=False``: a job
        running on *another* node must stay leased to that node when
        this process (re)loads the shared state -- lease expiry, not
        process restart, is the fleet-wide truth about worker death.
        """
        state = payload["state"]
        started = payload.get("started_at")
        worker = payload.get("worker")
        lease_token = payload.get("lease_token")
        lease_deadline = payload.get("lease_deadline")
        if state == "running" and revoke_lease:
            state, started = "pending", None
            worker = lease_token = lease_deadline = None
        elif state == "failed":
            state = "dead"
        return cls(
            id=payload["id"],
            request=JobRequest(**payload["request"]),
            priority=payload["priority"],
            seq=payload["seq"],
            state=state,
            trace_id=payload.get("trace_id", ""),
            submitted_at=payload["submitted_at"],
            started_at=started,
            finished_at=payload.get("finished_at"),
            cache_hit=payload.get("cache_hit", False),
            result_key=payload.get("result_key"),
            rung=payload.get("rung"),
            error=payload.get("error"),
            queue_wait_seconds=payload.get("queue_wait_seconds"),
            wall_seconds=payload.get("wall_seconds"),
            attempts=payload.get("attempts", 0),
            worker=worker,
            lease_token=lease_token,
            lease_deadline=lease_deadline,
            not_before=payload.get("not_before"),
            metadata=payload.get("metadata", {}),
        )
