"""Production serving layer: job queue, result cache, HTTP wind-product API.

The ROADMAP's north star is a system that serves wind products to heavy
traffic, but the rest of the repo runs one-shot CLI invocations.  This
package is the missing operational layer -- stdlib-only, in the spirit
of real-time deployments of this algorithm family (embedded PIV
pipelines, operational cloud-motion forecasting):

* :mod:`repro.serve.jobs`    -- the validated job request model and its
  canonical dedup fingerprint,
* :mod:`repro.serve.queue`   -- a durable priority job queue with
  request deduplication, bounded depth (explicit backpressure), and
  atomic on-disk persistence so a restarted server resumes pending work,
* :mod:`repro.serve.cache`   -- a content-addressed result cache keyed
  on frame fingerprints + SMA parameters (LRU under a byte budget,
  atomic ``.npz`` artifacts), so identical requests never recompute,
* :mod:`repro.serve.workers` -- a worker pool executing jobs under the
  PR-1 degradation ladder (a poisoned request degrades or fails alone;
  the server survives) with the PR-2 preparation cache and fork-pool
  pair sharding for sequence jobs,
* :mod:`repro.serve.http`    -- the HTTP API (``POST /v1/jobs``,
  ``GET /v1/jobs/{id}``, ``GET /v1/products/{id}``, ``GET /healthz``,
  ``GET /metrics``) wired to :mod:`repro.obs`, plus graceful drain.

``repro serve`` is the CLI entry point; see ``docs/serving.md``.
"""

from __future__ import annotations

from .cache import ResultCache, result_key
from .http import ServeApp, make_server
from .jobs import Job, JobRequest, JobValidationError, ServeLimits
from .queue import JobQueue, QueueFullError
from .workers import WorkerPool

__all__ = [
    "Job",
    "JobQueue",
    "JobRequest",
    "JobValidationError",
    "QueueFullError",
    "ResultCache",
    "ServeApp",
    "ServeLimits",
    "WorkerPool",
    "make_server",
    "result_key",
]
