"""Production serving layer: job queue, result cache, HTTP wind-product API.

The ROADMAP's north star is a system that serves wind products to heavy
traffic, but the rest of the repo runs one-shot CLI invocations.  This
package is the missing operational layer -- stdlib-only, in the spirit
of real-time deployments of this algorithm family (embedded PIV
pipelines, operational cloud-motion forecasting):

* :mod:`repro.serve.jobs`    -- the validated job request model and its
  canonical dedup fingerprint,
* :mod:`repro.serve.queue`   -- a durable priority job queue with
  request deduplication, bounded depth (explicit backpressure), lease
  grants with heartbeat reaping, bounded retry with exponential backoff,
  a dead-letter quarantine, and a checksummed write-ahead journal with
  torn-write-tolerant replay so a killed-and-restarted server resumes
  every accepted job,
* :mod:`repro.serve.cache`   -- a content-addressed result cache keyed
  on frame fingerprints + SMA parameters (LRU under a byte budget,
  atomic ``.npz`` artifacts), so identical requests never recompute,
* :mod:`repro.serve.workers` -- a supervised worker pool executing jobs
  under the PR-1 degradation ladder (a poisoned request degrades or
  dead-letters alone; the server survives), renewing queue leases via a
  supervisor thread that also respawns crashed workers, with the PR-2
  preparation cache and fork-pool pair sharding for sequence jobs,
* :mod:`repro.serve.slo`     -- latency/error-rate objectives with
  rolling burn rates (``serve.slo.*`` gauges) and the ``/healthz``
  breach verdict,
* :mod:`repro.serve.http`    -- the HTTP API (``POST /v1/jobs``,
  ``GET /v1/jobs[?state=dead]``, ``GET /v1/jobs/{id}/trace``,
  ``POST /v1/jobs/{id}/requeue``, ``GET /v1/products/{id}``,
  ``GET /healthz``, ``GET /metrics`` with Prometheus content
  negotiation) wired to :mod:`repro.obs`, plus graceful drain and the
  crash-safe flight recorder (:mod:`repro.obs.events`),
* :mod:`repro.serve.store`   -- the fleet layer: a cross-process
  :class:`SharedJobStore` (many ``repro serve-worker`` nodes over one
  state directory, flock-serialized WAL replication, fleet-wide dedup
  and lease reaping) and the :class:`NodeRegistry` heartbeat roster,
* :mod:`repro.serve.frontend` -- the asyncio HTTP frontend: one event
  loop multiplexing thousands of clients over the shared
  :func:`~repro.serve.http.route` dispatcher, byte-identical responses
  to the threaded server.

Serve-mode chaos (``repro serve --chaos``) arms a seeded
:class:`~repro.reliability.injection.ServeChaosPlan` that crashes,
stalls, and transiently fails workers deterministically -- the test
harness for all of the above.  ``repro serve`` is the CLI entry point
and ``repro serve-admin`` the dead-letter console; see
``docs/serving.md``.
"""

from __future__ import annotations

from ..reliability.injection import ServeChaosPlan
from .cache import ResultCache, result_key
from .frontend import AsyncFrontend, make_async_server
from .http import ServeApp, make_server, route
from .jobs import ACTIVE_STATES, JOB_STATES, Job, JobRequest, JobValidationError, ServeLimits
from .queue import (
    JobQueue,
    LoadShedError,
    LoadShedPolicy,
    QueueFullError,
    QueueJournal,
)
from .slo import SLOConfig, SLOTracker
from .store import NodeRegistry, SharedJobStore, default_node_id
from .workers import WorkerPool

__all__ = [
    "ACTIVE_STATES",
    "AsyncFrontend",
    "JOB_STATES",
    "Job",
    "JobQueue",
    "JobRequest",
    "JobValidationError",
    "LoadShedError",
    "LoadShedPolicy",
    "NodeRegistry",
    "QueueFullError",
    "QueueJournal",
    "ResultCache",
    "SLOConfig",
    "SLOTracker",
    "ServeApp",
    "ServeChaosPlan",
    "ServeLimits",
    "SharedJobStore",
    "WorkerPool",
    "default_node_id",
    "make_async_server",
    "make_server",
    "result_key",
    "route",
]
