"""Content-addressed result cache for served wind products.

Keys are **content** addresses, not request addresses: a digest of the
frame fingerprints (:func:`repro.core.prep.frame_fingerprint` -- raw
pixel bytes plus the fit window) together with every SMA parameter
that shapes the product (search/template widths, model selection, dt,
ground sample distance, job kind).  Two requests that resolve to the
same frames and parameters share one entry even if their request
payloads differ, and any parameter change misses -- the cached field
IS the field the computation would produce.

Artifacts are ``MotionField`` ``.npz`` archives written through
:func:`repro.ioutil.atomic_savez` (a crash never leaves a truncated
artifact), and the LRU index is itself persisted atomically so a
restarted server keeps its warm cache.  Eviction is by byte budget:
least-recently-used entries fall off until the artifact bytes fit.

**Fleet sharing.**  A fleet of serve nodes points every node at the
same cache root, and the *disk* -- not any node's in-memory index --
is the source of truth.  Publication is single-writer-wins: artifacts
land via ``os.replace`` of a unique temp file, so two nodes racing to
publish the same key leave exactly one complete artifact (and since
the product is a pure function of the key's content, the bytes are
identical whichever writer wins -- the loser detects the race, counts
``serve.cache.races``, and skips its redundant write).  A lookup that
misses the local index but finds the artifact on disk **adopts** the
other node's publication (``serve.cache.adopted``) and serves it as a
hit: a product computed on any node is a cache hit on every node.
Index files are per-node last-writer-wins and self-healing -- a lost
index entry is re-adopted from disk on the next lookup.
"""

from __future__ import annotations

import hashlib
import json
import os
import threading
from collections import OrderedDict
from typing import Sequence

from ..core.field import MotionField
from ..core.prep import frame_fingerprint
from ..core.sma import Frame
from ..ioutil import atomic_write_text
from ..obs.metrics import METRICS
from ..params import NeighborhoodConfig

#: On-disk schema version for the persisted cache index.
INDEX_VERSION = 1


def result_key(
    frames: Sequence[Frame],
    config: NeighborhoodConfig,
    pixel_km: float,
    kind: str = "pair",
    search: str = "exhaustive",
    backend: str = "auto",
) -> str:
    """Content address of one product: frame fingerprints + SMA params.

    The per-frame fingerprint already covers the pixel bytes and the
    fit half-width ``n_w``; the remaining dimensions of the product --
    the search/template neighborhoods, the semi-fluid windows, the
    frame timestamps (they set dt, hence wind speeds), the ground
    sample distance, the product kind, the hypothesis schedule and the
    kernel backend -- are digested alongside.  The schedule and backend
    tokens are part of the key even though ``"pruned"`` fields are
    bit-identical to ``"exhaustive"`` (and every servable backend is
    bit-identical to NumPy): the artifact's metadata records how it was
    produced, and keeping the modes separate means a cached product
    never misreports its provenance (the cost is one cold recomputation
    per mode).
    """
    h = hashlib.blake2b(digest_size=20)
    c = config
    h.update(
        f"kind={kind};cfg={c.name};zs={c.n_zs};zt={c.n_zt};"
        f"ss={c.n_ss};st={c.n_st};pixel_km={pixel_km!r};search={search};"
        f"backend={backend};".encode()
    )
    for frame in frames:
        h.update(frame_fingerprint(frame.surface, frame.intensity, config).encode())
        h.update(f"@t={frame.time_seconds!r};".encode())
    return h.hexdigest()


class ResultCache:
    """LRU cache of motion-field artifacts under a byte budget."""

    def __init__(self, root: str, max_bytes: int = 256 * 1024 * 1024) -> None:
        if max_bytes < 1:
            raise ValueError("max_bytes must be >= 1")
        self.root = root
        self.max_bytes = max_bytes
        self._lock = threading.Lock()
        #: key -> artifact size in bytes, insertion order == LRU order.
        self._index: OrderedDict[str, int] = OrderedDict()
        os.makedirs(root, exist_ok=True)
        self._restore()

    # -- lookup/store -----------------------------------------------------------------

    def get(self, key: str, record: bool = True) -> MotionField | None:
        """The cached field, or None; a hit refreshes LRU recency.

        ``record=False`` skips the hit/miss metrics -- product-read
        lookups use it so the ``serve.cache.*`` counters measure only
        whether *job executions* were spared recomputation.
        """
        with self._lock:
            size = self._index.get(key)
            path = self._artifact_path(key)
            if size is None and os.path.exists(path):
                # Published by another fleet node: adopt its artifact.
                size = self._adopt_locked(key, path)
            if size is None or not os.path.exists(path):
                if size is not None:
                    # Artifact vanished underneath the index (operator
                    # cleanup or a peer's eviction); drop the stale
                    # entry rather than 500.
                    del self._index[key]
                    self._persist_index()
                if record:
                    METRICS.inc("serve.cache.miss")
                return None
            self._index.move_to_end(key)
            self._persist_index()
        if record:
            METRICS.inc("serve.cache.hit")
        return MotionField.load(path)

    def put(self, key: str, field: MotionField) -> str:
        """Store one product; evicts LRU entries over the byte budget.

        Single-writer-wins across the fleet: when the artifact already
        exists on disk another node published this key first, and
        (because the product is a pure function of the content address)
        its bytes are the bytes we would write -- so the write is
        skipped and the existing artifact adopted instead of replaced.
        """
        path = self._artifact_path(key)
        if os.path.exists(path):
            METRICS.inc("serve.cache.races")
        else:
            field.save(path)
        size = os.path.getsize(path)
        with self._lock:
            self._index[key] = size
            self._index.move_to_end(key)
            while self.total_bytes_locked() > self.max_bytes and len(self._index) > 1:
                old_key, _ = self._index.popitem(last=False)
                self._remove_artifact(old_key)
                METRICS.inc("serve.cache.evictions")
            self._persist_index()
            METRICS.set_gauge("serve.cache.bytes", float(self.total_bytes_locked()))
            METRICS.set_gauge("serve.cache.entries", float(len(self._index)))
        return path

    def contains(self, key: str) -> bool:
        """Resident locally *or published by any fleet node* (disk is
        the source of truth; an on-disk artifact is adopted)."""
        with self._lock:
            if key in self._index:
                return True
            path = self._artifact_path(key)
            if os.path.exists(path):
                self._adopt_locked(key, path)
                return True
            return False

    def __len__(self) -> int:
        with self._lock:
            return len(self._index)

    def total_bytes(self) -> int:
        with self._lock:
            return self.total_bytes_locked()

    def total_bytes_locked(self) -> int:
        return sum(self._index.values())

    def artifact_path(self, key: str) -> str | None:
        """Path of a cached artifact, or None if not published anywhere
        in the fleet (peer publications are adopted on sight)."""
        with self._lock:
            path = self._artifact_path(key)
            if key not in self._index:
                if not os.path.exists(path):
                    return None
                self._adopt_locked(key, path)
        return path

    # -- persistence ------------------------------------------------------------------

    def _index_path(self) -> str:
        return os.path.join(self.root, "index.json")

    def _artifact_path(self, key: str) -> str:
        return os.path.join(self.root, f"{key}.npz")

    def _persist_index(self) -> None:
        payload = {
            "version": INDEX_VERSION,
            "max_bytes": self.max_bytes,
            "entries": [[key, size] for key, size in self._index.items()],
        }
        atomic_write_text(self._index_path(), json.dumps(payload, sort_keys=True))

    def _restore(self) -> None:
        path = self._index_path()
        if not os.path.exists(path):
            return
        with open(path, encoding="utf-8") as handle:
            payload = json.load(handle)
        if payload.get("version") != INDEX_VERSION:
            return  # incompatible index: start cold, artifacts get rewritten
        for key, size in payload.get("entries", []):
            if os.path.exists(self._artifact_path(key)):
                self._index[key] = int(size)
        METRICS.set_gauge("serve.cache.entries", float(len(self._index)))

    def _adopt_locked(self, key: str, path: str) -> int | None:
        """Index an artifact another fleet node published (lock held)."""
        try:
            size = os.path.getsize(path)
        except OSError:
            return None  # evicted between the exists check and here
        self._index[key] = size
        self._persist_index()
        METRICS.inc("serve.cache.adopted")
        METRICS.set_gauge("serve.cache.entries", float(len(self._index)))
        return size

    def _remove_artifact(self, key: str) -> None:
        try:
            os.unlink(self._artifact_path(key))
        except OSError:
            pass
