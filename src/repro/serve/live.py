"""Live serving from a shared-memory frame ring.

:class:`LiveRingConsumer` is the ``repro serve --source ring://NAME``
half of the ingestion story: a background thread attaches the named
:class:`~repro.bus.ring.FrameRing`, tracks each consecutive frame pair
as it arrives (reusing the ring-shipped preparations, so the surface
fits are never redone server-side), and keeps only the most recent
:class:`~repro.core.field.MotionField` for ``GET /v1/live/latest``.

The consumer is deliberately decoupled from the job queue: live fields
are a rolling *now* product, not durable jobs, so they carry no lease,
retry or dead-letter machinery.  Its attach/progress state surfaces on
``/healthz`` under the ``ring`` key.
"""

from __future__ import annotations

import logging
import threading
import time

from ..bus.ring import RingNotFound
from ..bus.source import RingFrameSource
from ..core.prep import FramePreparationCache
from ..core.sma import SMAnalyzer
from ..obs.log import get_logger, log_event
from ..obs.metrics import METRICS
from ..params import LUIS_CONFIG, NeighborhoodConfig

_LOG = get_logger("serve.live")


class LiveRingConsumer:
    """Track pairs off a live ring; expose the latest field and state.

    Parameters
    ----------
    ring_name:
        Name of the ring to attach (the ``NAME`` of ``ring://NAME``).
    config:
        Neighborhood configuration the publisher prepared frames under
        (defaults to the Luis/monocular configuration the synthetic
        ingest source uses).
    attach_timeout:
        How long the background thread waits for the publisher to
        create the ring before recording an attach error.
    idle_timeout:
        Give up after this long without a new frame when the publisher
        has not closed the ring.
    """

    def __init__(
        self,
        ring_name: str,
        config: NeighborhoodConfig | None = None,
        attach_timeout: float = 30.0,
        idle_timeout: float = 60.0,
    ) -> None:
        self.ring_name = ring_name
        self.config = config or LUIS_CONFIG
        self.attach_timeout = attach_timeout
        self.idle_timeout = idle_timeout
        self.pairs = 0
        self.finished = False
        self._lock = threading.Lock()
        self._latest: tuple[int, object] | None = None  # (pair index, MotionField)
        self._latest_at: float | None = None
        self._error: str | None = None
        self._stop = threading.Event()
        self._source: RingFrameSource | None = None
        self._thread: threading.Thread | None = None

    # -- lifecycle --------------------------------------------------------------------

    def start(self) -> "LiveRingConsumer":
        if self._thread is None:
            self._thread = threading.Thread(
                target=self._run, name="serve-live-ring", daemon=True
            )
            self._thread.start()
        return self

    def stop(self, timeout: float = 5.0) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=timeout)

    # -- the consumer loop ------------------------------------------------------------

    def _run(self) -> None:
        try:
            source = RingFrameSource(
                self.ring_name,
                attach_timeout=self.attach_timeout,
                idle_timeout=self.idle_timeout,
                stop_event=self._stop,
            )
        except RingNotFound as exc:
            with self._lock:
                self._error = str(exc)
            log_event(
                _LOG, logging.WARNING, "serve.live.attach_failed",
                ring=self.ring_name, error=str(exc),
            )
            return
        self._source = source
        log_event(
            _LOG, logging.INFO, "serve.live.attached",
            ring=self.ring_name, capacity=source.ring.capacity,
        )
        prep_cache = FramePreparationCache(max_frames=4)
        analyzer: SMAnalyzer | None = None
        prev = None
        try:
            for bus_frame in source.frames():
                if self._stop.is_set():
                    break
                if bus_frame.preparation is not None:
                    prep_cache.seed(bus_frame.preparation)
                if analyzer is None:
                    analyzer = SMAnalyzer(self.config, pixel_km=bus_frame.pixel_km)
                if prev is not None:
                    dt = bus_frame.frame.time_seconds - prev.frame.time_seconds
                    field = analyzer.track_pair(
                        prev.frame,
                        bus_frame.frame,
                        dt_seconds=dt if dt > 0 else 1.0,
                        cache=prep_cache,
                    )
                    field.metadata["source"] = f"ring://{self.ring_name}"
                    field.metadata["seq"] = int(bus_frame.seq)
                    with self._lock:
                        self.pairs += 1
                        self._latest = (self.pairs - 1, field)
                        self._latest_at = time.time()
                    METRICS.inc("serve.live.pairs")
                prev = bus_frame
        except TimeoutError as exc:
            with self._lock:
                self._error = str(exc)
            log_event(
                _LOG, logging.WARNING, "serve.live.idle",
                ring=self.ring_name, error=str(exc),
            )
        finally:
            self.finished = True
            source.close()
            log_event(
                _LOG, logging.INFO, "serve.live.stopped",
                ring=self.ring_name, pairs=self.pairs,
                missed=source.missed, torn=source.torn,
            )

    # -- HTTP-facing surfaces ---------------------------------------------------------

    def state(self) -> dict:
        """The ``ring`` block of ``/healthz``: attach + progress state."""
        with self._lock:
            state = {
                "ring": self.ring_name,
                "attached": self._source is not None,
                "pairs": self.pairs,
                "finished": self.finished,
                "error": self._error,
            }
        if self._source is not None:
            state.update(self._source.state())
        return state

    def latest_payload(self) -> tuple[int, dict]:
        """(HTTP status, body) for ``GET /v1/live/latest``."""
        with self._lock:
            latest, latest_at, error = self._latest, self._latest_at, self._error
        if latest is None:
            if error is not None:
                return 503, {"error": error, "ring": self.ring_name}
            return 202, {"state": "waiting", "ring": self.ring_name}
        index, field = latest
        speed = field.wind_speed()[field.valid]
        mean_u, mean_v = field.mean_displacement()
        return 200, {
            "ring": self.ring_name,
            "pair": index,
            "computed_at": latest_at,
            "shape": list(field.shape),
            "dt_seconds": field.dt_seconds,
            "pixel_km": field.pixel_km,
            "valid_pixels": int(field.valid.sum()),
            "mean_displacement_px": [mean_u, mean_v],
            "mean_speed_ms": float(speed.mean()) if speed.size else None,
            "max_speed_ms": float(speed.max()) if speed.size else None,
            "metadata": field.metadata,
        }


__all__ = ["LiveRingConsumer"]
