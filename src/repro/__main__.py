"""``python -m repro`` -- the command-line interface entry point.

Equivalent to the ``repro`` console script (which requires a
PEP 517-capable install); this path works in any environment where the
package is importable.
"""

import sys

from .cli import main

if __name__ == "__main__":
    sys.exit(main())
