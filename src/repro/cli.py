"""Command-line interface.

A small operational front-end over the library, mirroring what the
paper's production pipeline exposed to forecasters:

* ``repro track``     -- run the SMA tracker on a synthetic dataset and
  save/inspect the motion field,
* ``repro winds``     -- per-cloud-class wind statistics from a saved
  field,
* ``repro machine``   -- the MP-2 description and the modeled Table 2 /
  Table 4 timing rows,
* ``repro datasets``  -- list the available paper-analogue datasets and
  their full-scale parameters,
* ``repro stream``    -- fault-tolerant streaming of a whole frame
  sequence with optional fault injection and checkpoint/resume;
  ``--source ring://NAME`` consumes live frames off a shared-memory
  ring instead of a synthetic dataset (see ``docs/ingestion.md``),
* ``repro ingest``    -- the live publisher: prepare frames (synthetic
  generator, directory tail, or TCP socket) and publish them onto a
  named shared-memory ring at a configurable cadence,
* ``repro serve``     -- the production serving layer: durable job
  queue with leases/retries/dead-letter, content-addressed result
  cache, and the HTTP wind-product API behind an asyncio frontend (see
  ``docs/serving.md``); ``--chaos`` arms seeded worker-fault injection
  for recovery testing and ``--nodes N`` spawns a multi-process fleet
  over the shared state dir,
* ``repro serve-worker`` -- one compute node of a serve fleet: claims
  jobs from the shared state dir under per-node leases, no HTTP
  listener; SIGTERM retires the node without losing fleet work,
* ``repro serve-admin`` -- operator console for a serve deployment:
  list dead-letter jobs and requeue them, over HTTP (``--url``) or
  directly against an offline state directory (``--state-dir``);
  ``flightlog`` merges every node's flight journal chronologically,
* ``repro profile``   -- trace one pair end to end and print the
  per-phase modeled (MasPar) vs measured (host) timing profile.

``repro track`` and ``repro stream`` accept ``--trace out.json`` /
``--metrics out.json`` to export a Chrome-trace (Perfetto-loadable)
span timeline and the metrics registry.

Every command is a pure function of its arguments (no global state), so
the test suite drives :func:`main` directly.
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

import numpy as np

from . import __version__
from .analysis.costmodel import (
    SGISequentialModel,
    speedup,
    table2_model_rows,
    table4_model_rows,
)
from .analysis.report import format_table
from .core.field import MotionField
from .core.sma import SMAnalyzer
from .data.datasets import (
    PAPER_SCALE,
    Dataset,
    florida_thunderstorm,
    hurricane_frederic,
    hurricane_luis,
)
from .maspar.machine import GODDARD_MP2
from .params import FREDERIC_CONFIG, GOES9_CONFIG, LUIS_CONFIG

DATASET_FACTORIES = {
    "frederic": hurricane_frederic,
    "florida": florida_thunderstorm,
    "luis": hurricane_luis,
}

CONFIGS = {
    "frederic": FREDERIC_CONFIG,
    "florida": GOES9_CONFIG,
    "luis": LUIS_CONFIG,
}


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Semi-fluid Motion Analysis (IPPS'96 reproduction)",
    )
    parser.add_argument("--version", action="version", version=f"repro {__version__}")
    sub = parser.add_subparsers(dest="command", required=True)

    track = sub.add_parser("track", help="track a synthetic dataset pair")
    track.add_argument("dataset", choices=sorted(DATASET_FACTORIES))
    track.add_argument("--size", type=int, default=96, help="image side (pixels)")
    track.add_argument("--seed", type=int, default=0)
    track.add_argument("--pair", type=int, default=0, help="frame pair index")
    track.add_argument("--search", type=int, default=3, help="z-search half-width")
    track.add_argument("--template", type=int, default=4, help="z-template half-width")
    track.add_argument(
        "--search-mode", choices=("exhaustive", "pruned", "pyramid"),
        default="exhaustive",
        help="hypothesis schedule: 'pruned' is bit-identical with fewer GE "
        "solves; 'pyramid' is approximate coarse-to-fine (continuous model only)",
    )
    track.add_argument(
        "--backend", choices=("auto", "numpy", "native", "device"), default="auto",
        help="kernel backend: 'auto' picks the native C kernel when available "
        "(bit-identical to 'numpy'); 'native' requires it; 'device' runs "
        "hypothesis chunks through the array-API path (torch/cupy when "
        "importable, NumPy otherwise) -- tolerance-equivalent, not bitwise",
    )
    track.add_argument("--out", type=str, default=None, help="save the field (.npz)")
    track.add_argument(
        "--subpixel", action="store_true",
        help="apply parabolic sub-pixel refinement (extensions.subpixel)",
    )
    track.add_argument(
        "--workers", type=int, default=None, metavar="N",
        help="shard the sequence's pairs over N processes "
        "(bit-identical to the sequential path)",
    )
    _add_obs_arguments(track)

    winds = sub.add_parser("winds", help="wind statistics from a saved field")
    winds.add_argument("field", type=str, help="MotionField .npz path")
    winds.add_argument("--percentiles", type=str, default="50,90,99")

    machine = sub.add_parser("machine", help="MP-2 description and timing model")
    machine.add_argument("--tables", action="store_true", help="print modeled Tables 2 & 4")

    sub.add_parser("datasets", help="list datasets and their paper-scale parameters")

    stream = sub.add_parser(
        "stream", help="fault-tolerant streaming over a whole frame sequence"
    )
    stream.add_argument("dataset", choices=sorted(DATASET_FACTORIES))
    stream.add_argument("--size", type=int, default=64, help="image side (pixels)")
    stream.add_argument("--frames", type=int, default=8, help="sequence length")
    stream.add_argument("--seed", type=int, default=0, help="dataset seed")
    stream.add_argument("--search", type=int, default=2, help="z-search half-width")
    stream.add_argument("--template", type=int, default=3, help="z-template half-width")
    stream.add_argument(
        "--search-mode", choices=("exhaustive", "pruned"), default="exhaustive",
        help="hypothesis schedule ('pruned' is bit-identical with fewer GE "
        "solves; the approximate pyramid schedule is not streamable)",
    )
    stream.add_argument(
        "--backend", choices=("auto", "numpy", "native"), default="auto",
        help="kernel backend (bit-identical set only; the tolerance-"
        "equivalent device backend is not streamable)",
    )
    stream.add_argument(
        "--inject-faults", type=str, default=None, metavar="SPEC",
        help="comma-separated fault spec, e.g. "
        "'corrupt:7:nan-speckle,read:3,write:2,mem:10,deadrows:12:2' "
        "or 'random' for a seeded random plan",
    )
    stream.add_argument(
        "--fault-seed", type=int, default=0,
        help="seed for frame corruption and 'random' fault plans",
    )
    stream.add_argument(
        "--checkpoint", type=str, default=None, metavar="PATH",
        help="checkpoint file (.npz), written after every pair",
    )
    stream.add_argument(
        "--resume", action="store_true",
        help="continue from --checkpoint if it matches this run",
    )
    stream.add_argument(
        "--stop-after", type=int, default=None, metavar="N",
        help="process at most N pairs this invocation (for resume tests)",
    )
    stream.add_argument(
        "--hs-iterations", type=int, default=60,
        help="Horn-Schunck fallback iteration cap",
    )
    stream.add_argument(
        "--workers", type=int, default=None, metavar="N",
        help="shard independent pairs over N processes (incompatible "
        "with --inject-faults; bit-identical to the sequential path)",
    )
    stream.add_argument(
        "--transport", choices=("pickle", "shm"), default="pickle",
        help="how pooled workers receive frames: 'pickle' (default) or "
        "'shm' (zero-copy shared-memory ring; bit-identical)",
    )
    stream.add_argument(
        "--source", type=str, default=None, metavar="ring://NAME",
        help="consume live frames from a shared-memory ring (published "
        "by 'repro ingest') instead of generating the dataset locally; "
        "the dataset argument still selects the model configuration",
    )
    stream.add_argument("--out", type=str, default=None, help="save the mean field (.npz)")
    stream.add_argument(
        "--report", type=str, default=None, metavar="PATH",
        help="write the structured RunReport (with per-pair timing and "
        "the cost-ledger breakdown) as JSON",
    )
    _add_obs_arguments(stream)

    ingest = sub.add_parser(
        "ingest",
        help="publish prepared frames onto a named shared-memory ring "
        "(the live publisher; consumers attach with --source ring://NAME)",
    )
    ingest.add_argument(
        "--ring", type=str, required=True, metavar="NAME",
        help="ring name (consumers attach as ring://NAME)",
    )
    ingest.add_argument(
        "--source", type=str, default="synthetic:luis", metavar="SPEC",
        help="frame source: synthetic:NAME (frederic/florida/luis), "
        "dir:PATH (tail a directory for .npy/.npz drops; a file named "
        "STOP ends the stream), or tcp://HOST:PORT (length-prefixed "
        ".npz messages)",
    )
    ingest.add_argument("--size", type=int, default=64, help="synthetic image side")
    ingest.add_argument(
        "--frames", type=int, default=8, help="synthetic sequence length"
    )
    ingest.add_argument(
        "--seed", type=int, default=0,
        help="synthetic dataset seed (matches the 'repro stream' default, "
        "so a ring-fed stream reproduces the batch run bit-identically)",
    )
    ingest.add_argument(
        "--max-frames", type=int, default=None, metavar="N",
        help="publish at most N frames (synthetic sources loop their "
        "sequence to reach N; default: one pass)",
    )
    ingest.add_argument(
        "--capacity", type=int, default=16, metavar="SLOTS",
        help="ring capacity in frame slots (old slots are overwritten; "
        "lapped consumers skip forward, counting the gap)",
    )
    ingest.add_argument(
        "--cadence", type=float, default=0.0, metavar="SECONDS",
        help="minimum seconds between published frames (0 = as fast as "
        "the source produces)",
    )
    ingest.add_argument(
        "--linger", type=float, default=5.0, metavar="SECONDS",
        help="after the source ends, keep the closed ring alive this "
        "long so attached consumers can drain before unlink",
    )
    ingest.add_argument(
        "--no-prep", action="store_true",
        help="publish raw frames without the prepared surface-fit "
        "stacks (consumers redo the preparation themselves)",
    )
    _add_obs_arguments(ingest)

    serve = sub.add_parser(
        "serve",
        help="HTTP serving: durable job queue, content-addressed result "
        "cache, wind-product API; --nodes spawns a multi-process fleet",
    )
    serve.add_argument("--host", type=str, default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8641)
    _add_serve_tuning_arguments(serve)
    serve.add_argument(
        "--source", type=str, default=None, metavar="ring://NAME",
        help="also consume live frames from a shared-memory ring; the "
        "latest live field serves on GET /v1/live/latest and /healthz "
        "reports the ring attach state",
    )
    serve.add_argument(
        "--nodes", type=int, default=0, metavar="N",
        help="spawn N 'repro serve-worker' node processes over the shared "
        "state dir (fleet mode: shared job store, fleet-wide result "
        "dedup, per-node flight journals); the frontend then defaults "
        "to zero local workers",
    )
    serve.add_argument(
        "--workers-per-node", type=int, default=2, metavar="N",
        help="worker threads in each --nodes worker process",
    )
    serve.add_argument(
        "--fleet", action="store_true",
        help="fleet mode without spawning nodes: share the state dir "
        "with externally launched 'repro serve-worker' processes",
    )
    serve.add_argument(
        "--shed-watermark", type=float, default=None, metavar="F",
        help="load-shed watermark as a fraction of --queue-depth: past "
        "it, lowest-priority submissions are shed first (429 + "
        "serve.shed.* counters); highest priorities are only ever "
        "refused by the hard capacity limit",
    )
    _add_obs_arguments(serve)

    serve_worker = sub.add_parser(
        "serve-worker",
        help="one worker node of a serve fleet: claims jobs from the "
        "shared state dir (no HTTP listener); pair with 'repro serve "
        "--fleet' or --nodes",
    )
    _add_serve_tuning_arguments(serve_worker)
    _add_obs_arguments(serve_worker)

    admin = sub.add_parser(
        "serve-admin",
        help="operator console: inspect and requeue dead-letter jobs, "
        "read the flight recorder",
    )
    admin.add_argument(
        "action", choices=("dead", "requeue", "flightlog"),
        help="'dead' lists the dead-letter queue; 'requeue JOB_ID' "
        "revives one dead job with a fresh attempt budget; 'flightlog' "
        "prints the crash-safe lifecycle journal (post-mortem: point "
        "--state-dir at a dead server's directory)",
    )
    admin.add_argument("job_id", nargs="?", default=None, help="job id for 'requeue'")
    admin.add_argument(
        "--url", type=str, default=None, metavar="URL",
        help="base URL of a running server (e.g. http://127.0.0.1:8641)",
    )
    admin.add_argument(
        "--state-dir", type=str, default=None, metavar="DIR",
        help="operate directly on a *stopped* server's state directory "
        "(mutually exclusive with --url)",
    )
    admin.add_argument(
        "--job", type=str, default=None, metavar="JOB_ID",
        help="filter 'flightlog' to one job's lifecycle (required with "
        "--url, where the trace route serves it)",
    )

    profile = sub.add_parser(
        "profile", help="modeled vs measured per-phase profile of one pair"
    )
    profile.add_argument("dataset", choices=sorted(DATASET_FACTORIES))
    profile.add_argument("--size", type=int, default=64, help="image side (pixels)")
    profile.add_argument("--seed", type=int, default=0)
    profile.add_argument("--search", type=int, default=2, help="z-search half-width")
    profile.add_argument("--template", type=int, default=3, help="z-template half-width")
    profile.add_argument(
        "--search-mode", choices=("exhaustive", "pruned"), default="exhaustive",
        help="hypothesis schedule (the profile's GE counts show the "
        "pruned schedule's saving)",
    )
    profile.add_argument(
        "--backend", choices=("auto", "numpy", "native"), default="auto",
        help="kernel backend for the profiled run (bit-identical set only)",
    )
    _add_obs_arguments(profile)

    return parser


def _add_serve_tuning_arguments(parser: argparse.ArgumentParser) -> None:
    """Flags shared by ``serve`` and ``serve-worker`` -- queue semantics
    must match on every node of a fleet, so both commands accept the
    same tuning surface."""
    parser.add_argument(
        "--workers", type=int, default=None, metavar="N",
        help="serving worker threads (default 2; a 'serve --nodes' "
        "frontend defaults to 0 and leaves compute to the worker "
        "nodes; request-level fault injection is refused in serve "
        "mode; server-side chaos is the --chaos flag)",
    )
    parser.add_argument(
        "--pool-workers", type=int, default=None, metavar="N",
        help="shard sequence jobs' pairs over N processes "
        "(the PR-2 fork pool; bit-identical to sequential)",
    )
    parser.add_argument(
        "--queue-depth", type=int, default=64, metavar="N",
        help="max pending jobs before submissions get a 429 backpressure "
        "response",
    )
    parser.add_argument(
        "--cache-bytes", type=int, default=256 * 1024 * 1024, metavar="BYTES",
        help="result-cache byte budget (LRU eviction beyond it)",
    )
    parser.add_argument(
        "--state-dir", type=str, default=".repro-serve", metavar="DIR",
        help="durable state: queue journal + result-cache artifacts "
        "(a restarted server resumes pending jobs from here; a fleet "
        "shares one state dir across all its nodes)",
    )
    parser.add_argument(
        "--node", type=str, default=None, metavar="ID",
        help="fleet node identity (default: hostname-pid); stamps "
        "leases, flight-recorder events, and serve.node.* gauges",
    )
    parser.add_argument(
        "--search-mode", choices=("exhaustive", "pruned"), default="exhaustive",
        help="default hypothesis schedule for jobs that do not name one "
        "(result-cache keys include the mode)",
    )
    parser.add_argument(
        "--backend", choices=("auto", "numpy", "native"), default="auto",
        help="default kernel backend for jobs that do not name one "
        "(result-cache keys include it; the device backend is not servable)",
    )
    parser.add_argument(
        "--lease-seconds", type=float, default=15.0, metavar="S",
        help="worker lease/heartbeat deadline; an expired lease requeues "
        "the job (a hung or dead worker never strands work)",
    )
    parser.add_argument(
        "--max-attempts", type=int, default=3, metavar="N",
        help="execution attempts (first try included) before a job is "
        "quarantined dead; inspect with 'repro serve-admin dead'",
    )
    parser.add_argument(
        "--job-timeout", type=float, default=300.0, metavar="S",
        help="per-job wall-clock timeout; 0 disables",
    )
    parser.add_argument(
        "--retry-backoff", type=float, default=0.25, metavar="S",
        help="base of the exponential retry backoff (doubles per retry)",
    )
    parser.add_argument(
        "--chaos", type=str, default=None, nargs="?", const="default",
        metavar="SPEC",
        help="arm seeded worker chaos, e.g. 'crash=0.2,stall=0.1,"
        "stall_seconds=1,flaky=0.3,flaky_attempts=2' (bare --chaos uses "
        "a light default mix); chaos kills/stalls worker *attempts* "
        "deterministically but never touches the computed product",
    )
    parser.add_argument(
        "--chaos-seed", type=int, default=0,
        help="seed for the --chaos schedule (same seed, same faults)",
    )
    parser.add_argument(
        "--transport", choices=("pickle", "shm"), default="pickle",
        help="frame transport for pooled sequence jobs: 'pickle' "
        "(default) or 'shm' (zero-copy shared-memory ring; "
        "bit-identical, so result-cache keys are unaffected)",
    )
    parser.add_argument(
        "--slo", type=str, default=None, metavar="SPEC",
        help="latency/error objectives, e.g. 'p95=2,errors=0.01,window=300' "
        "(p95 target seconds, dead-letter budget fraction, rolling window "
        "seconds); burn rates land on /metrics as serve.slo.* gauges and "
        "/healthz reports the breach verdict (defaults apply without the flag)",
    )


def _add_obs_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--trace", type=str, default=None, metavar="PATH",
        help="write a Chrome-trace JSON of the run (open in Perfetto)",
    )
    parser.add_argument(
        "--metrics", type=str, default=None, metavar="PATH",
        help="write the metrics registry as JSON",
    )


def _arm_observability(args: argparse.Namespace) -> None:
    """Enable tracing (and scope the metrics) when export flags are set."""
    if getattr(args, "trace", None) or getattr(args, "metrics", None):
        from .obs import METRICS, TRACER, enable_tracing

        TRACER.reset()
        METRICS.reset()
        if args.trace:
            enable_tracing(True)


def _write_obs_outputs(args: argparse.Namespace) -> None:
    """Export the trace/metrics files requested on the command line."""
    if getattr(args, "trace", None):
        from .obs import TRACER, write_chrome_trace

        write_chrome_trace(args.trace, TRACER.drain())
        print(f"saved Chrome trace to {args.trace}")
    if getattr(args, "metrics", None):
        from .ioutil import atomic_write_text
        from .obs import METRICS

        atomic_write_text(args.metrics, METRICS.to_json())
        print(f"saved metrics to {args.metrics}")
    from .obs import enable_tracing

    enable_tracing(False)


def _parse_fault_spec(spec: str, seed: int, n_frames: int):
    """Build a :class:`FaultPlan` from the ``--inject-faults`` mini-language.

    Tokens (comma-separated):

    * ``corrupt:FRAME[:MODE]`` -- corrupt one frame (default nan-speckle),
    * ``read:FRAME[:COUNT]``   -- COUNT transient read failures (default 1),
    * ``write:FRAME[:COUNT]``  -- COUNT transient write failures (default 1),
    * ``mem:PAIR``             -- PE-memory squeeze while processing PAIR,
    * ``deadrows:PAIR:N``      -- N PE rows die before PAIR,
    * ``random[:RATE]``        -- seeded random plan at the given rate.
    """
    from .reliability import CORRUPTION_MODES, FaultPlan

    corrupt: dict[int, str] = {}
    reads: dict[int, int] = {}
    writes: dict[int, int] = {}
    mem: list[int] = []
    dead: dict[int, int] = {}
    for token in spec.split(","):
        token = token.strip()
        if not token:
            continue
        parts = token.split(":")
        kind = parts[0]
        try:
            if kind == "random":
                rate = float(parts[1]) if len(parts) > 1 else 0.1
                return FaultPlan.random(
                    seed, n_frames,
                    corrupt_rate=rate, read_failure_rate=rate, memory_fault_rate=rate,
                )
            if kind == "corrupt":
                mode = parts[2] if len(parts) > 2 else "nan-speckle"
                if mode not in CORRUPTION_MODES:
                    raise ValueError(
                        f"unknown corruption mode {mode!r} "
                        f"(choose from {', '.join(CORRUPTION_MODES)})"
                    )
                corrupt[int(parts[1])] = mode
            elif kind == "read":
                reads[int(parts[1])] = int(parts[2]) if len(parts) > 2 else 1
            elif kind == "write":
                writes[int(parts[1])] = int(parts[2]) if len(parts) > 2 else 1
            elif kind == "mem":
                mem.append(int(parts[1]))
            elif kind == "deadrows":
                dead[int(parts[1])] = int(parts[2])
            else:
                raise ValueError(f"unknown fault kind {kind!r}")
        except IndexError:
            raise ValueError(f"malformed fault token {token!r}") from None
    return FaultPlan(
        seed=seed,
        corrupt_frames=corrupt,
        read_failures=reads,
        write_failures=writes,
        pe_memory_faults=tuple(sorted(mem)),
        dead_pe_rows=dead,
    )


def _cmd_track(args: argparse.Namespace) -> int:
    _arm_observability(args)
    factory = DATASET_FACTORIES[args.dataset]
    n_frames = max(args.pair + 2, 2)
    if args.workers is not None and args.workers > 1:
        # Give the pool at least one pair per worker (frames are
        # generated deterministically per index, so the requested
        # pair's field is unaffected).
        n_frames = max(n_frames, args.workers + 1)
    dataset: Dataset = factory(size=args.size, n_frames=n_frames, seed=args.seed)
    config = dataset.config.replace(n_zs=args.search, n_zt=args.template)
    analyzer = SMAnalyzer(
        config, pixel_km=dataset.pixel_km, search=args.search_mode, backend=args.backend
    )
    if args.workers is not None and args.workers > 1:
        # Sequence driver: all pairs sharded over the pool, bit-identical
        # to the direct call; report the requested pair.
        field = analyzer.track_sequence(dataset.frames, workers=args.workers)[args.pair]
    else:
        field = analyzer.track_pair(dataset.frames[args.pair], dataset.frames[args.pair + 1])
    if args.subpixel:
        from .core.matching import prepare_frames, track_dense
        from .extensions.subpixel import refine

        before = dataset.frames[args.pair]
        after = dataset.frames[args.pair + 1]
        prepared = prepare_frames(
            np.asarray(before.surface, dtype=np.float64),
            np.asarray(after.surface, dtype=np.float64),
            config,
            intensity_before=before.intensity,
            intensity_after=after.intensity,
        )
        refined = refine(
            prepared,
            track_dense(prepared, search=args.search_mode, backend=args.backend),
        )
        field.u[...] = refined.u
        field.v[...] = refined.v
    u_true, v_true = dataset.truth_uv()
    rmse = field.rmse_against(u_true, v_true)
    mean_u, mean_v = field.mean_displacement()
    rows = [
        ("dataset", f"{dataset.name} ({args.size}x{args.size}, pair {args.pair})"),
        ("model", field.metadata["model"]),
        ("hypotheses/pixel", config.hypotheses_per_pixel),
        ("valid pixels", int(field.valid.sum())),
        ("mean displacement", f"({mean_u:+.2f}, {mean_v:+.2f}) px"),
        ("RMSE vs truth", f"{rmse:.3f} px"),
        ("mean wind speed", f"{field.wind_speed()[field.valid].mean():.1f} m/s"),
    ]
    print(format_table(rows, title="SMA tracking"))
    if args.out:
        field.save(args.out)
        print(f"saved field to {args.out}")
    _write_obs_outputs(args)
    return 0


def _cmd_winds(args: argparse.Namespace) -> int:
    field = MotionField.load(args.field)
    speed = field.wind_speed()[field.valid]
    direction = field.wind_direction_deg()[field.valid]
    try:
        percentiles = [float(p) for p in args.percentiles.split(",") if p.strip()]
    except ValueError:
        print("invalid --percentiles (expected comma-separated numbers)", file=sys.stderr)
        return 2
    rows = [
        ("valid pixels", speed.size),
        ("mean speed", f"{speed.mean():.1f} m/s"),
        ("max speed", f"{speed.max():.1f} m/s"),
        ("circular-mean direction", f"{_circular_mean_deg(direction):.0f} deg"),
    ]
    for p in percentiles:
        rows.append((f"p{p:g} speed", f"{np.percentile(speed, p):.1f} m/s"))
    print(format_table(rows, title=f"wind field ({args.field})"))
    return 0


def _circular_mean_deg(direction_deg: np.ndarray) -> float:
    """Circular mean over moving pixels; calm pixels carry NaN direction."""
    rad = np.radians(direction_deg[np.isfinite(direction_deg)])
    if rad.size == 0:
        return float("nan")
    return float(np.degrees(np.arctan2(np.sin(rad).mean(), np.cos(rad).mean())) % 360.0)


def _cmd_machine(args: argparse.Namespace) -> int:
    m = GODDARD_MP2
    rows = [
        ("PE array", f"{m.nyproc} x {m.nxproc} = {m.n_pes}"),
        ("clock", f"{m.clock_hz / 1e6:.1f} MHz"),
        ("PE memory", f"{m.pe_memory_bytes // 1024} KiB"),
        ("double precision", f"{m.flops_double / 1e9:.1f} GFlops"),
        ("X-net / router", f"{m.xnet_bw / 2**30:.1f} / {m.router_bw / 2**30:.1f} GiB/s "
         f"({m.xnet_router_ratio:.0f}x)"),
    ]
    print(format_table(rows, title="MasPar MP-2 (NASA Goddard configuration)"))
    if args.tables:
        print(format_table(
            table2_model_rows(),
            headers=["phase", "modeled seconds"],
            title="Table 2 model (Hurricane Frederic, 512x512)",
            float_format="{:.3f}",
        ))
        print(f"modeled speed-up: {speedup(FREDERIC_CONFIG, (512, 512)):.0f}x "
              "(paper: 1025x)\n")
        print(format_table(
            table4_model_rows(),
            headers=["phase", "modeled seconds"],
            title="Table 4 model (GOES-9 Florida, 512x512)",
            float_format="{:.3f}",
        ))
        print(f"modeled speed-up: {speedup(GOES9_CONFIG, (512, 512)):.0f}x "
              "(paper: 193x)")
    return 0


def _cmd_datasets(_: argparse.Namespace) -> int:
    sgi = SGISequentialModel.calibrated()
    rows = []
    for key, factory in sorted(DATASET_FACTORIES.items()):
        cfg = CONFIGS[key]
        scale = PAPER_SCALE[cfg.name]
        seq_h = sgi.total_seconds(cfg, (512, 512)) / 3600.0
        rows.append(
            (
                key,
                cfg.name,
                "semi-fluid" if cfg.is_semifluid else "continuous",
                f"{scale['n_frames']} frames @ {scale['dt_seconds']:.0f} s",
                f"{seq_h:.1f} h/pair sequential",
            )
        )
    print(format_table(
        rows,
        headers=["key", "paper sequence", "model", "paper scale", "SGI projection"],
        title="paper-analogue datasets",
    ))
    return 0


def _cmd_ingest(args: argparse.Namespace) -> int:
    import signal

    from .bus import IngestDaemon, parse_source

    _arm_observability(args)
    source = parse_source(
        args.source,
        size=args.size,
        n_frames=args.frames,
        seed=args.seed,
        max_frames=args.max_frames,
    )
    daemon = IngestDaemon(
        args.ring,
        source,
        capacity=args.capacity,
        cadence_seconds=args.cadence,
        linger_seconds=args.linger,
        prep=not args.no_prep,
        log=lambda msg: print(msg, flush=True),
    )

    def _request_stop(signum, frame) -> None:
        daemon.stop()

    signal.signal(signal.SIGTERM, _request_stop)
    signal.signal(signal.SIGINT, _request_stop)
    published = daemon.run()
    print(f"ingest: done, {published} frame(s) published to ring://{args.ring}")
    _write_obs_outputs(args)
    return 0


def _cmd_stream(args: argparse.Namespace) -> int:
    from .reliability import StreamingRunner

    _arm_observability(args)
    factory = DATASET_FACTORIES[args.dataset]
    dataset: Dataset = factory(size=args.size, n_frames=args.frames, seed=args.seed)
    config = dataset.config.replace(n_zs=args.search, n_zt=args.template)
    plan = None
    if args.inject_faults:
        if args.source is not None:
            print("error: --inject-faults is incompatible with --source",
                  file=sys.stderr)
            return 2
        plan = _parse_fault_spec(args.inject_faults, args.fault_seed, args.frames)
    runner = StreamingRunner(
        config,
        fault_plan=plan,
        checkpoint_path=args.checkpoint,
        hs_iterations=args.hs_iterations,
        pixel_km=dataset.pixel_km,
        workers=args.workers,
        search=args.search_mode,
        backend=args.backend,
        transport=args.transport,
    )
    if args.source is not None:
        from .bus import RingFrameSource, parse_ring_url

        ring_name = parse_ring_url(args.source)
        print(f"stream: transport={runner.transport}, source=ring://{ring_name}",
              flush=True)
        with RingFrameSource(ring_name) as ring_source:
            result = runner.run_live(ring_source, max_pairs=args.stop_after)
        source_row = (
            "source",
            f"ring://{ring_name} ({ring_source.yielded} frames, "
            f"{ring_source.missed} missed)",
        )
    else:
        print(f"stream: transport={runner.transport}, "
              f"source=dataset:{args.dataset}", flush=True)
        result = runner.run(
            dataset.frames, resume=args.resume, stop_after=args.stop_after
        )
        source_row = (
            "dataset", f"{dataset.name} ({args.size}x{args.size}, {args.frames} frames)"
        )

    rows = [
        source_row,
        ("status", "completed" if result.completed else
         f"stopped after {result.pairs_done}/{result.n_pairs} pairs"),
        ("resumed from checkpoint", "yes" if result.resumed else "no"),
    ]
    if plan is not None:
        rows.append(("injected faults", str(sum(1 for _ in plan.describe()))))
    rows.extend(result.report.summary_rows())
    rows.append(("modeled seconds (total)", f"{result.ledger.total_seconds():.3f}"))
    rows.append(("Gaussian eliminations", str(result.ledger.gaussian_eliminations())))
    print(format_table(rows, title="fault-tolerant streaming"))

    if result.report.events:
        event_rows = [
            (str(e.pair), e.kind, e.action, e.detail) for e in result.report.events
        ]
        print(format_table(
            event_rows,
            headers=["pair", "fault", "action", "detail"],
            title="fault log",
        ))

    if args.report:
        import json

        from .ioutil import atomic_write_text

        payload = json.loads(result.report.to_json(include_timing=True))
        payload["cost"] = {
            "breakdown": [
                {"phase": name, "modeled_seconds": secs, "gaussian_eliminations": ge}
                for name, secs, ge in result.ledger.breakdown(with_counts=True)
            ],
            "total_modeled_seconds": result.ledger.total_seconds(),
            "total_gaussian_eliminations": result.ledger.gaussian_eliminations(),
        }
        atomic_write_text(args.report, json.dumps(payload))
        print(f"saved run report to {args.report}")
    if args.out:
        if result.field is None:
            print("no field to save (run stopped before the first pair)", file=sys.stderr)
            return 1
        result.field.save(args.out)
        print(f"saved mean field to {args.out}")
    _write_obs_outputs(args)
    return 0


def _serve_app_from_args(
    args: argparse.Namespace,
    workers: int,
    fleet: bool = False,
    node: str | None = None,
    source: str | None = None,
    shed_watermark: float | None = None,
):
    """Build the :class:`ServeApp` both ``serve`` and ``serve-worker``
    share (fleet nodes must agree on queue semantics, so both commands
    resolve the same flags through this one constructor)."""
    from .serve import ServeApp

    chaos = None
    if args.chaos is not None:
        from .reliability.injection import ServeChaosPlan

        chaos = ServeChaosPlan.from_spec(args.chaos, seed=args.chaos_seed)
    slo = None
    if args.slo is not None:
        from .serve.slo import SLOConfig

        slo = SLOConfig.from_spec(args.slo)
    return ServeApp(
        state_dir=args.state_dir,
        workers=workers,
        pool_workers=args.pool_workers,
        queue_depth=args.queue_depth,
        cache_bytes=args.cache_bytes,
        search_mode=args.search_mode,
        backend=args.backend,
        lease_seconds=args.lease_seconds,
        max_attempts=args.max_attempts,
        job_timeout_seconds=args.job_timeout if args.job_timeout > 0 else None,
        retry_backoff_seconds=args.retry_backoff,
        chaos=chaos,
        slo=slo,
        transport=args.transport,
        source=source,
        fleet=fleet,
        node=node,
        shed_watermark=shed_watermark,
    )


def _spawn_worker_nodes(args: argparse.Namespace) -> list:
    """Launch the ``--nodes`` worker processes over the shared state dir."""
    import subprocess

    forwarded = [
        "--state-dir", args.state_dir,
        "--workers", str(args.workers_per_node),
        "--queue-depth", str(args.queue_depth),
        "--cache-bytes", str(args.cache_bytes),
        "--search-mode", args.search_mode,
        "--backend", args.backend,
        "--lease-seconds", str(args.lease_seconds),
        "--max-attempts", str(args.max_attempts),
        "--job-timeout", str(args.job_timeout),
        "--retry-backoff", str(args.retry_backoff),
        "--transport", args.transport,
    ]
    if args.pool_workers is not None:
        forwarded += ["--pool-workers", str(args.pool_workers)]
    if args.chaos is not None:
        forwarded += ["--chaos", args.chaos, "--chaos-seed", str(args.chaos_seed)]
    if args.slo is not None:
        forwarded += ["--slo", args.slo]
    children = []
    for index in range(args.nodes):
        node = f"{args.node or 'node'}-{index}"
        children.append(
            subprocess.Popen(
                [sys.executable, "-m", "repro", "serve-worker", "--node", node]
                + forwarded
            )
        )
    return children


def _cmd_serve(args: argparse.Namespace) -> int:
    import signal
    import threading

    from .serve.frontend import make_async_server

    _arm_observability(args)
    fleet = args.fleet or args.nodes > 0
    # A frontend that spawned worker nodes defaults to zero local
    # workers -- compute lives on the nodes; otherwise the classic 2.
    workers = args.workers if args.workers is not None else (0 if args.nodes else 2)
    app = _serve_app_from_args(
        args,
        workers=workers,
        fleet=fleet,
        node=args.node if args.nodes == 0 else f"{args.node or 'node'}-frontend",
        source=args.source,
        shed_watermark=args.shed_watermark,
    )
    children = _spawn_worker_nodes(args) if args.nodes else []
    app.start()
    server = make_async_server(app, host=args.host, port=args.port)
    host, port = server.server_address[:2]
    chaos_note = ""
    if app.chaos is not None and not app.chaos.is_empty:
        chaos_note = f", CHAOS ARMED seed={app.chaos.seed}"
    ring_note = f", live ring://{app.live.ring_name}" if app.live is not None else ""
    fleet_note = f", fleet node {app.node} (+{len(children)} worker nodes)" if fleet else ""
    print(f"repro serve listening on http://{host}:{port} "
          f"(workers={workers}, queue depth={args.queue_depth}, "
          f"transport={app.transport}{fleet_note}{ring_note}{chaos_note})",
          flush=True)

    def _drain_and_stop(signum, frame) -> None:
        # Runs off the main thread so serve_forever can wind down; drain
        # finishes every accepted job before the listener closes.  With
        # spawned nodes: stop admitting, let the nodes drain the shared
        # queue, retire them, then close the listener.
        def _worker() -> None:
            if children:
                app.draining = True
                app.queue.wait_idle()
                for child in children:
                    child.send_signal(signal.SIGTERM)
                for child in children:
                    child.wait()
            app.drain()
            server.shutdown()

        threading.Thread(target=_worker, name="serve-drain", daemon=True).start()

    signal.signal(signal.SIGTERM, _drain_and_stop)
    signal.signal(signal.SIGINT, _drain_and_stop)
    try:
        server.serve_forever()
    finally:
        server.server_close()
        for child in children:
            if child.poll() is None:
                child.terminate()
                child.wait()
    counts = app.queue.counts()
    print(f"drained: {counts['done']} done, {counts['dead']} dead, "
          f"{counts['retrying']} retrying, {counts['pending']} pending")
    _write_obs_outputs(args)
    return 0


def _cmd_serve_worker(args: argparse.Namespace) -> int:
    """One compute node of a serve fleet: claim, execute, heartbeat --
    no HTTP listener.  SIGTERM retires the node gracefully: in-flight
    jobs finish here, queued work stays in the shared store for the
    surviving nodes, and anything stranded by a SIGKILL is reaped by a
    survivor when its lease expires."""
    import signal
    import threading

    _arm_observability(args)
    workers = args.workers if args.workers is not None else 2
    app = _serve_app_from_args(args, workers=workers, fleet=True, node=args.node)
    app.start()
    print(f"repro serve-worker node {app.node} joined the fleet at "
          f"{args.state_dir} (workers={workers})", flush=True)

    stop = threading.Event()

    def _retire(signum, frame) -> None:
        stop.set()

    signal.signal(signal.SIGTERM, _retire)
    signal.signal(signal.SIGINT, _retire)
    while not stop.wait(0.2):
        pass
    app.stop_node()
    counts = app.queue.counts()
    print(f"node {app.node} left the fleet: {counts['done']} done, "
          f"{counts['dead']} dead, {counts['pending']} pending, "
          f"{counts['running']} running elsewhere")
    _write_obs_outputs(args)
    return 0


def _cmd_serve_admin(args: argparse.Namespace) -> int:
    """Operator console: dead-letter list/requeue + flight recorder.

    Two transports: ``--url`` talks to a live server over HTTP;
    ``--state-dir`` opens a *stopped* server's journal directly (the
    queue flushes the requeue back to disk before exiting; the flight
    recorder is read-only and torn-tail tolerant, so ``flightlog``
    works against a SIGKILLed server's directory).
    """
    if (args.url is None) == (args.state_dir is None):
        print("error: pass exactly one of --url or --state-dir", file=sys.stderr)
        return 2
    if args.action == "requeue" and not args.job_id:
        print("error: 'requeue' needs a job id", file=sys.stderr)
        return 2
    if args.action == "flightlog":
        return _serve_admin_flightlog(args)

    if args.url is not None:
        import json as _json
        import urllib.error
        import urllib.request

        base = args.url.rstrip("/")
        try:
            if args.action == "dead":
                with urllib.request.urlopen(f"{base}/v1/jobs?state=dead") as response:
                    body = _json.loads(response.read())
            else:
                request = urllib.request.Request(
                    f"{base}/v1/jobs/{args.job_id}/requeue", method="POST", data=b""
                )
                with urllib.request.urlopen(request) as response:
                    body = _json.loads(response.read())
        except urllib.error.HTTPError as exc:
            detail = exc.read().decode(errors="replace")
            print(f"error: server said {exc.code}: {detail}", file=sys.stderr)
            return 1
        except urllib.error.URLError as exc:
            print(f"error: cannot reach {base}: {exc.reason}", file=sys.stderr)
            return 1
        if args.action == "requeue":
            print(f"requeued {body['id']} (state={body['state']})")
            return 0
        jobs = body["jobs"]
    else:
        import os

        from .serve import JobQueue

        state_path = os.path.join(args.state_dir, "queue.json")
        queue = JobQueue(max_depth=1_000_000, state_path=state_path)
        if args.action == "requeue":
            try:
                job = queue.requeue(args.job_id)
            except (KeyError, ValueError) as exc:
                print(f"error: {exc}", file=sys.stderr)
                return 1
            queue.save()
            print(f"requeued {job.id} (state={job.state})")
            return 0
        jobs = [job.to_dict() for job in queue.list_jobs(state="dead")]

    if not jobs:
        print("dead-letter queue is empty")
        return 0
    rows = [
        (
            job["id"],
            str(job["attempts"]),
            job["request"]["dataset"],
            job["request"]["kind"],
            (job.get("error") or "")[:60],
        )
        for job in jobs
    ]
    print(format_table(
        rows,
        headers=["job", "attempts", "dataset", "kind", "last error"],
        title=f"dead-letter jobs ({len(jobs)})",
    ))
    return 0


def _serve_admin_flightlog(args: argparse.Namespace) -> int:
    """Print the flight recorder's lifecycle journal (the post-mortem
    surface): every surviving event, or one job's trace with its
    latency decomposition."""
    job_filter = args.job or args.job_id
    if args.url is not None:
        if not job_filter:
            print(
                "error: 'flightlog --url' needs --job JOB_ID (the full journal "
                "is only readable from the state directory)",
                file=sys.stderr,
            )
            return 2
        import json as _json
        import urllib.error
        import urllib.request

        base = args.url.rstrip("/")
        try:
            with urllib.request.urlopen(f"{base}/v1/jobs/{job_filter}/trace") as response:
                trace = _json.loads(response.read())
        except urllib.error.HTTPError as exc:
            detail = exc.read().decode(errors="replace")
            print(f"error: server said {exc.code}: {detail}", file=sys.stderr)
            return 1
        except urllib.error.URLError as exc:
            print(f"error: cannot reach {base}: {exc.reason}", file=sys.stderr)
            return 1
        events = trace.get("events", [])
        segments = trace.get("segments")
    else:
        from .obs.events import (
            discover_flight_journals,
            job_trace,
            merge_flight_journals,
        )

        # Merge every node's journal (plus rotated archives) into one
        # chronology -- ties on ts break stably on (node, seq), so a
        # fleet's interleaved story reads the same on every replay.
        events = merge_flight_journals(discover_flight_journals(args.state_dir))
        segments = None
        if job_filter:
            events = [e for e in events if e.get("job") == job_filter]
            segments = job_trace(events).get("segments")

    if not events:
        print("flight recorder is empty" + (f" for {job_filter}" if job_filter else ""))
        return 0
    rows = [
        (
            f"{event.get('ts', 0.0):.3f}",
            event.get("node") or "",
            event.get("job", ""),
            event.get("event", ""),
            str(event.get("attempt", "")),
            event.get("worker") or "",
            _json_compact(event.get("fields")),
        )
        for event in events
    ]
    title = "flight recorder" + (f": {job_filter}" if job_filter else "")
    print(format_table(
        rows,
        headers=["ts", "node", "job", "event", "attempt", "worker", "fields"],
        title=f"{title} ({len(events)} events)",
    ))
    if segments:
        seg_rows = [(name, f"{seconds:.4f}") for name, seconds in segments.items()]
        print(format_table(seg_rows, headers=["segment", "seconds"], title="latency"))
    return 0


def _json_compact(fields: dict | None, limit: int = 60) -> str:
    if not fields:
        return ""
    import json as _json

    text = _json.dumps(fields, sort_keys=True, separators=(",", ":"))
    return text if len(text) <= limit else text[: limit - 3] + "..."


def _cmd_profile(args: argparse.Namespace) -> int:
    from .obs import (
        METRICS,
        TRACER,
        counter_family_rows,
        enable_tracing,
        modeled_vs_measured_rows,
        span_summary_rows,
    )
    from .parallel.parallel_sma import ParallelSMA

    factory = DATASET_FACTORIES[args.dataset]
    dataset: Dataset = factory(size=args.size, n_frames=2, seed=args.seed)
    config = dataset.config.replace(n_zs=args.search, n_zt=args.template)
    TRACER.reset()
    METRICS.reset()
    enable_tracing(True)
    driver = ParallelSMA(
        config, pixel_km=dataset.pixel_km, search=args.search_mode, backend=args.backend
    )
    result = driver.track_pair(dataset.frames[0], dataset.frames[1])

    events = TRACER.events()
    phase_rows = [
        (label, f"{modeled:.3f}", f"{measured:.3f}")
        for label, modeled, measured in modeled_vs_measured_rows(result.ledger, events)
    ]
    print(format_table(
        phase_rows,
        headers=["phase", "modeled s (MasPar)", "measured s (host)"],
        title=f"profile: {dataset.name} ({args.size}x{args.size}, pair 0)",
    ))
    span_rows = [
        (name, str(count), f"{total:.3f}", f"{mean_ms:.2f}")
        for name, count, total, mean_ms in span_summary_rows(events)
    ]
    print(format_table(
        span_rows, headers=["span", "count", "total s", "mean ms"], title="spans"
    ))
    family_rows = [
        (family, name, f"{value:g}")
        for family, name, value in counter_family_rows(METRICS.snapshot())
    ]
    if family_rows:
        print(format_table(
            family_rows, headers=["family", "counter", "value"],
            title="counters (search / kernel / serve)",
        ))
    text = METRICS.render_text()
    if text:
        print(text)
    _write_obs_outputs(args)
    return 0


COMMANDS = {
    "track": _cmd_track,
    "winds": _cmd_winds,
    "machine": _cmd_machine,
    "datasets": _cmd_datasets,
    "stream": _cmd_stream,
    "ingest": _cmd_ingest,
    "serve": _cmd_serve,
    "serve-worker": _cmd_serve_worker,
    "serve-admin": _cmd_serve_admin,
    "profile": _cmd_profile,
}


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = _build_parser()
    args = parser.parse_args(argv)
    try:
        return COMMANDS[args.command](args)
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
