"""Optional native (C) kernels with a guaranteed-equivalent NumPy fallback.

The paper's pitch is throughput: "over one million separate
Gaussian-eliminations" per frame pair on the MasPar.  Emulating that
batched solve with vectorized NumPy spends most of its wall-clock on
temporaries and per-operation memory traffic; a tight C loop performs the
SAME IEEE-754 arithmetic an order of magnitude faster.

This package compiles :mod:`gauss.c` on demand with the system C compiler
(no new dependencies, no NumPy headers -- the boundary is plain ``ctypes``)
and exposes :func:`native_gauss_eliminate`.  The contract is strict
bit-identity with :func:`repro.core.linalg.gaussian_eliminate`'s NumPy
path:

* the C kernel replicates the reference arithmetic element for element
  (see the comment block in ``gauss.c``),
* it is compiled with ``-ffp-contract=off`` so the compiler cannot fuse
  multiply-adds into differently-rounded FMAs, and
* :func:`_self_check` verifies bitwise agreement on a batch of adversarial
  systems (random, singular, NaN, infinity) before the kernel is ever
  trusted; any mismatch or build failure quietly disables the kernel.

Control knobs:

* environment variable ``REPRO_NATIVE=0`` disables native kernels,
* :func:`native_status` reports availability and the reason when
  unavailable,
* :func:`reset` forgets the memoized load outcome so the next call probes
  again (tests and long-lived processes whose build environment changed).

Build artifacts live in ``_build/`` next to this file (git-ignored), named
by a digest of the source, the compiler identity (``CC``) and the compile
flags so stale binaries are never reused -- a binary built by one compiler
must not be served when ``CC`` or the flags change.

Load outcomes are memoized per process, but *transient* failures (a full
tmpdir, a compiler that was momentarily missing or interrupted) are retried
on later probes up to :data:`_TRANSIENT_ATTEMPT_LIMIT` attempts.  Only
*permanent* outcomes -- the env opt-out and a failed bit-identity
self-check -- stick for the life of the process (a kernel that disagrees
with the reference must never be re-trusted just because time passed).
"""

from __future__ import annotations

import ctypes
import hashlib
import logging
import os
import subprocess
import tempfile
from pathlib import Path

import numpy as np

from ..obs.log import get_logger, log_event
from ..obs.metrics import METRICS
from ..obs.tracing import TRACER

__all__ = [
    "native_available",
    "native_gauss_eliminate",
    "native_status",
    "reset",
]

_LOG = get_logger("native")

_HERE = Path(__file__).resolve().parent
_SOURCE = _HERE / "gauss.c"
_BUILD_DIR = _HERE / "_build"
_CFLAGS = ["-O2", "-fPIC", "-shared", "-ffp-contract=off", "-fno-fast-math"]

#: Lazily populated: None = not attempted, (lib, None) = usable,
#: (None, reason) = unusable.
_state: tuple[ctypes.CDLL | None, str | None] | None = None

#: True when the memoized failure must never be retried within this process:
#: the env opt-out, or a kernel that failed the bit-identity self-check.
_state_permanent: bool = False

#: Failed probe count for transient (environmental) failures.  Bounded so a
#: hot loop calling native_available() does not re-run the compiler forever.
_transient_attempts: int = 0
_TRANSIENT_ATTEMPT_LIMIT = 3

#: Failure classes that plausibly heal on their own: filesystem pressure,
#: a missing/busy compiler, an interrupted or timed-out build.
_TRANSIENT_EXCEPTIONS = (OSError, subprocess.SubprocessError)


def _build_digest() -> str:
    """Cache key covering everything that shapes the binary.

    Source bytes alone are not enough: the same ``gauss.c`` compiled by a
    different ``CC`` (or with different flags) is a different artifact, and
    serving the old one would silently ignore the requested toolchain.
    """
    h = hashlib.blake2b(digest_size=10)
    h.update(_SOURCE.read_bytes())
    h.update(b"\x00")
    h.update(os.environ.get("CC", "cc").encode())
    h.update(b"\x00")
    h.update("\x1f".join(_CFLAGS).encode())
    return h.hexdigest()


def _compile() -> Path:
    """Compile gauss.c into the build cache, atomically, and return the path."""
    digest = _build_digest()
    target = _BUILD_DIR / f"gauss-{digest}.so"
    if target.exists():
        return target
    _BUILD_DIR.mkdir(parents=True, exist_ok=True)
    compiler = os.environ.get("CC", "cc")
    fd, tmp_name = tempfile.mkstemp(suffix=".so", dir=_BUILD_DIR)
    os.close(fd)
    try:
        subprocess.run(
            [compiler, *_CFLAGS, "-o", tmp_name, str(_SOURCE)],
            check=True,
            capture_output=True,
            timeout=120,
        )
        os.replace(tmp_name, target)  # atomic: concurrent builders converge
    finally:
        if os.path.exists(tmp_name):
            os.unlink(tmp_name)
    return target


def _reference_eliminate(a: np.ndarray, b: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """The NumPy reference, inlined to avoid a circular import with linalg."""
    from ..core.linalg import gaussian_eliminate

    return gaussian_eliminate(np.asarray(a), np.asarray(b), prefer_native=False)


def _self_check(lib: ctypes.CDLL) -> None:
    """Demand bitwise agreement with the NumPy path on adversarial systems."""
    rng = np.random.default_rng(20260806)
    a = rng.normal(size=(64, 6, 6)) * np.exp(rng.normal(scale=4.0, size=(64, 1, 1)))
    b = rng.normal(size=(64, 6))
    a[0] = 0.0  # fully singular
    a[1, 3] = a[1, 4]  # rank deficient
    a[2, 2, 2] = np.nan  # NaN pivot path
    a[3, 1, 1] = np.inf  # infinity propagation
    a[4, :, 0] = 0.0  # forces pivot failure at k=0
    a[5, 5, :] = 1e-300  # denormal-adjacent pivots
    with np.errstate(all="ignore"):  # NaN/inf probes are intentional
        x_ref, s_ref = _reference_eliminate(a, b)
        x_nat, s_nat = _call_kernel(lib, a, b)
    if not (
        np.array_equal(x_ref, x_nat, equal_nan=True) and np.array_equal(s_ref, s_nat)
    ):
        raise AssertionError("native gauss kernel disagrees with NumPy reference")


def _call_kernel(
    lib: ctypes.CDLL, matrices: np.ndarray, rhs: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    a = np.array(matrices, dtype=np.float64, copy=True, order="C")
    b = np.array(rhs, dtype=np.float64, copy=True, order="C")
    n = a.shape[-1]
    batch_shape = a.shape[:-2]
    a = a.reshape((-1, n, n))
    b = b.reshape((-1, n))
    m = a.shape[0]
    x = np.zeros((m, n), dtype=np.float64)
    singular = np.zeros(m, dtype=np.uint8)
    if m:
        lib.gauss_eliminate(
            a.ctypes.data_as(ctypes.POINTER(ctypes.c_double)),
            b.ctypes.data_as(ctypes.POINTER(ctypes.c_double)),
            x.ctypes.data_as(ctypes.POINTER(ctypes.c_double)),
            singular.ctypes.data_as(ctypes.POINTER(ctypes.c_ubyte)),
            ctypes.c_ssize_t(m),
            ctypes.c_ssize_t(n),
        )
    return (
        x.reshape(batch_shape + (n,)),
        singular.astype(bool).reshape(batch_shape),
    )


def _load() -> tuple[ctypes.CDLL | None, str | None]:
    global _state, _state_permanent, _transient_attempts
    if _state is not None:
        retryable = (
            _state[0] is None
            and not _state_permanent
            and _transient_attempts < _TRANSIENT_ATTEMPT_LIMIT
        )
        if not retryable:
            return _state
    if os.environ.get("REPRO_NATIVE", "1") == "0":
        _state = (None, "disabled by REPRO_NATIVE=0")
        _state_permanent = True
        METRICS.set_gauge("native.available", 0)
        log_event(_LOG, logging.INFO, "native.disabled", reason="REPRO_NATIVE=0")
        return _state
    try:
        with TRACER.span("native.build"):
            lib = ctypes.CDLL(str(_compile()))
        lib.gauss_eliminate.restype = ctypes.c_int
        lib.gauss_eliminate.argtypes = [
            ctypes.POINTER(ctypes.c_double),
            ctypes.POINTER(ctypes.c_double),
            ctypes.POINTER(ctypes.c_double),
            ctypes.POINTER(ctypes.c_ubyte),
            ctypes.c_ssize_t,
            ctypes.c_ssize_t,
        ]
        with TRACER.span("native.self_check"):
            _self_check(lib)
    except _TRANSIENT_EXCEPTIONS as exc:
        _transient_attempts += 1
        reason = f"{type(exc).__name__}: {exc}"
        if _transient_attempts >= _TRANSIENT_ATTEMPT_LIMIT:
            reason += (
                f" (giving up after {_TRANSIENT_ATTEMPT_LIMIT} attempts;"
                " call repro.native.reset() to retry)"
            )
        _state = (None, reason)
        _state_permanent = False
        METRICS.set_gauge("native.available", 0)
        METRICS.inc("native.load.transient_failure")
        log_event(
            _LOG, logging.WARNING, "native.unavailable",
            reason=reason, transient=True, attempt=_transient_attempts,
        )
        return _state
    except Exception as exc:  # wrong kernel / bad source: never re-trust
        _state = (None, f"{type(exc).__name__}: {exc}")
        _state_permanent = True
        METRICS.set_gauge("native.available", 0)
        log_event(
            _LOG, logging.WARNING, "native.unavailable",
            reason=f"{type(exc).__name__}: {exc}", transient=False,
        )
        return _state
    _state = (lib, None)
    _state_permanent = False
    _transient_attempts = 0
    METRICS.set_gauge("native.available", 1)
    log_event(_LOG, logging.INFO, "native.loaded", source=_SOURCE.name)
    return _state


def reset() -> None:
    """Forget the memoized load outcome; the next probe starts from scratch.

    The loader memoizes one outcome per process.  Tests that flip
    ``REPRO_NATIVE`` or ``CC``, and long-lived processes whose build
    environment has been repaired (or that want to retry after the
    transient-attempt budget is exhausted), call this to force a fresh
    probe.  Safe to call at any time; already-dispatched solves are
    unaffected.
    """
    global _state, _state_permanent, _transient_attempts
    _state = None
    _state_permanent = False
    _transient_attempts = 0


def native_available() -> bool:
    """True when the compiled kernel is loaded and passed its self-check."""
    return _load()[0] is not None


def native_status() -> str:
    """``"available"`` or the reason the native kernel is unusable."""
    lib, reason = _load()
    return "available" if lib is not None else reason or "unavailable"


def native_gauss_eliminate(
    matrices: np.ndarray, rhs: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Solve with the native kernel.  Caller must check availability first."""
    lib, reason = _load()
    if lib is None:
        raise RuntimeError(f"native kernel unavailable: {reason}")
    return _call_kernel(lib, matrices, rhs)
