/* Batched partial-pivot Gaussian elimination -- native twin of
 * repro.core.linalg.gaussian_eliminate.
 *
 * The kernel performs BITWISE the same IEEE-754 double arithmetic as the
 * vectorized NumPy reference, element for element, in the same order:
 *
 *   - pivot selection is argmax of |column| with first-max-wins ties and
 *     NumPy's NaN-is-maximal convention,
 *   - row updates compute a[i][j] - (a[i][k]/pivot) * a[k][j] with exactly
 *     one rounding per multiply and subtract (compiled with
 *     -ffp-contract=off so no FMA contraction is allowed),
 *   - back substitution accumulates sum_j a[k][j] * x[j] the way
 *     np.einsum's SIMD inner-product loop does: two lanes of partial sums
 *     (even and odd positions), each 8-element block folded right-nested
 *     into its lane accumulator, leftover pairs added left-associated,
 *     and one final lane-combining add (verified bit-exact against
 *     np.einsum for every contraction length 1..40),
 *   - pivots below SINGULAR_TOLERANCE mark the system singular, divide by
 *     a substituted 1.0 and zero the factors, exactly like the reference.
 *
 * Because IEEE add/mul/div are exactly rounded and the operand order is
 * identical, scalar C and vectorized NumPy produce identical bit patterns.
 * The Python wrapper cross-checks this on import with a fingerprint batch
 * and refuses the kernel on any mismatch.
 */

#include <math.h>
#include <stddef.h>

static const double SINGULAR_TOLERANCE = 1e-12;

/* NumPy argmax semantics for doubles: keep the first encountered value
 * that every later value fails to exceed; a NaN beats any non-NaN and
 * the first NaN wins. */
static ptrdiff_t column_argmax(const double *col, ptrdiff_t len, ptrdiff_t stride)
{
    ptrdiff_t best_i = 0;
    double best = fabs(col[0]);
    int best_nan = isnan(best);
    for (ptrdiff_t i = 1; i < len; i++) {
        double v = fabs(col[i * stride]);
        if (best_nan)
            break;
        if (v > best || isnan(v)) {
            best = v;
            best_i = i;
            best_nan = isnan(v);
        }
    }
    return best_i;
}

/* Solve m independent n-by-n systems.  a (m*n*n) and b (m*n) are scratch
 * copies and are destroyed; x (m*n) receives solutions (zeros for
 * singular systems); singular (m) receives 0/1 flags.  Returns 0. */
int gauss_eliminate(double *a, double *b, double *x, unsigned char *singular,
                    ptrdiff_t m, ptrdiff_t n)
{
    for (ptrdiff_t s = 0; s < m; s++) {
        double *as = a + s * n * n;
        double *bs = b + s * n;
        double *xs = x + s * n;
        unsigned char sing = 0;

        for (ptrdiff_t k = 0; k < n; k++) {
            ptrdiff_t piv = k + column_argmax(as + k * n + k, n - k, n);
            if (piv != k) {
                for (ptrdiff_t j = 0; j < n; j++) {
                    double tmp = as[k * n + j];
                    as[k * n + j] = as[piv * n + j];
                    as[piv * n + j] = tmp;
                }
                double tmp = bs[k];
                bs[k] = bs[piv];
                bs[piv] = tmp;
            }
            double pivot = as[k * n + k];
            int bad = fabs(pivot) < SINGULAR_TOLERANCE;
            /* NaN pivots compare false against the tolerance, exactly like
             * np.abs(pivots) < SINGULAR_TOLERANCE. */
            if (bad)
                sing = 1;
            double safe = bad ? 1.0 : pivot;
            for (ptrdiff_t i = k + 1; i < n; i++) {
                double factor = bad ? 0.0 : as[i * n + k] / safe;
                for (ptrdiff_t j = 0; j < n; j++)
                    as[i * n + j] -= factor * as[k * n + j];
                bs[i] -= factor * bs[k];
            }
        }

        for (ptrdiff_t k = n - 1; k >= 0; k--) {
            /* np.einsum("ij,ij->i", ...) SIMD kernel, replicated exactly:
             * two lanes (even/odd positions); each full block of 8 terms
             * folds right-nested into its lane accumulator,
             *   lane = t0 + (t2 + (t4 + (t6 + lane)))
             * then leftover pairs add left-associated and the lanes
             * combine with one final add. */
            const double *row = as + k * n + (k + 1);
            const double *xv = xs + (k + 1);
            ptrdiff_t len = n - 1 - k;
            ptrdiff_t head = (len / 8) * 8;
            double lane0 = 0.0, lane1 = 0.0;
            for (ptrdiff_t j = 0; j < head; j += 8) {
                double t0 = row[j] * xv[j];
                double t1 = row[j + 1] * xv[j + 1];
                double t2 = row[j + 2] * xv[j + 2];
                double t3 = row[j + 3] * xv[j + 3];
                double t4 = row[j + 4] * xv[j + 4];
                double t5 = row[j + 5] * xv[j + 5];
                double t6 = row[j + 6] * xv[j + 6];
                double t7 = row[j + 7] * xv[j + 7];
                lane0 = t0 + (t2 + (t4 + (t6 + lane0)));
                lane1 = t1 + (t3 + (t5 + (t7 + lane1)));
            }
            for (ptrdiff_t j = head; j < len; j += 2) {
                lane0 += row[j] * xv[j];
                if (j + 1 < len)
                    lane1 += row[j + 1] * xv[j + 1];
            }
            double acc = lane0 + lane1;
            double pivot = as[k * n + k];
            double safe = fabs(pivot) < SINGULAR_TOLERANCE ? 1.0 : pivot;
            xs[k] = (bs[k] - acc) / safe;
        }
        if (sing)
            for (ptrdiff_t j = 0; j < n; j++)
                xs[j] = 0.0;
        singular[s] = sing;
    }
    return 0;
}
