"""Left-right consistency validation of disparity maps.

The classic occlusion/mismatch detector for correlation stereo: match
left-against-right *and* right-against-left, then flag pixels where the
two disagree.  For a correct correspondence the disparities are
opposite -- if the left-referenced disparity at ``x`` is ``d``, the
right-referenced disparity at ``x + d`` must be ``-d`` -- so

    |d_L(x) + d_R(x + d_L(x))| <= tolerance

holds everywhere except at occlusions (cloud edges hiding lower decks
from one satellite) and gross mismatches.  Invalidated pixels are
either masked out of the height product or filled from their valid
neighbors, the standard post-pass the paper-era operational chains ran
before handing heights to the tracker.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .asa import ASAConfig, estimate_disparity


@dataclass(frozen=True)
class ConsistencyResult:
    """Cross-checked disparity: the left-referenced map, the validity
    mask, and the raw left/right maps for diagnostics."""

    disparity: np.ndarray
    valid: np.ndarray
    left_disparity: np.ndarray
    right_disparity: np.ndarray

    @property
    def invalid_fraction(self) -> float:
        return float(1.0 - self.valid.mean())


def check_consistency(
    left_disparity: np.ndarray,
    right_disparity: np.ndarray,
    tolerance: float = 1.0,
) -> np.ndarray:
    """Boolean mask: True where the two views agree within tolerance.

    ``left_disparity`` is referenced to left-image pixels (a feature at
    left x sits at right ``x + d_L``); ``right_disparity`` to
    right-image pixels with the opposite sign convention (a feature at
    right x sits at left ``x + d_R``).
    """
    d_l = np.asarray(left_disparity, dtype=np.float64)
    d_r = np.asarray(right_disparity, dtype=np.float64)
    if d_l.shape != d_r.shape:
        raise ValueError("disparity maps must share a shape")
    if tolerance < 0:
        raise ValueError("tolerance must be >= 0")
    h, w = d_l.shape
    xx = np.arange(w)[None, :].repeat(h, 0)
    target = np.clip(np.round(xx + d_l).astype(np.int64), 0, w - 1)
    yy = np.arange(h)[:, None].repeat(w, 1)
    residual = np.abs(d_l + d_r[yy, target])
    in_bounds = (xx + d_l >= 0) & (xx + d_l <= w - 1)
    return (residual <= tolerance) & in_bounds


def fill_invalid(disparity: np.ndarray, valid: np.ndarray) -> np.ndarray:
    """Replace invalid pixels with the nearest valid value on their row.

    The row-wise fill is the standard choice for scan-line stereo
    (disparity is continuous along rows away from occlusions).  Rows
    with no valid pixel fall back to the global valid median; a map
    with no valid pixels at all is returned unchanged.
    """
    disparity = np.asarray(disparity, dtype=np.float64).copy()
    valid = np.asarray(valid, dtype=bool)
    if disparity.shape != valid.shape:
        raise ValueError("shape mismatch")
    if not valid.any():
        return disparity
    global_fill = float(np.median(disparity[valid]))
    h, w = disparity.shape
    cols = np.arange(w)
    for y in range(h):
        row_valid = valid[y]
        if not row_valid.any():
            disparity[y] = global_fill
            continue
        if row_valid.all():
            continue
        valid_cols = cols[row_valid]
        nearest = valid_cols[
            np.argmin(np.abs(cols[:, None] - valid_cols[None, :]), axis=1)
        ]
        invalid = ~row_valid
        disparity[y, invalid] = disparity[y, nearest[invalid]]
    return disparity


def cross_checked_disparity(
    left: np.ndarray,
    right: np.ndarray,
    config: ASAConfig | None = None,
    tolerance: float = 1.0,
    fill: bool = True,
) -> ConsistencyResult:
    """Run the ASA both ways and cross-validate.

    The right-referenced pass matches ``right`` against ``left``; with
    our scan-line convention that is the same estimator with the images
    swapped (its disparity carries the opposite sign for true
    correspondences).
    """
    config = config or ASAConfig()
    forward = estimate_disparity(left, right, config).disparity
    backward = estimate_disparity(right, left, config).disparity
    valid = check_consistency(forward, backward, tolerance)
    disparity = fill_invalid(forward, valid) if fill else forward.copy()
    return ConsistencyResult(
        disparity=disparity,
        valid=valid,
        left_disparity=forward,
        right_disparity=backward,
    )
