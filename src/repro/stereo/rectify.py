"""Epipolar rectification of the right view.

"During stereo analysis the right images are rectified and warped to
align them with the left images such that epipolar lines become
parallel to scan lines" (Section 2.2).  For geostationary pairs over a
common target the residual misalignment is well modeled by a global
vertical shift plus a small row-dependent shear; this module estimates
and removes both so the correlation matcher can search along rows only.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import ndimage


@dataclass(frozen=True)
class RectificationModel:
    """Row-aligning warp: ``right'(x, y) = right(x + shear * y, y + shift)``."""

    vertical_shift: float = 0.0
    shear: float = 0.0

    def apply(self, right: np.ndarray, order: int = 3) -> np.ndarray:
        """Resample the right image into the rectified frame."""
        right = np.asarray(right, dtype=np.float64)
        h, w = right.shape
        yy, xx = np.meshgrid(
            np.arange(h, dtype=np.float64), np.arange(w, dtype=np.float64), indexing="ij"
        )
        coords = np.stack([yy + self.vertical_shift, xx + self.shear * yy])
        return ndimage.map_coordinates(right, coords, order=order, mode="nearest")


def estimate_vertical_shift(
    left: np.ndarray, right: np.ndarray, max_shift: int = 8
) -> int:
    """Integer vertical misalignment by row-profile correlation.

    Projects both images onto their row axis (mean over columns) and
    finds the shift maximizing the normalized correlation of the
    profiles -- robust because clouds dominate both projections.
    """
    left = np.asarray(left, dtype=np.float64)
    right = np.asarray(right, dtype=np.float64)
    if left.shape != right.shape:
        raise ValueError("images must share a shape")
    if max_shift < 0 or max_shift >= left.shape[0] // 2:
        raise ValueError("max_shift out of range")
    profile_l = left.mean(axis=1)
    profile_l = profile_l - profile_l.mean()
    profile_r = right.mean(axis=1)
    profile_r = profile_r - profile_r.mean()
    best_shift, best_score = 0, -np.inf
    for shift in range(-max_shift, max_shift + 1):
        if shift >= 0:
            a = profile_l[: profile_l.size - shift]
            b = profile_r[shift:]
        else:
            a = profile_l[-shift:]
            b = profile_r[: profile_r.size + shift]
        denom = np.linalg.norm(a) * np.linalg.norm(b)
        score = float(a @ b / denom) if denom > 0 else 0.0
        if score > best_score:
            best_score, best_shift = score, shift
    return best_shift


def rectify_pair(
    left: np.ndarray, right: np.ndarray, max_shift: int = 8
) -> tuple[np.ndarray, RectificationModel]:
    """Estimate and apply the row-aligning warp to the right image.

    Returns ``(rectified_right, model)``; the left image is the
    rectification reference and passes through unchanged, matching the
    paper's convention of tracking in the left frame.
    """
    shift = estimate_vertical_shift(left, right, max_shift=max_shift)
    model = RectificationModel(vertical_shift=float(shift), shear=0.0)
    return model.apply(right), model
