"""Automatic Stereo Analysis (ASA) substrate (Section 2.1).

Correlation-based, multiresolution, hierarchical coarse-to-fine
disparity estimation converting GOES stereo pairs into cloud-top height
maps: Gaussian pyramids (:mod:`.pyramid`), NCC scan-line matching
(:mod:`.correlation`), epipolar rectification (:mod:`.rectify`), the
hierarchical driver (:mod:`.asa`) and the disparity/height geometry
(:mod:`.geometry`).
"""

from .asa import ASAConfig, ASAResult, estimate_disparity, surface_map, warp_right_by_disparity
from .consistency import (
    ConsistencyResult,
    check_consistency,
    cross_checked_disparity,
    fill_invalid,
)
from .correlation import DisparityEstimate, match_scanlines, ncc_score_stack
from .geometry import EARTH_RADIUS_KM, FREDERIC_GEOMETRY, GEO_ORBIT_RADIUS_KM, StereoGeometry, incidence_angle_rad
from .pyramid import build_pyramid, downsample, upsample_disparity
from .rectify import RectificationModel, estimate_vertical_shift, rectify_pair

__all__ = [
    "ASAConfig",
    "ASAResult",
    "estimate_disparity",
    "surface_map",
    "warp_right_by_disparity",
    "ConsistencyResult",
    "check_consistency",
    "cross_checked_disparity",
    "fill_invalid",
    "DisparityEstimate",
    "match_scanlines",
    "ncc_score_stack",
    "EARTH_RADIUS_KM",
    "FREDERIC_GEOMETRY",
    "GEO_ORBIT_RADIUS_KM",
    "StereoGeometry",
    "incidence_angle_rad",
    "build_pyramid",
    "downsample",
    "upsample_disparity",
    "RectificationModel",
    "estimate_vertical_shift",
    "rectify_pair",
]
