"""Multiresolution image pyramids for the ASA algorithm.

"In the multiresolution approach the ASA uses the coarse disparity
estimates to warp or transform one view into the other thereby
successively estimating smaller disparities at finer resolutions of the
hierarchy ... image matching is done at several different resolutions,
typically four levels" (Section 2.1).

A pyramid level halves resolution after Gaussian anti-alias filtering;
disparity maps estimated at a coarse level are upsampled with bilinear
interpolation and *doubled* (a disparity measured in coarse pixels
spans twice as many fine pixels).
"""

from __future__ import annotations

import numpy as np
from scipy import ndimage

#: Gaussian sigma used before each 2x decimation (standard anti-alias).
DECIMATION_SIGMA = 1.0


def downsample(image: np.ndarray) -> np.ndarray:
    """Gaussian-filtered 2x decimation."""
    image = np.asarray(image, dtype=np.float64)
    if image.ndim != 2:
        raise ValueError(f"image must be 2-D, got {image.shape}")
    if min(image.shape) < 2:
        raise ValueError("image too small to downsample")
    smoothed = ndimage.gaussian_filter(image, DECIMATION_SIGMA, mode="nearest")
    return smoothed[::2, ::2].copy()


def build_pyramid(image: np.ndarray, levels: int = 4) -> list[np.ndarray]:
    """Pyramid from fine (index 0) to coarse (index levels-1).

    Raises if the image cannot support the requested depth (each level
    needs at least 8 pixels per side to carry matchable structure).
    """
    if levels < 1:
        raise ValueError("levels must be >= 1")
    image = np.asarray(image, dtype=np.float64)
    pyramid = [image.copy()]
    for _ in range(levels - 1):
        if min(pyramid[-1].shape) < 16:
            raise ValueError(
                f"image {image.shape} cannot support {levels} pyramid levels"
            )
        pyramid.append(downsample(pyramid[-1]))
    return pyramid


def upsample_disparity(disparity: np.ndarray, target_shape: tuple[int, int]) -> np.ndarray:
    """Upsample a coarse disparity map to a finer level.

    Values are scaled by the resolution ratio so they remain expressed
    in destination-level pixels.
    """
    disparity = np.asarray(disparity, dtype=np.float64)
    th, tw = target_shape
    sh, sw = disparity.shape
    if th < sh or tw < sw:
        raise ValueError("target shape must be at least the source shape")
    scale_y = th / sh
    scale_x = tw / sw
    yy, xx = np.meshgrid(
        np.arange(th, dtype=np.float64) / scale_y,
        np.arange(tw, dtype=np.float64) / scale_x,
        indexing="ij",
    )
    coords = np.stack([np.clip(yy, 0, sh - 1), np.clip(xx, 0, sw - 1)])
    up = ndimage.map_coordinates(disparity, coords, order=1, mode="nearest")
    return up * scale_x  # disparity is horizontal: scale by the x ratio


def upsample_flow(
    u: np.ndarray, v: np.ndarray, target_shape: tuple[int, int]
) -> tuple[np.ndarray, np.ndarray]:
    """Upsample a coarse 2-D flow field to a finer level.

    Like :func:`upsample_disparity` but for a full displacement field:
    the horizontal component is scaled by the x resolution ratio and the
    vertical component by the y ratio, so both remain expressed in
    destination-level pixels.  Used by the pyramid-guided SMA search to
    lift coarse hypothesis estimates to the next finer level.
    """
    u = np.asarray(u, dtype=np.float64)
    v = np.asarray(v, dtype=np.float64)
    if u.shape != v.shape:
        raise ValueError(f"flow component shapes differ: {u.shape} vs {v.shape}")
    th, tw = target_shape
    sh, sw = u.shape
    if th < sh or tw < sw:
        raise ValueError("target shape must be at least the source shape")
    scale_y = th / sh
    scale_x = tw / sw
    yy, xx = np.meshgrid(
        np.arange(th, dtype=np.float64) / scale_y,
        np.arange(tw, dtype=np.float64) / scale_x,
        indexing="ij",
    )
    coords = np.stack([np.clip(yy, 0, sh - 1), np.clip(xx, 0, sw - 1)])
    up_u = ndimage.map_coordinates(u, coords, order=1, mode="nearest")
    up_v = ndimage.map_coordinates(v, coords, order=1, mode="nearest")
    return up_u * scale_x, up_v * scale_y
