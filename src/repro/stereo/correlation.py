"""Correlation-based stereo matching along scan lines.

The ASA is "an existing correlation-based Automatic Stereo Analysis
algorithm" (Section 2.1): for each left-image pixel a square
*stereo-analysis template* is correlated against the rectified right
image at candidate disparities along the scan line; the
normalized-cross-correlation (NCC) maximum gives the integer disparity
and a parabolic fit through the neighboring scores refines it to
sub-pixel precision.

The dense evaluation is vectorized the standard way: for each candidate
disparity ``d`` the per-pixel NCC field is computed from box sums of
``L``, ``R_d`` (the right image shifted by ``d``), their squares and
product -- so the whole search is ``O(n_disparities)`` filtered passes
rather than a per-pixel loop.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.semifluid import box_sum, shift2d

#: Variance floor: windows flatter than this produce NCC = 0 (unmatched).
VARIANCE_FLOOR = 1e-10


def ncc_score_stack(
    left: np.ndarray,
    right: np.ndarray,
    disparities: np.ndarray,
    template_half_width: int,
) -> np.ndarray:
    """NCC scores for every pixel and candidate disparity.

    Returns ``(n_disparities, H, W)``; ``scores[k, y, x]`` correlates
    the left template at ``(x, y)`` with the right template at
    ``(x + disparities[k], y)``.  Windows with negligible variance on
    either side score 0.
    """
    left = np.asarray(left, dtype=np.float64)
    right = np.asarray(right, dtype=np.float64)
    if left.shape != right.shape:
        raise ValueError("stereo images must share a shape")
    disparities = np.asarray(disparities, dtype=np.int64)
    n = template_half_width
    count = float((2 * n + 1) ** 2)

    sum_l = box_sum(left, n)
    sum_ll = box_sum(left * left, n)
    var_l = sum_ll - sum_l * sum_l / count

    scores = np.empty((disparities.size,) + left.shape, dtype=np.float64)
    for k, d in enumerate(disparities):
        shifted = shift2d(right, 0, int(d))
        sum_r = box_sum(shifted, n)
        sum_rr = box_sum(shifted * shifted, n)
        sum_lr = box_sum(left * shifted, n)
        var_r = sum_rr - sum_r * sum_r / count
        cov = sum_lr - sum_l * sum_r / count
        denom = np.sqrt(np.maximum(var_l, 0.0) * np.maximum(var_r, 0.0))
        valid = denom > VARIANCE_FLOOR
        scores[k] = np.where(valid, cov / np.where(valid, denom, 1.0), 0.0)
    return scores


@dataclass(frozen=True)
class DisparityEstimate:
    """Dense disparity estimate with per-pixel peak confidence."""

    disparity: np.ndarray  # (H, W), sub-pixel
    confidence: np.ndarray  # (H, W), NCC peak value in [-1, 1]


def match_scanlines(
    left: np.ndarray,
    right: np.ndarray,
    search_range: tuple[int, int],
    template_half_width: int = 3,
    subpixel: bool = True,
) -> DisparityEstimate:
    """Dense scan-line disparity by exhaustive NCC search.

    ``search_range`` is the inclusive integer disparity interval
    ``(d_min, d_max)`` (a positive disparity means the right-image
    feature sits at larger x).  Sub-pixel refinement fits a parabola
    through the three scores around each peak; peaks on the interval
    boundary stay integer.
    """
    d_min, d_max = search_range
    if d_max < d_min:
        raise ValueError("search_range must satisfy d_min <= d_max")
    disparities = np.arange(d_min, d_max + 1)
    scores = ncc_score_stack(left, right, disparities, template_half_width)
    best = np.argmax(scores, axis=0)
    peak = np.take_along_axis(scores, best[None], axis=0)[0]
    disparity = disparities[best].astype(np.float64)

    if subpixel and disparities.size >= 3:
        interior = (best > 0) & (best < disparities.size - 1)
        prev = np.take_along_axis(scores, np.maximum(best - 1, 0)[None], axis=0)[0]
        nxt = np.take_along_axis(
            scores, np.minimum(best + 1, disparities.size - 1)[None], axis=0
        )[0]
        denom = prev - 2.0 * peak + nxt
        with np.errstate(divide="ignore", invalid="ignore"):
            offset = 0.5 * (prev - nxt) / denom
        offset = np.where(interior & (np.abs(denom) > 1e-12), offset, 0.0)
        offset = np.clip(offset, -0.5, 0.5)
        disparity = disparity + offset

    return DisparityEstimate(disparity=disparity, confidence=peak)
