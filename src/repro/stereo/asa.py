"""Automatic Stereo Analysis: hierarchical coarse-to-fine disparity.

The ASA "attempts to model aspects of the human visual system,
particularly the multiresolution, hierarchical and coarse-to-fine based
searching ...  the ASA uses the coarse disparity estimates to warp or
transform one view into the other thereby successively estimating
smaller disparities at finer resolutions" (Section 2.1).

Pipeline per stereo pair:

1. build Gaussian pyramids of both rectified images (typically 4 levels),
2. at the coarsest level run the full NCC scan-line search,
3. at each finer level, upsample the running disparity, *warp* the
   right image by it, and match the residual with a small search range,
4. accumulate: disparity = upsampled coarse + residual.

The final dense disparity converts to a cloud-top height map through
:class:`repro.stereo.geometry.StereoGeometry`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import ndimage

from .correlation import match_scanlines
from .geometry import StereoGeometry
from .pyramid import build_pyramid, upsample_disparity


@dataclass(frozen=True)
class ASAConfig:
    """ASA parameters.

    ``levels=4`` matches the paper ("typically four levels"); the
    template half-width is the *stereo-analysis template* whose size
    "determines the starting resolution level" -- coarse levels see
    proportionally larger ground footprints through the same window.
    """

    levels: int = 4
    template_half_width: int = 3
    coarse_search: int = 4
    refine_search: int = 2
    subpixel: bool = True

    def __post_init__(self) -> None:
        if self.levels < 1:
            raise ValueError("levels must be >= 1")
        if self.template_half_width < 1:
            raise ValueError("template_half_width must be >= 1")
        if self.coarse_search < 1 or self.refine_search < 1:
            raise ValueError("search ranges must be >= 1")


def warp_right_by_disparity(right: np.ndarray, disparity: np.ndarray) -> np.ndarray:
    """Resample the right image so features land at their left positions.

    A feature at right-image column ``x + d`` moves to column ``x``:
    ``warped(x, y) = right(x + d(x, y), y)``.
    """
    right = np.asarray(right, dtype=np.float64)
    disparity = np.asarray(disparity, dtype=np.float64)
    if right.shape != disparity.shape:
        raise ValueError("right image and disparity must share a shape")
    h, w = right.shape
    yy, xx = np.meshgrid(
        np.arange(h, dtype=np.float64), np.arange(w, dtype=np.float64), indexing="ij"
    )
    coords = np.stack([yy, xx + disparity])
    return ndimage.map_coordinates(right, coords, order=3, mode="nearest")


@dataclass(frozen=True)
class ASAResult:
    """Dense ASA output: disparity (pixels), confidence, per-level history."""

    disparity: np.ndarray
    confidence: np.ndarray
    level_disparities: tuple[np.ndarray, ...]


def estimate_disparity(
    left: np.ndarray, right: np.ndarray, config: ASAConfig | None = None
) -> ASAResult:
    """Run the full hierarchical ASA on a rectified pair."""
    config = config or ASAConfig()
    left = np.asarray(left, dtype=np.float64)
    right = np.asarray(right, dtype=np.float64)
    if left.shape != right.shape:
        raise ValueError("stereo images must share a shape")

    pyr_l = build_pyramid(left, config.levels)
    pyr_r = build_pyramid(right, config.levels)

    history: list[np.ndarray] = []
    disparity: np.ndarray | None = None
    confidence: np.ndarray | None = None

    for level in range(config.levels - 1, -1, -1):
        lvl_l, lvl_r = pyr_l[level], pyr_r[level]
        if disparity is None:
            search = (-config.coarse_search, config.coarse_search)
            estimate = match_scanlines(
                lvl_l, lvl_r, search, config.template_half_width, config.subpixel
            )
            disparity = estimate.disparity
            confidence = estimate.confidence
        else:
            disparity = upsample_disparity(disparity, lvl_l.shape)
            warped = warp_right_by_disparity(lvl_r, disparity)
            search = (-config.refine_search, config.refine_search)
            residual = match_scanlines(
                lvl_l, warped, search, config.template_half_width, config.subpixel
            )
            disparity = disparity + residual.disparity
            confidence = residual.confidence
        history.append(disparity.copy())

    assert disparity is not None and confidence is not None
    return ASAResult(
        disparity=disparity,
        confidence=confidence,
        level_disparities=tuple(history),
    )


def surface_map(
    left: np.ndarray,
    right: np.ndarray,
    geometry: StereoGeometry,
    config: ASAConfig | None = None,
) -> np.ndarray:
    """Dense cloud-top height map z(t) in km from a rectified pair."""
    result = estimate_disparity(left, right, config)
    return np.asarray(geometry.height_from_disparity(result.disparity), dtype=np.float64)
