"""Geostationary stereo geometry: disparity <-> cloud-top height.

"The estimated disparity or depth maps can be transformed into surface
maps z(t) of cloud-top heights ... using satellite and sensor geometry
information" (Section 2.1).  For two geostationary satellites viewing
the same equatorial target, a cloud at height ``z`` above the ellipsoid
is displaced horizontally in each view by ``z * tan(zeta_i)``, where
``zeta_i`` is the local incidence angle (angle of the line of sight
from the local vertical).  After epipolar rectification the views
differ along scan lines by the *sum* of the two parallaxes when the
satellites sit on opposite sides of the target (the Hurricane Frederic
configuration: GOES-East and GOES-West "subtended an angle of about
135 degrees ... providing a very large baseline"), so

    disparity_km = z_km * (tan(zeta_1) + tan(zeta_2))
    disparity_px = disparity_km / pixel_km.

The incidence angle follows from the geostationary orbit geometry: with
Earth radius ``R_e``, orbit radius ``R_s`` and central angle ``gamma``
between the sub-satellite point and the target,

    slant     d    = sqrt(R_e^2 + R_s^2 - 2 R_e R_s cos(gamma))
    sin(zeta)      = R_s sin(gamma) / d.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

#: Earth equatorial radius (km).
EARTH_RADIUS_KM = 6378.137
#: Geostationary orbit radius from Earth center (km).
GEO_ORBIT_RADIUS_KM = 42164.0


def incidence_angle_rad(central_angle_deg: float) -> float:
    """Local incidence angle (rad) for a ground target at the given
    central angle from the sub-satellite point."""
    if not 0.0 <= central_angle_deg < 81.3:
        # beyond ~81.3 deg the target is over the geostationary horizon
        raise ValueError(
            f"central angle {central_angle_deg} deg is outside the visible disk"
        )
    gamma = np.radians(central_angle_deg)
    slant = np.sqrt(
        EARTH_RADIUS_KM**2
        + GEO_ORBIT_RADIUS_KM**2
        - 2.0 * EARTH_RADIUS_KM * GEO_ORBIT_RADIUS_KM * np.cos(gamma)
    )
    sin_zeta = GEO_ORBIT_RADIUS_KM * np.sin(gamma) / slant
    return float(np.arcsin(np.clip(sin_zeta, 0.0, 1.0)))


@dataclass(frozen=True)
class StereoGeometry:
    """Two-satellite stereo configuration over a common target.

    Parameters
    ----------
    central_angle_1_deg, central_angle_2_deg:
        Angular offsets (Earth-central) of each satellite's
        sub-satellite point from the target, on opposite sides.
    pixel_km:
        Ground sample distance of the (rectified) imagery.
    """

    central_angle_1_deg: float
    central_angle_2_deg: float
    pixel_km: float = 1.0

    def __post_init__(self) -> None:
        if self.pixel_km <= 0:
            raise ValueError("pixel_km must be positive")
        incidence_angle_rad(self.central_angle_1_deg)
        incidence_angle_rad(self.central_angle_2_deg)

    @classmethod
    def from_baseline(
        cls, baseline_deg: float, pixel_km: float = 1.0
    ) -> "StereoGeometry":
        """Symmetric configuration: target midway between the satellites.

        ``baseline_deg`` is the angle the two satellites subtend at the
        Earth's center (135 degrees for the Frederic GOES-6/GOES-7 pair).
        """
        if not 0.0 < baseline_deg < 162.0:
            raise ValueError("baseline must be in (0, 162) degrees for a visible target")
        half = baseline_deg / 2.0
        return cls(central_angle_1_deg=half, central_angle_2_deg=half, pixel_km=pixel_km)

    @property
    def parallax_factor(self) -> float:
        """Disparity in km of ground displacement per km of cloud height."""
        z1 = incidence_angle_rad(self.central_angle_1_deg)
        z2 = incidence_angle_rad(self.central_angle_2_deg)
        return float(np.tan(z1) + np.tan(z2))

    @property
    def px_per_km(self) -> float:
        """Disparity in pixels per km of cloud height."""
        return self.parallax_factor / self.pixel_km

    def disparity_from_height(self, z_km: np.ndarray | float) -> np.ndarray | float:
        """Rectified scan-line disparity (pixels) for cloud height (km)."""
        return np.asarray(z_km, dtype=np.float64) * self.px_per_km

    def height_from_disparity(self, d_px: np.ndarray | float) -> np.ndarray | float:
        """Cloud-top height (km) from rectified disparity (pixels)."""
        return np.asarray(d_px, dtype=np.float64) / self.px_per_km


#: Hurricane Frederic configuration: GOES-6 (East) / GOES-7 (West),
#: ~135 degree baseline, ~1 km pixels at image center (Section 5.1).
FREDERIC_GEOMETRY = StereoGeometry.from_baseline(135.0, pixel_km=1.0)
