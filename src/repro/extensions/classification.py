"""Cloud classification and class-aware motion post-processing (Section 6).

"Future work involves ... post processing the motion field by using
cloud classification."  The idea: cloud motion statistics are
physically stratified -- clear sky has no trackable motion, low stratus
moves with the boundary-layer wind, high cirrus with upper-level flow
-- so classifying pixels first lets the post-processor regularize
*within* classes instead of blurring across them.

:func:`classify` implements a standard threshold classifier on
(height, intensity, texture); :func:`class_motion_statistics`
summarizes the motion field per class; and
:func:`classified_median_filter` applies the vector-median despeckler
within each class only, preserving inter-class motion discontinuities
(the multi-layer case the SMA exists for).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import IntEnum

import numpy as np
from scipy import ndimage

from ..core.field import MotionField


class CloudClass(IntEnum):
    """Pixel classes, ordered by cloud-top height."""

    CLEAR = 0
    LOW_CLOUD = 1
    MID_CLOUD = 2
    HIGH_CLOUD = 3


#: Default class boundaries in km of cloud-top height (standard
#: low/mid/high etage limits).
LOW_TOP_KM = 2.0
MID_TOP_KM = 6.0


def classify(
    height_km: np.ndarray,
    intensity: np.ndarray | None = None,
    clear_height_km: float = 0.5,
    clear_intensity: float = 0.15,
) -> np.ndarray:
    """Per-pixel :class:`CloudClass` labels from height (and intensity).

    A pixel is CLEAR when its cloud-top height is below
    ``clear_height_km`` (and, when intensity is given, it is also dark);
    otherwise the height etages decide.
    """
    height = np.asarray(height_km, dtype=np.float64)
    labels = np.full(height.shape, CloudClass.HIGH_CLOUD, dtype=np.int64)
    labels[height < MID_TOP_KM] = CloudClass.MID_CLOUD
    labels[height < LOW_TOP_KM] = CloudClass.LOW_CLOUD
    clear = height < clear_height_km
    if intensity is not None:
        intensity = np.asarray(intensity, dtype=np.float64)
        if intensity.shape != height.shape:
            raise ValueError("intensity shape must match height shape")
        clear &= intensity < clear_intensity
    labels[clear] = CloudClass.CLEAR
    return labels


@dataclass(frozen=True)
class ClassMotion:
    """Motion summary for one cloud class."""

    label: CloudClass
    pixels: int
    mean_u: float
    mean_v: float
    mean_speed_mps: float
    std_speed_mps: float


def class_motion_statistics(
    field: MotionField, labels: np.ndarray
) -> list[ClassMotion]:
    """Per-class motion statistics over the valid mask.

    The per-layer wind summary is the operational product: "accurate
    measurement of cloud-top height distributions and winds" -- winds
    are only meaningful stratified by level.
    """
    labels = np.asarray(labels)
    if labels.shape != field.shape:
        raise ValueError("labels shape must match the field")
    speed = field.wind_speed()
    out: list[ClassMotion] = []
    for cls in CloudClass:
        mask = field.valid & (labels == cls)
        n = int(mask.sum())
        if n == 0:
            out.append(ClassMotion(cls, 0, 0.0, 0.0, 0.0, 0.0))
            continue
        out.append(
            ClassMotion(
                label=cls,
                pixels=n,
                mean_u=float(field.u[mask].mean()),
                mean_v=float(field.v[mask].mean()),
                mean_speed_mps=float(speed[mask].mean()),
                std_speed_mps=float(speed[mask].std()),
            )
        )
    return out


def classified_median_filter(
    field: MotionField, labels: np.ndarray, half_width: int = 1
) -> MotionField:
    """Vector-median despeckling *within* cloud classes.

    For each pixel, the median window only admits neighbors of the same
    class; a cirrus vector is never replaced by the stratus deck
    beneath it.  Pixels whose window holds no same-class neighbor keep
    their vector.
    """
    if half_width < 1:
        raise ValueError("half_width must be >= 1")
    labels = np.asarray(labels)
    if labels.shape != field.shape:
        raise ValueError("labels shape must match the field")
    side = 2 * half_width + 1
    offsets = [
        (dy, dx)
        for dy in range(-half_width, half_width + 1)
        for dx in range(-half_width, half_width + 1)
    ]
    n = len(offsets)
    us = np.empty((n,) + field.shape)
    vs = np.empty((n,) + field.shape)
    same = np.empty((n,) + field.shape, dtype=bool)
    for k, (dy, dx) in enumerate(offsets):
        us[k] = np.roll(field.u, shift=(-dy, -dx), axis=(0, 1))
        vs[k] = np.roll(field.v, shift=(-dy, -dx), axis=(0, 1))
        same[k] = np.roll(labels, shift=(-dy, -dx), axis=(0, 1)) == labels
    # vector median restricted to same-class window members
    cost = np.zeros((n,) + field.shape)
    for j in range(n):
        d = np.sqrt((us - us[j]) ** 2 + (vs - vs[j]) ** 2)
        cost += np.where(same[j], d, 0.0)
    cost = np.where(same, cost, np.inf)
    pick = np.argmin(cost, axis=0)
    new_u = np.take_along_axis(us, pick[None], axis=0)[0]
    new_v = np.take_along_axis(vs, pick[None], axis=0)[0]
    return MotionField(
        u=new_u,
        v=new_v,
        valid=field.valid.copy(),
        error=field.error.copy(),
        params=None if field.params is None else field.params.copy(),
        dt_seconds=field.dt_seconds,
        pixel_km=field.pixel_km,
        metadata={**field.metadata, "postprocess": "classified-vector-median"},
    )


def texture_field(intensity: np.ndarray, half_width: int = 2) -> np.ndarray:
    """Local gradient-energy texture, a secondary classification cue."""
    intensity = np.asarray(intensity, dtype=np.float64)
    gy, gx = np.gradient(intensity)
    side = 2 * half_width + 1
    return ndimage.uniform_filter(gx * gx + gy * gy, size=side, mode="nearest")
