"""Motion-field post-processing (Section 6 future work).

"... relaxation labeling or regularization, and post processing the
motion field."  Three standard passes over a dense
:class:`~repro.core.field.MotionField`:

* :func:`vector_median_filter` -- the vector-median (L1-optimal in the
  vector sense) despeckler: each vector is replaced by the window
  vector minimizing the summed Euclidean distance to its neighbors,
  which removes isolated mis-matches without averaging across motion
  boundaries.
* :func:`reject_outliers` -- flags vectors whose template error or
  deviation from the local median exceeds thresholds; rejected pixels
  leave the valid mask (downstream wind products skip them).
* :func:`relax` -- confidence-weighted Jacobi relaxation: low-error
  vectors anchor the field while high-error vectors are pulled toward
  their neighborhood mean, a light-weight rendering of the paper's
  "relaxation labeling or regularization".
"""

from __future__ import annotations

import numpy as np

from ..core.field import MotionField


def _window_stack(field: np.ndarray, half_width: int) -> np.ndarray:
    """(win^2, H, W) stack of shifted copies (toroidal)."""
    side = 2 * half_width + 1
    out = np.empty((side * side,) + field.shape, dtype=np.float64)
    k = 0
    for dy in range(-half_width, half_width + 1):
        for dx in range(-half_width, half_width + 1):
            out[k] = np.roll(field, shift=(-dy, -dx), axis=(0, 1))
            k += 1
    return out


def vector_median_filter(field: MotionField, half_width: int = 1) -> MotionField:
    """Vector-median filter over a ``(2N+1)^2`` window.

    The output vector at each pixel is the *input window vector* (not a
    componentwise construction) minimizing the sum of Euclidean
    distances to all window vectors -- edges between coherently moving
    regions survive because the result is always one of the observed
    vectors.
    """
    if half_width < 1:
        raise ValueError("half_width must be >= 1")
    us = _window_stack(field.u, half_width)
    vs = _window_stack(field.v, half_width)
    n = us.shape[0]
    # cost[i] = sum_j ||w_i - w_j||; O(n^2) over the window, vectorized per pair
    cost = np.zeros_like(us)
    for j in range(n):
        cost += np.sqrt((us - us[j]) ** 2 + (vs - vs[j]) ** 2)
    pick = np.argmin(cost, axis=0)
    new_u = np.take_along_axis(us, pick[None], axis=0)[0]
    new_v = np.take_along_axis(vs, pick[None], axis=0)[0]
    return MotionField(
        u=new_u,
        v=new_v,
        valid=field.valid.copy(),
        error=field.error.copy(),
        params=None if field.params is None else field.params.copy(),
        dt_seconds=field.dt_seconds,
        pixel_km=field.pixel_km,
        metadata={**field.metadata, "postprocess": "vector-median"},
    )


def reject_outliers(
    field: MotionField,
    error_quantile: float = 0.98,
    deviation_px: float = 2.0,
    half_width: int = 1,
) -> MotionField:
    """Shrink the valid mask by removing suspect vectors.

    A vector is rejected when its template error lands above the
    ``error_quantile`` of valid errors, or when it deviates from the
    componentwise window median by more than ``deviation_px`` pixels.
    """
    if not 0.0 < error_quantile <= 1.0:
        raise ValueError("error_quantile must be in (0, 1]")
    us = _window_stack(field.u, half_width)
    vs = _window_stack(field.v, half_width)
    med_u = np.median(us, axis=0)
    med_v = np.median(vs, axis=0)
    deviation = np.hypot(field.u - med_u, field.v - med_v)
    valid = field.valid.copy()
    if valid.any():
        threshold = np.quantile(field.error[valid], error_quantile)
        valid &= field.error <= threshold
    valid &= deviation <= deviation_px
    return MotionField(
        u=field.u.copy(),
        v=field.v.copy(),
        valid=valid,
        error=field.error.copy(),
        params=None if field.params is None else field.params.copy(),
        dt_seconds=field.dt_seconds,
        pixel_km=field.pixel_km,
        metadata={**field.metadata, "postprocess": "outlier-rejection"},
    )


def relax(
    field: MotionField,
    iterations: int = 10,
    stiffness: float = 0.5,
) -> MotionField:
    """Confidence-weighted Jacobi relaxation of the motion field.

    Per-pixel confidence ``c = 1 / (1 + error / median_error)`` blends
    each vector with its 8-neighborhood mean:
    ``w <- c w + (1 - c) * ((1 - s) w + s w_bar)`` -- high-confidence
    vectors barely move, high-error vectors are regularized toward
    their neighbors.  ``stiffness`` in (0, 1] scales the pull.
    """
    if iterations < 1:
        raise ValueError("iterations must be >= 1")
    if not 0.0 < stiffness <= 1.0:
        raise ValueError("stiffness must be in (0, 1]")
    valid = field.valid
    med = float(np.median(field.error[valid])) if valid.any() else 1.0
    med = med if med > 0 else 1.0
    confidence = 1.0 / (1.0 + field.error / med)
    u = field.u.copy()
    v = field.v.copy()
    kernel_offsets = [(-1, -1), (-1, 0), (-1, 1), (0, -1), (0, 1), (1, -1), (1, 0), (1, 1)]
    for _ in range(iterations):
        u_bar = np.zeros_like(u)
        v_bar = np.zeros_like(v)
        for dy, dx in kernel_offsets:
            u_bar += np.roll(u, shift=(-dy, -dx), axis=(0, 1))
            v_bar += np.roll(v, shift=(-dy, -dx), axis=(0, 1))
        u_bar /= len(kernel_offsets)
        v_bar /= len(kernel_offsets)
        pull = (1.0 - confidence) * stiffness
        u = (1.0 - pull) * u + pull * u_bar
        v = (1.0 - pull) * v + pull * v_bar
    return MotionField(
        u=u,
        v=v,
        valid=field.valid.copy(),
        error=field.error.copy(),
        params=None if field.params is None else field.params.copy(),
        dt_seconds=field.dt_seconds,
        pixel_km=field.pixel_km,
        metadata={**field.metadata, "postprocess": "relaxation"},
    )
