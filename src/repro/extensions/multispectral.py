"""Multispectral semi-fluid matching (Section 6 future work).

"Future work involves ... using multispectral information."  GOES
imagers carry visible and several infrared channels; cloud tracers that
are ambiguous in one channel (thin cirrus in the visible, low stratus
at night) are often distinctive in another.  The extension is natural
in the SMA's structure: the semi-fluid template mapping minimizes a
discriminant-matching score, and scores from independent channels
simply add (each channel normalized by its own patch energy, so no
channel's dynamic range dominates).

:func:`compute_multispectral_volume` produces a standard
:class:`~repro.core.semifluid.ScoreVolume`, so the entire downstream
machinery (dense matcher, parallel driver, segmentation) works
unchanged -- the composition property the paper's modular design makes
possible.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..core.matching import PreparedFrames, prepare_frames
from ..core.semifluid import ScoreVolume, compute_score_volume, discriminant_field
from ..params import NeighborhoodConfig


def compute_multispectral_volume(
    channels_before: Sequence[np.ndarray],
    channels_after: Sequence[np.ndarray],
    config: NeighborhoodConfig,
    weights: Sequence[float] | None = None,
) -> ScoreVolume:
    """Per-channel score volumes summed with optional weights.

    Each channel's discriminant field is computed and scored
    independently (with its own normalization), then the volumes are
    combined; the argmin structure of eq. (9) is preserved.
    """
    if len(channels_before) != len(channels_after) or not channels_before:
        raise ValueError("need matching, non-empty channel lists")
    if weights is None:
        weights = [1.0] * len(channels_before)
    if len(weights) != len(channels_before):
        raise ValueError("one weight per channel")
    if any(w < 0 for w in weights) or not any(w > 0 for w in weights):
        raise ValueError("weights must be nonnegative with at least one positive")

    combined: ScoreVolume | None = None
    for before, after, weight in zip(channels_before, channels_after, weights):
        before = np.asarray(before, dtype=np.float64)
        after = np.asarray(after, dtype=np.float64)
        if before.shape != after.shape:
            raise ValueError("channel frames must share a shape")
        if combined is not None and before.shape != combined.scores.shape[1:]:
            raise ValueError("all channels must share a shape")
        d_b = discriminant_field(before, config.n_w)
        d_a = discriminant_field(after, config.n_w)
        volume = compute_score_volume(d_b, d_a, config)
        if combined is None:
            combined = ScoreVolume(
                scores=weight * volume.scores,
                displacements=volume.displacements,
                reach=volume.reach,
            )
        else:
            combined = ScoreVolume(
                scores=combined.scores + weight * volume.scores,
                displacements=combined.displacements,
                reach=combined.reach,
            )
    assert combined is not None
    return combined


def prepare_multispectral_frames(
    z_before: np.ndarray,
    z_after: np.ndarray,
    channels_before: Sequence[np.ndarray],
    channels_after: Sequence[np.ndarray],
    config: NeighborhoodConfig,
    weights: Sequence[float] | None = None,
) -> PreparedFrames:
    """PreparedFrames whose semi-fluid scores fuse several channels.

    The z-surface (normals path) is unchanged; only the semi-fluid
    template mapping sees the multispectral evidence.  Requires a
    semi-fluid configuration (``n_ss > 0``).
    """
    if not config.is_semifluid:
        raise ValueError("multispectral matching extends the semi-fluid model (n_ss > 0)")
    base = prepare_frames(z_before, z_after, config.replace(n_ss=0))
    volume = compute_multispectral_volume(
        channels_before, channels_after, config, weights
    )
    return PreparedFrames(
        geo_before=base.geo_before,
        geo_after=base.geo_after,
        volume=volume,
        config=config,
    )
