"""Coupled stereo and motion analysis (Section 6 future work, ref. [10]).

"A more complex algorithm coupling both stereo images at both time
steps is described in [10]" (Kambhamettu, Palaniappan & Hasler,
*Coupled, multi-resolution stereo and motion analysis*, ISCV 1995), and
the conclusions list "coupling stereo and motion estimation" as future
work.  The physical leverage: stereo errors are largely *temporally
uncorrelated* (matching noise differs per pair), while the true
cloud-top surface evolves smoothly along the motion field -- so
advecting one timestep's disparity along the estimated motion gives an
independent second observation of the other timestep's disparity.

The coupling loop implemented here:

1. estimate disparities ``d_0``, ``d_1`` independently (ASA),
2. track motion on the implied height surfaces,
3. fuse: ``d_1 <- (1 - w) d_1 + w . warp(d_0, motion)`` and
   symmetrically for ``d_0`` (confidence-weighted),
4. repeat from 2 with the fused surfaces.

Each iteration is cheap (one tracking pass + two warps); on scenes with
rendered stereo noise the fused heights are strictly closer to truth
than the independent estimates (tested), which then feeds back into a
cleaner motion field.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import ndimage

from ..core.field import MotionField
from ..core.sma import Frame, SMAnalyzer
from ..params import NeighborhoodConfig
from ..stereo.asa import ASAConfig, estimate_disparity
from ..stereo.geometry import StereoGeometry


def warp_by_motion(field_data: np.ndarray, u: np.ndarray, v: np.ndarray) -> np.ndarray:
    """Advect a per-pixel quantity one frame forward along (u, v).

    ``out(x + u, y + v) = field(x, y)`` evaluated by backward sampling
    with the small-displacement approximation ``out(x, y) ~=
    field(x - u(x,y), y - v(x,y))`` (valid for the search-window-bounded
    displacements the tracker produces).
    """
    field_data = np.asarray(field_data, dtype=np.float64)
    h, w = field_data.shape
    yy, xx = np.meshgrid(
        np.arange(h, dtype=np.float64), np.arange(w, dtype=np.float64), indexing="ij"
    )
    coords = np.stack([np.clip(yy - v, 0, h - 1), np.clip(xx - u, 0, w - 1)])
    return ndimage.map_coordinates(field_data, coords, order=1, mode="nearest")


@dataclass
class CoupledResult:
    """Outputs of the coupled refinement."""

    height_0: np.ndarray
    height_1: np.ndarray
    motion: MotionField
    iterations: int
    history: list[dict[str, float]]


class CoupledStereoMotion:
    """Alternating stereo/motion refinement over one stereo-pair pair.

    Parameters
    ----------
    geometry:
        Disparity <-> height conversion.
    motion_config:
        SMA neighborhood configuration for the tracking passes.
    asa_config:
        ASA parameters for the independent stereo estimates.
    fusion_weight:
        Weight of the motion-advected cross-timestep observation in the
        disparity fusion (0 disables coupling; 0.5 averages).
    smoothing_sigma:
        Gaussian regularization applied to height maps before tracking
        (stereo noise reads as phantom motion otherwise).
    """

    def __init__(
        self,
        geometry: StereoGeometry,
        motion_config: NeighborhoodConfig,
        asa_config: ASAConfig | None = None,
        fusion_weight: float = 0.5,
        smoothing_sigma: float = 2.0,
        pixel_km: float | None = None,
    ) -> None:
        if not 0.0 <= fusion_weight < 1.0:
            raise ValueError("fusion_weight must be in [0, 1)")
        self.geometry = geometry
        self.motion_config = motion_config
        self.asa_config = asa_config or ASAConfig(levels=3)
        self.fusion_weight = fusion_weight
        self.smoothing_sigma = smoothing_sigma
        self.pixel_km = pixel_km if pixel_km is not None else geometry.pixel_km

    def _heights(self, disparity: np.ndarray) -> np.ndarray:
        z = np.asarray(self.geometry.height_from_disparity(disparity), dtype=np.float64)
        if self.smoothing_sigma > 0:
            z = ndimage.gaussian_filter(z, self.smoothing_sigma)
        return z

    def run(
        self,
        left_0: np.ndarray,
        right_0: np.ndarray,
        left_1: np.ndarray,
        right_1: np.ndarray,
        iterations: int = 2,
        dt_seconds: float = 450.0,
    ) -> CoupledResult:
        """Full coupled refinement of one timestep pair."""
        if iterations < 1:
            raise ValueError("iterations must be >= 1")
        d0 = estimate_disparity(left_0, right_0, self.asa_config).disparity
        d1 = estimate_disparity(left_1, right_1, self.asa_config).disparity
        analyzer = SMAnalyzer(self.motion_config, pixel_km=self.pixel_km)

        motion: MotionField | None = None
        history: list[dict[str, float]] = []
        for iteration in range(iterations):
            z0 = self._heights(d0)
            z1 = self._heights(d1)
            motion = analyzer.track_pair(
                Frame(z0, intensity=left_0),
                Frame(z1, intensity=left_1),
                dt_seconds=dt_seconds,
            )
            # cross-timestep observations along the motion field
            w = self.fusion_weight
            if w > 0:
                d1_pred = warp_by_motion(d0, motion.u, motion.v)
                d0_pred = warp_by_motion(d1, -motion.u, -motion.v)
                d0 = (1.0 - w) * d0 + w * d0_pred
                d1 = (1.0 - w) * d1 + w * d1_pred
            history.append(
                {
                    "iteration": float(iteration),
                    "mean_abs_u": float(np.abs(motion.u[motion.valid]).mean()),
                    "mean_abs_v": float(np.abs(motion.v[motion.valid]).mean()),
                    "mean_error": float(motion.error[motion.valid].mean()),
                }
            )

        assert motion is not None
        return CoupledResult(
            height_0=self._heights(d0),
            height_1=self._heights(d1),
            motion=motion,
            iterations=iterations,
            history=history,
        )
