"""Section 6 "future work" features, implemented as extensions.

Robust IRLS motion estimation (:mod:`.robust`), rectangular and
adaptive template windows (:mod:`.adaptive`), motion-field
post-processing -- vector median, outlier rejection, relaxation --
(:mod:`.postprocess`) and multispectral semi-fluid matching
(:mod:`.multispectral`).
"""

from .adaptive import (
    box_sum_rect,
    select_window_sizes,
    texture_energy,
    track_dense_adaptive,
    track_dense_rect,
)
from .classification import (
    CloudClass,
    ClassMotion,
    class_motion_statistics,
    classified_median_filter,
    classify,
    texture_field,
)
from .coupled import CoupledResult, CoupledStereoMotion, warp_by_motion
from .multispectral import compute_multispectral_volume, prepare_multispectral_frames
from .postprocess import reject_outliers, relax, vector_median_filter
from .subpixel import (
    parabolic_offset,
    refine,
    refine_continuous,
    refine_semifluid,
    track_dense_with_volume,
)
from .robust import (
    HUBER_K,
    TUKEY_C,
    RobustSolution,
    huber_weights,
    mad_sigma,
    refine_points,
    robust_estimate_from_samples,
    tukey_weights,
)

__all__ = [
    "box_sum_rect",
    "select_window_sizes",
    "texture_energy",
    "track_dense_adaptive",
    "track_dense_rect",
    "CloudClass",
    "ClassMotion",
    "class_motion_statistics",
    "classified_median_filter",
    "classify",
    "texture_field",
    "CoupledResult",
    "CoupledStereoMotion",
    "warp_by_motion",
    "compute_multispectral_volume",
    "prepare_multispectral_frames",
    "reject_outliers",
    "relax",
    "vector_median_filter",
    "parabolic_offset",
    "refine",
    "refine_continuous",
    "refine_semifluid",
    "track_dense_with_volume",
    "HUBER_K",
    "TUKEY_C",
    "RobustSolution",
    "huber_weights",
    "mad_sigma",
    "refine_points",
    "robust_estimate_from_samples",
    "tukey_weights",
]
