"""Sub-pixel motion refinement (an accuracy extension).

The SMA search of eq. (7) is integer valued: the reported displacement
is the best hypothesis (continuous model) or the best semi-fluid drift
(semi-fluid model) on the pixel lattice, so a fractional true motion
carries an irreducible ~0.3 px RMS quantization error.  Classic
parabolic interpolation removes most of it: fit a 1-D parabola through
the error/score at the winner and its two lattice neighbors,
independently in x and y, and shift the estimate by the parabola's
vertex (clamped to half a pixel; winners on the search boundary, or
with non-convex neighborhoods, stay integer).

Two refinement paths, matching the two template-mapping models:

* :func:`refine_continuous` interpolates the *hypothesis error volume*
  (eq. 3 minima per displacement), which :func:`track_dense_with_volume`
  retains during the dense search.
* :func:`refine_semifluid` interpolates the *semi-fluid score volume*
  (the theta field of eq. 10-11) around each pixel's chosen drift --
  no extra dense passes needed, the volume is already the Section 4.1
  precompute.

This is part of the paper's "improving the accuracy of the estimated
motion field" future-work direction (Section 6).
"""

from __future__ import annotations

import numpy as np

from ..core.continuous import solve_accumulated
from ..core.matching import (
    DenseMatchResult,
    PreparedFrames,
    _shifted_geometry_stack,
    hypothesis_fields,
    hypothesis_order,
)
from ..core.semifluid import semifluid_displacements

#: Curvature floor below which a parabola is considered degenerate.
CURVATURE_EPS = 1e-12


def parabolic_offset(e_minus: np.ndarray, e_zero: np.ndarray, e_plus: np.ndarray) -> np.ndarray:
    """Vertex offset of the parabola through three equidistant samples.

    Returns values in [-0.5, 0.5]; 0 where the stencil is degenerate
    (non-convex or flat) or where the center is not the minimum.
    """
    e_minus = np.asarray(e_minus, dtype=np.float64)
    e_zero = np.asarray(e_zero, dtype=np.float64)
    e_plus = np.asarray(e_plus, dtype=np.float64)
    denom = e_minus - 2.0 * e_zero + e_plus
    centered = (e_zero <= e_minus) & (e_zero <= e_plus)
    with np.errstate(divide="ignore", invalid="ignore"):
        offset = 0.5 * (e_minus - e_plus) / denom
    usable = centered & (np.abs(denom) > CURVATURE_EPS) & np.isfinite(offset)
    return np.clip(np.where(usable, offset, 0.0), -0.5, 0.5)


def track_dense_with_volume(
    prepared: PreparedFrames, ridge: float = 1e-9
) -> tuple[DenseMatchResult, np.ndarray]:
    """Dense tracking that also returns the full hypothesis error volume.

    The volume has shape ``(2N_zs+1, 2N_zs+1, H, W)`` indexed by
    ``[dy + N_zs, dx + N_zs]``; identical winners to
    :func:`repro.core.matching.track_dense` (same evaluation order and
    tie-breaks).
    """
    config = prepared.config
    shape = prepared.geo_before.shape
    n = config.n_zs
    side = 2 * n + 1
    volume = np.empty((side, side) + shape, dtype=np.float64)
    semifluid = prepared.volume is not None and config.n_ss > 0
    shifted_after = None
    if semifluid:
        shifted_after = _shifted_geometry_stack(prepared.geo_after, prepared.volume)

    best_error = np.full(shape, np.inf)
    best_u = np.zeros(shape)
    best_v = np.zeros(shape)
    best_params = np.zeros(shape + (6,))
    for hyp_dy, hyp_dx in hypothesis_order(n):
        deltas = None
        if semifluid:
            deltas = semifluid_displacements(prepared.volume, hyp_dy, hyp_dx, config.n_ss)
        fields = hypothesis_fields(prepared, hyp_dy, hyp_dx, shifted_after, deltas)
        solution = solve_accumulated(fields, ridge=ridge)
        volume[hyp_dy + n, hyp_dx + n] = solution.error
        better = solution.error < best_error
        best_error = np.where(better, solution.error, best_error)
        if semifluid:
            best_u = np.where(better, deltas[1].astype(np.float64), best_u)
            best_v = np.where(better, deltas[0].astype(np.float64), best_v)
        else:
            best_u = np.where(better, float(hyp_dx), best_u)
            best_v = np.where(better, float(hyp_dy), best_v)
        best_params = np.where(better[..., None], solution.params, best_params)

    from ..core.matching import valid_mask

    result = DenseMatchResult(
        u=best_u,
        v=best_v,
        params=best_params,
        error=best_error,
        valid=valid_mask(shape, config),
        hypotheses_evaluated=side * side,
    )
    return result, volume


def _gather_volume(volume: np.ndarray, iy: np.ndarray, ix: np.ndarray) -> np.ndarray:
    """volume[iy, ix] per pixel for index arrays over the image grid."""
    side = volume.shape[0]
    h, w = volume.shape[2:]
    flat = volume.reshape(side * side, h, w)
    idx = (iy * side + ix)[None]
    return np.take_along_axis(flat, idx, axis=0)[0]


def refine_continuous(result: DenseMatchResult, volume: np.ndarray, n_zs: int) -> DenseMatchResult:
    """Parabolic sub-pixel refinement from the hypothesis error volume."""
    side = 2 * n_zs + 1
    if volume.shape[:2] != (side, side) or volume.shape[2:] != result.u.shape:
        raise ValueError("volume shape does not match the result/search geometry")
    iy = (result.v + n_zs).astype(np.int64)
    ix = (result.u + n_zs).astype(np.int64)
    if (iy < 0).any() or (iy >= side).any() or (ix < 0).any() or (ix >= side).any():
        raise ValueError("result displacements outside the search window")

    e0 = _gather_volume(volume, iy, ix)
    du = np.zeros_like(result.u)
    interior_x = (ix > 0) & (ix < side - 1)
    if interior_x.any():
        e_m = _gather_volume(volume, iy, np.maximum(ix - 1, 0))
        e_p = _gather_volume(volume, iy, np.minimum(ix + 1, side - 1))
        du = np.where(interior_x, parabolic_offset(e_m, e0, e_p), 0.0)
    dv = np.zeros_like(result.v)
    interior_y = (iy > 0) & (iy < side - 1)
    if interior_y.any():
        e_m = _gather_volume(volume, np.maximum(iy - 1, 0), ix)
        e_p = _gather_volume(volume, np.minimum(iy + 1, side - 1), ix)
        dv = np.where(interior_y, parabolic_offset(e_m, e0, e_p), 0.0)

    return DenseMatchResult(
        u=result.u + du,
        v=result.v + dv,
        params=result.params,
        error=result.error,
        valid=result.valid,
        hypotheses_evaluated=result.hypotheses_evaluated,
    )


def refine_semifluid(prepared: PreparedFrames, result: DenseMatchResult) -> DenseMatchResult:
    """Parabolic refinement from the semi-fluid score volume.

    The reported displacement under the semi-fluid model is the tracked
    pixel's own drift; its natural sub-pixel correction comes from the
    theta scores around the chosen drift.
    """
    volume = prepared.volume
    if volume is None:
        raise ValueError("prepared frames carry no semi-fluid score volume")
    reach = volume.reach
    side = volume.side
    h, w = result.u.shape
    iy = (result.v + reach).astype(np.int64)
    ix = (result.u + reach).astype(np.int64)
    if (iy < 0).any() or (iy >= side).any() or (ix < 0).any() or (ix >= side).any():
        raise ValueError("result displacements outside the score volume reach")
    scores = volume.scores  # (side*side, H, W)

    def grab(jy, jx):
        return np.take_along_axis(scores, (jy * side + jx)[None], axis=0)[0]

    e0 = grab(iy, ix)
    interior_x = (ix > 0) & (ix < side - 1)
    du = np.where(
        interior_x,
        parabolic_offset(grab(iy, np.maximum(ix - 1, 0)), e0, grab(iy, np.minimum(ix + 1, side - 1))),
        0.0,
    )
    interior_y = (iy > 0) & (iy < side - 1)
    dv = np.where(
        interior_y,
        parabolic_offset(grab(np.maximum(iy - 1, 0), ix), e0, grab(np.minimum(iy + 1, side - 1), ix)),
        0.0,
    )
    return DenseMatchResult(
        u=result.u + du,
        v=result.v + dv,
        params=result.params,
        error=result.error,
        valid=result.valid,
        hypotheses_evaluated=result.hypotheses_evaluated,
    )


def refine(prepared: PreparedFrames, result: DenseMatchResult, ridge: float = 1e-9) -> DenseMatchResult:
    """Model-appropriate sub-pixel refinement of a dense result.

    Semi-fluid results refine through the score volume already held by
    ``prepared``; continuous results re-run the search retaining the
    hypothesis error volume (one extra dense pass).
    """
    if prepared.volume is not None and prepared.config.n_ss > 0:
        return refine_semifluid(prepared, result)
    base, volume = track_dense_with_volume(prepared, ridge=ridge)
    return refine_continuous(base, volume, prepared.config.n_zs)
