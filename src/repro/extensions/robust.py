"""Robust motion-parameter estimation (Section 6 future work).

"Future work involves ... improving the accuracy of the estimated
motion field by using robust estimation."  The least-squares
minimization of eq. (3) weighs every template pixel equally, so a few
outlier pixels (a cloud edge crossing the template, a mis-mapped
semi-fluid correspondence) can drag the six parameters.  This module
adds iteratively-reweighted least squares (IRLS) with Huber or Tukey
biweight losses on the per-term residuals: each iteration solves the
same 6x6 system with weights derived from the previous residuals, so
the machinery (and its parallelization) is unchanged -- exactly why the
authors flagged it as the natural extension.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.continuous import residual_rows
from ..core.linalg import gaussian_eliminate
from ..core.matching import PreparedFrames, hypothesis_order
from ..core.semifluid import semifluid_map_pixel

#: Default Huber threshold in units of the residual MAD-sigma.
HUBER_K = 1.345
#: Default Tukey biweight cutoff in MAD-sigma units.
TUKEY_C = 4.685


def huber_weights(residuals: np.ndarray, k: float = HUBER_K) -> np.ndarray:
    """Huber loss weights: 1 inside k-sigma, k/|r| outside."""
    scale = mad_sigma(residuals)
    if scale <= 0:
        return np.ones_like(residuals)
    r = np.abs(residuals) / scale
    with np.errstate(divide="ignore"):
        w = np.where(r <= k, 1.0, k / np.maximum(r, 1e-300))
    return w


def tukey_weights(residuals: np.ndarray, c: float = TUKEY_C) -> np.ndarray:
    """Tukey biweight: smooth redescending weights, 0 beyond c-sigma."""
    scale = mad_sigma(residuals)
    if scale <= 0:
        return np.ones_like(residuals)
    r = np.abs(residuals) / (c * scale)
    w = np.where(r < 1.0, (1.0 - r * r) ** 2, 0.0)
    return w


def mad_sigma(residuals: np.ndarray) -> float:
    """Robust scale: 1.4826 x median absolute deviation."""
    med = np.median(np.abs(residuals))
    return float(1.4826 * med)


LOSSES = {"huber": huber_weights, "tukey": tukey_weights}


@dataclass(frozen=True)
class RobustSolution:
    """IRLS output: parameters, final weighted error, iteration count,
    and the final per-term weights (diagnostics for outlier maps)."""

    params: np.ndarray
    error: float
    iterations: int
    weights: np.ndarray
    singular: bool


def robust_estimate_from_samples(
    p: np.ndarray,
    q: np.ndarray,
    p_after: np.ndarray,
    q_after: np.ndarray,
    e: np.ndarray,
    g: np.ndarray,
    loss: str = "huber",
    iterations: int = 5,
    ridge: float = 1e-9,
) -> RobustSolution:
    """IRLS minimization of eq. (3) over one template's samples.

    Inputs are 1-D arrays over template pixels, as in
    :func:`repro.core.continuous.estimate_from_samples`; the first
    iteration is ordinary least squares (unit robust weights).
    """
    if loss not in LOSSES:
        raise ValueError(f"unknown loss {loss!r}; use one of {sorted(LOSSES)}")
    if iterations < 1:
        raise ValueError("iterations must be >= 1")
    a1, r1, a2, r2 = residual_rows(p, q, p_after, q_after)
    e = np.asarray(e, dtype=np.float64)
    g = np.asarray(g, dtype=np.float64)
    # stack the two residual families: design (2T, 6), constants (2T,)
    design = np.concatenate([a1 / e[:, None], a2 / g[:, None]], axis=0)
    const = np.concatenate([r1 / e, r2 / g], axis=0)
    weight_fn = LOSSES[loss]

    # Initialize the weights from the residuals at theta = 0.  In the
    # small-deformation regime the true parameters are tiny, so the
    # theta = 0 residuals expose outliers directly; starting from the
    # OLS fit instead would let high-leverage outliers hide (the
    # corrupted fit passes near them, shrinking their residuals).
    weights = weight_fn(const)
    theta = np.zeros(6)
    singular = False
    done = 0
    for done in range(1, iterations + 1):
        wa = design * weights[:, None]
        h = wa.T @ design + ridge * np.eye(6)
        grad = wa.T @ const
        theta, sing = gaussian_eliminate(h, -grad)
        singular = bool(sing)
        if singular:
            theta = np.zeros(6)
            break
        residuals = design @ theta + const
        new_weights = weight_fn(residuals)
        if np.allclose(new_weights, weights, atol=1e-12):
            weights = new_weights
            break
        weights = new_weights
    residuals = design @ theta + const
    error = float(np.sum(weights * residuals * residuals))
    return RobustSolution(
        params=theta, error=error, iterations=done, weights=weights, singular=singular
    )


def refine_points(
    prepared: PreparedFrames,
    points: np.ndarray,
    d_before: np.ndarray | None = None,
    d_after: np.ndarray | None = None,
    loss: str = "huber",
    iterations: int = 5,
) -> tuple[np.ndarray, np.ndarray]:
    """Robust re-estimation at selected pixels.

    For each (x, y) point, re-runs the hypothesis search using the IRLS
    estimator instead of plain least squares.  Returns ``(uv, params)``
    with shapes (n, 2) and (n, 6).  Intended for sparse high-value
    tracers (wind barbs), where the 5x solver cost is immaterial.
    """
    config = prepared.config
    geo_b, geo_a = prepared.geo_before, prepared.geo_after
    h, w = geo_b.shape
    if config.is_semifluid and (d_before is None or d_after is None):
        raise ValueError("semi-fluid refinement needs the discriminant fields")
    pts = np.asarray(points, dtype=np.int64)
    uv = np.empty((pts.shape[0], 2), dtype=np.float64)
    params = np.empty((pts.shape[0], 6), dtype=np.float64)
    n_zt = config.n_zt
    dyy, dxx = np.meshgrid(
        np.arange(-n_zt, n_zt + 1), np.arange(-n_zt, n_zt + 1), indexing="ij"
    )
    for i, (x, y) in enumerate(pts):
        ty = (y + dyy) % h
        tx = (x + dxx) % w
        p_b = geo_b.p[ty, tx].ravel()
        q_b = geo_b.q[ty, tx].ravel()
        e_b = geo_b.e[ty, tx].ravel()
        g_b = geo_b.g[ty, tx].ravel()
        best: tuple[float, float, np.ndarray, float] | None = None
        for hyp_dy, hyp_dx in hypothesis_order(config.n_zs):
            center = (hyp_dy, hyp_dx)
            if config.is_semifluid:
                p_a = np.empty_like(p_b)
                q_a = np.empty_like(q_b)
                flat_ty, flat_tx = ty.ravel(), tx.ravel()
                for idx in range(flat_ty.size):
                    dy_s, dx_s = semifluid_map_pixel(
                        d_before, d_after, int(flat_tx[idx]), int(flat_ty[idx]),
                        hyp_dy, hyp_dx, config,
                    )
                    if flat_ty[idx] == y % h and flat_tx[idx] == x % w:
                        center = (dy_s, dx_s)
                    p_a[idx] = geo_a.p[(flat_ty[idx] + dy_s) % h, (flat_tx[idx] + dx_s) % w]
                    q_a[idx] = geo_a.q[(flat_ty[idx] + dy_s) % h, (flat_tx[idx] + dx_s) % w]
            else:
                ay = (ty + hyp_dy) % h
                ax = (tx + hyp_dx) % w
                p_a = geo_a.p[ay, ax].ravel()
                q_a = geo_a.q[ay, ax].ravel()
            sol = robust_estimate_from_samples(
                p_b, q_b, p_a, q_a, e_b, g_b, loss=loss, iterations=iterations
            )
            if best is None or sol.error < best[3]:
                best = (float(center[1]), float(center[0]), sol.params, sol.error)
        assert best is not None
        uv[i] = (best[0], best[1])
        params[i] = best[2]
    return uv, params
