"""Rectangular and adaptive template windows (Section 6 future work).

"Although the current implementation uses square template and search
areas, rectangular areas can also be used and may lead to improved
motion correspondence results" (Section 2.2), and the conclusions list
"adaptive hierarchical non-square template and search windows" as
future work.  This module implements both:

* :func:`box_sum_rect` / :func:`track_dense_rect` -- rectangular
  ``(2N_y+1) x (2N_x+1)`` z-templates (continuous model), useful when
  the motion or the cloud structure is anisotropic (e.g. shear bands).
* :func:`texture_energy` / :func:`select_window_sizes` /
  :func:`track_dense_adaptive` -- per-pixel template-size selection:
  each pixel uses the *smallest* template whose local texture energy
  clears a threshold, so strongly textured pixels get tight (fast,
  deformation-tolerant) windows and bland pixels get the large windows
  they need for a well-posed 6x6 system.
"""

from __future__ import annotations

import numpy as np

from ..core.continuous import N_FIELDS, pointwise_fields, solve_accumulated
from ..core.matching import DenseMatchResult, PreparedFrames, hypothesis_order, valid_mask
from ..core.semifluid import shift2d
from ..kernels.reference import box_sum_rect  # noqa: F401  (re-exported API)


def _fields_for_hypothesis(prepared: PreparedFrames, hyp_dy: int, hyp_dx: int) -> np.ndarray:
    """Unaccumulated per-pixel fields for one continuous hypothesis."""
    geo_b, geo_a = prepared.geo_before, prepared.geo_after
    p_a = shift2d(geo_a.p, hyp_dy, hyp_dx)
    q_a = shift2d(geo_a.q, hyp_dy, hyp_dx)
    return pointwise_fields(geo_b.p, geo_b.q, p_a, q_a, geo_b.e, geo_b.g)


def track_dense_rect(
    prepared: PreparedFrames, half_y: int, half_x: int, ridge: float = 1e-9
) -> DenseMatchResult:
    """Dense continuous-model tracking with a rectangular z-template.

    The hypothesis search area stays square (``config.n_zs``); only the
    template accumulation is rectangular.  Raises for the semi-fluid
    model (the rectangular extension applies to the template sum).
    """
    config = prepared.config
    if config.is_semifluid:
        raise ValueError("rectangular templates are implemented for the continuous model")
    shape = prepared.geo_before.shape
    best_error = np.full(shape, np.inf)
    best_u = np.zeros(shape)
    best_v = np.zeros(shape)
    best_params = np.zeros(shape + (6,))
    for hyp_dy, hyp_dx in hypothesis_order(config.n_zs):
        fields = _fields_for_hypothesis(prepared, hyp_dy, hyp_dx)
        acc = np.empty_like(fields)
        for k in range(N_FIELDS):
            acc[..., k] = box_sum_rect(fields[..., k], half_y, half_x)
        sol = solve_accumulated(acc, ridge=ridge)
        better = sol.error < best_error
        best_error = np.where(better, sol.error, best_error)
        best_u = np.where(better, float(hyp_dx), best_u)
        best_v = np.where(better, float(hyp_dy), best_v)
        best_params = np.where(better[..., None], sol.params, best_params)
    margin_cfg = config.replace(n_zt=max(half_y, half_x))
    return DenseMatchResult(
        u=best_u,
        v=best_v,
        params=best_params,
        error=best_error,
        valid=valid_mask(shape, margin_cfg),
        hypotheses_evaluated=config.hypotheses_per_pixel,
    )


def texture_energy(image: np.ndarray, half_width: int) -> np.ndarray:
    """Local gradient energy: sum of squared central differences.

    The adaptivity criterion: a window is informative when it contains
    enough gradient structure for the normal-consistency system to be
    well conditioned.
    """
    image = np.asarray(image, dtype=np.float64)
    gy, gx = np.gradient(image)
    return box_sum_rect(gx * gx + gy * gy, half_width, half_width)


def select_window_sizes(
    image: np.ndarray, candidate_half_widths: tuple[int, ...], energy_threshold: float
) -> np.ndarray:
    """Per-pixel template half-width: smallest candidate clearing the threshold.

    Candidates must be sorted ascending; pixels too bland for every
    candidate get the largest one.
    """
    if not candidate_half_widths:
        raise ValueError("need at least one candidate window size")
    if list(candidate_half_widths) != sorted(candidate_half_widths):
        raise ValueError("candidates must be sorted ascending")
    choice = np.full(np.asarray(image).shape, candidate_half_widths[-1], dtype=np.int64)
    decided = np.zeros(choice.shape, dtype=bool)
    for hw in candidate_half_widths:
        energy = texture_energy(image, hw)
        take = (~decided) & (energy >= energy_threshold)
        choice[take] = hw
        decided |= take
    return choice


def track_dense_adaptive(
    prepared: PreparedFrames,
    candidate_half_widths: tuple[int, ...] = (2, 4, 6),
    energy_threshold: float = 1.0,
    ridge: float = 1e-9,
) -> tuple[DenseMatchResult, np.ndarray]:
    """Adaptive-template continuous tracking.

    Runs the dense matcher once per candidate template size and, per
    pixel, keeps the result of the window that
    :func:`select_window_sizes` assigned to it.  Returns the combined
    result and the per-pixel window-size map.
    """
    config = prepared.config
    if config.is_semifluid:
        raise ValueError("adaptive templates are implemented for the continuous model")
    shape = prepared.geo_before.shape
    # surface height drives the texture criterion
    sizes = select_window_sizes(prepared.geo_before.p, candidate_half_widths, energy_threshold)

    u = np.zeros(shape)
    v = np.zeros(shape)
    params = np.zeros(shape + (6,))
    error = np.full(shape, np.inf)
    for hw in candidate_half_widths:
        sub = track_dense_rect(prepared, hw, hw, ridge=ridge)
        take = sizes == hw
        u[take] = sub.u[take]
        v[take] = sub.v[take]
        params[take] = sub.params[take]
        error[take] = sub.error[take]
    margin_cfg = config.replace(n_zt=max(candidate_half_widths))
    result = DenseMatchResult(
        u=u,
        v=v,
        params=params,
        error=error,
        valid=valid_mask(shape, margin_cfg),
        hypotheses_evaluated=config.hypotheses_per_pixel * len(candidate_half_widths),
    )
    return result, sizes
