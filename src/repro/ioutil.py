"""Atomic file-write helpers.

A 490-frame streaming run checkpoints after every frame pair; a crash
mid-save must never leave a truncated archive where the previous good
checkpoint used to be.  :func:`atomic_savez` therefore writes to a
temporary file in the *same directory* as the target (so the final
rename is a same-filesystem ``os.replace``, which POSIX guarantees to
be atomic) and only then moves it into place.
"""

from __future__ import annotations

import contextlib
import os
import tempfile

import numpy as np


def atomic_savez(path: str, compressed: bool = True, **arrays) -> str:
    """``np.savez(_compressed)`` that never leaves a partial file.

    Mirrors numpy's convention of appending ``.npz`` when the target
    path lacks the suffix; returns the final path written.
    """
    final = str(path)
    if not final.endswith(".npz"):
        final += ".npz"
    directory = os.path.dirname(final) or "."
    fd, tmp = tempfile.mkstemp(prefix=".tmp-", suffix=".npz", dir=directory)
    try:
        with os.fdopen(fd, "wb") as handle:
            if compressed:
                np.savez_compressed(handle, **arrays)
            else:
                np.savez(handle, **arrays)
        os.replace(tmp, final)
    except BaseException:
        with contextlib.suppress(OSError):
            os.unlink(tmp)
        raise
    return final


def atomic_write_text(path: str, text: str, encoding: str = "utf-8") -> str:
    """Write a text file atomically (same temp-then-replace dance)."""
    final = str(path)
    directory = os.path.dirname(final) or "."
    fd, tmp = tempfile.mkstemp(prefix=".tmp-", suffix=".txt", dir=directory)
    try:
        with os.fdopen(fd, "w", encoding=encoding) as handle:
            handle.write(text)
        os.replace(tmp, final)
    except BaseException:
        with contextlib.suppress(OSError):
            os.unlink(tmp)
        raise
    return final
