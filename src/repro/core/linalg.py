"""Batched Gaussian elimination.

The paper leans on dense Gaussian elimination everywhere: "least
squares surface fitting ... leads to solving a 6 x 6 matrix using the
Gaussian-elimination method", "169 Gaussian-eliminations are performed
to solve for the motion parameters", "over one million separate
Gaussian-eliminations are needed to estimate all of the local surface
patch parameters".  On a SIMD machine each PE runs the same
elimination schedule in lockstep on its own system, which is exactly a
*batched* solve.

:func:`gaussian_eliminate` implements partial-pivot Gaussian
elimination with back substitution, vectorized over arbitrary leading
batch dimensions -- the SIMD-lockstep rendering of the paper's kernel.
Singular (or numerically singular) systems are reported per batch
element rather than raising, because in the SMA inner loop a flat
surface patch simply means "no usable normal here" and the caller
masks the pixel out.
"""

from __future__ import annotations

import numpy as np

# The reference elimination arithmetic lives in the backend-neutral
# kernels module; SINGULAR_TOLERANCE is re-exported for compatibility.
from ..kernels.reference import SINGULAR_TOLERANCE  # noqa: F401
from ..kernels.reference import eliminate as _reference_eliminate


def gaussian_eliminate(
    matrices: np.ndarray, rhs: np.ndarray, *, prefer_native: bool = True
) -> tuple[np.ndarray, np.ndarray]:
    """Solve ``A x = b`` for a batch of dense systems by Gaussian elimination.

    Parameters
    ----------
    matrices:
        Array of shape ``(..., n, n)``.
    rhs:
        Array of shape ``(..., n)``.
    prefer_native:
        When True (the default) and the compiled kernel in
        :mod:`repro.native` is available, dispatch to it.  The kernel is
        bit-identical to the NumPy path (it performs the same IEEE-754
        operations in the same order and is cross-checked on load), just
        free of per-operation temporaries.  Pass False to pin the NumPy
        reference path -- benchmarks use this to time the pre-native
        behaviour honestly.

    Returns
    -------
    solutions:
        Array of shape ``(..., n)``; rows flagged singular contain zeros.
    singular:
        Boolean array of shape ``(...,)`` -- True where elimination hit a
        pivot below :data:`SINGULAR_TOLERANCE`.

    Notes
    -----
    Partial pivoting is performed in lockstep across the batch: at step
    ``k`` every system independently selects its own pivot row, which is
    how a per-PE elimination behaves on a SIMD array (the *schedule* is
    shared, the *data* is not).
    """
    a = np.asarray(matrices, dtype=np.float64)
    b = np.asarray(rhs, dtype=np.float64)
    if a.ndim < 2 or a.shape[-1] != a.shape[-2]:
        raise ValueError(f"matrices must be (..., n, n), got {a.shape}")
    if b.shape != a.shape[:-1]:
        raise ValueError(f"rhs shape {b.shape} does not match matrices {a.shape}")

    if prefer_native:
        from ..native import native_available, native_gauss_eliminate

        if native_available():
            return native_gauss_eliminate(a, b)

    return _reference_eliminate(a, b)


def solve_normal_equations(
    design: np.ndarray, residual: np.ndarray, weights: np.ndarray | None = None
) -> tuple[np.ndarray, np.ndarray]:
    """Least-squares solve ``min ||W (design @ theta + residual)||^2``.

    Forms the normal equations ``(A^T W A) theta = -A^T W r`` and solves
    them with :func:`gaussian_eliminate` -- the paper's formulation
    ("differentiating with respect to the six unknown motion parameters
    and setting the six first partial derivatives to zero ... solved
    using Gaussian-elimination").

    Parameters
    ----------
    design:
        ``(..., terms, n)`` design matrix A.
    residual:
        ``(..., terms)`` constant residual r (the value of each error
        term at theta = 0).
    weights:
        Optional ``(..., terms)`` nonnegative weights W.

    Returns
    -------
    theta:
        ``(..., n)`` minimizer.
    singular:
        ``(...,)`` singular-system flags.
    """
    a = np.asarray(design, dtype=np.float64)
    r = np.asarray(residual, dtype=np.float64)
    if weights is not None:
        w = np.asarray(weights, dtype=np.float64)
        aw = a * w[..., None]
    else:
        aw = a
    ata = np.einsum("...ti,...tj->...ij", aw, a)
    atr = np.einsum("...ti,...t->...i", aw, r)
    return gaussian_eliminate(ata, -atr)
