"""The public SMA pipeline: Semi-fluid Motion Analysis end to end.

:class:`SMAnalyzer` is the library's front door.  It reproduces the
paper's data flow:

* **stereo mode** -- each input timestep carries a stereo-derived
  surface map ``z(t)`` plus the (left, rectified) intensity image
  ``I(t)``; normals come from the z-surface and the semi-fluid mapping
  from the intensity discriminant (Hurricane Frederic, Section 5.1).
* **monocular mode** -- "semi-fluid motion tracking can also be
  applied to a monocular or single satellite time sequence by treating
  the intensity data as a digital surface" (GOES-9 / Hurricane Luis,
  Section 5.2): the intensity image serves as both the surface and the
  discriminant source.

The model is selected by the neighborhood configuration: ``n_ss > 0``
activates the semi-fluid template mapping ``F_semi``, ``n_ss = 0`` is
the continuous model ``F_cont`` (the paper used the former for
Frederic, the latter for the temporally dense GOES-9/Luis sequences).

Example
-------
>>> from repro import SMAnalyzer, SMALL_CONFIG
>>> analyzer = SMAnalyzer(SMALL_CONFIG)
>>> field = analyzer.track_pair(z0, z1)          # monocular, doctest: +SKIP
>>> fields = analyzer.track_sequence(frames)      # doctest: +SKIP
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from ..kernels import KERNEL_BACKENDS
from ..params import NeighborhoodConfig
from .field import MotionField
from .matching import SEARCH_MODES, PreparedFrames, prepare_frames, track_dense, valid_mask
from .prep import FramePreparationCache


@dataclass(frozen=True)
class Frame:
    """One timestep of input.

    ``surface`` is the tracked digital surface (cloud-top height map in
    stereo mode; the intensity image itself in monocular mode).
    ``intensity`` optionally carries a separate intensity image for the
    semi-fluid discriminant (stereo mode); when None, ``surface`` is
    used.  ``time_seconds`` is the acquisition time.

    Inputs are canonicalized to float64 ``ndarray`` exactly once, here:
    every later consumer (validation, fitting, fingerprinting) sees the
    same stored arrays, so the finiteness scan runs once per frame
    instead of once per access, and list/integer inputs cannot leak
    past construction.
    """

    surface: np.ndarray
    intensity: np.ndarray | None = None
    time_seconds: float = 0.0

    def __post_init__(self) -> None:
        s = np.asarray(self.surface)
        if not np.issubdtype(s.dtype, np.number) or np.issubdtype(s.dtype, np.complexfloating):
            raise ValueError(f"surface must be real-numeric, got dtype {s.dtype}")
        s = s.astype(np.float64, copy=False)
        if s.ndim != 2:
            raise ValueError(f"surface must be 2-D, got shape {s.shape}")
        if s.size == 0:
            raise ValueError("surface is empty")
        if not np.isfinite(s).all():
            raise ValueError("surface contains non-finite values (NaN or Inf)")
        object.__setattr__(self, "surface", s)
        if self.intensity is not None:
            i = np.asarray(self.intensity)
            if not np.issubdtype(i.dtype, np.number) or np.issubdtype(i.dtype, np.complexfloating):
                raise ValueError(f"intensity must be real-numeric, got dtype {i.dtype}")
            i = i.astype(np.float64, copy=False)
            if i.shape != s.shape:
                raise ValueError("intensity shape must match surface shape")
            if not np.isfinite(i).all():
                raise ValueError("intensity contains non-finite values (NaN or Inf)")
            object.__setattr__(self, "intensity", i)

    @property
    def shape(self) -> tuple[int, int]:
        return self.surface.shape


class SMAnalyzer:
    """Dense non-rigid motion estimation with the SMA algorithm.

    Parameters
    ----------
    config:
        Neighborhood parameterization (e.g. :data:`repro.params.FREDERIC_CONFIG`).
    pixel_km:
        Ground sample distance used for wind conversion.
    ridge:
        Stabilizer for the 6x6 normal equations (0 for the strict
        formulation).
    search:
        Hypothesis schedule forwarded to
        :func:`repro.core.matching.track_dense` -- ``"exhaustive"``
        (default), ``"pruned"`` (bit-identical results, fewer GE
        solves) or ``"pyramid"`` (approximate coarse-to-fine,
        continuous model only).
    backend:
        Kernel backend forwarded to
        :func:`repro.core.matching.track_dense` -- ``"auto"`` (default:
        native C kernel when available, NumPy otherwise, bit-identical
        either way), ``"numpy"`` (pin the reference path), ``"native"``
        (require the C kernel) or ``"device"`` (opt-in array-API chunk
        path, tolerance-equivalent rather than bit-identical).
    """

    def __init__(
        self,
        config: NeighborhoodConfig,
        pixel_km: float = 1.0,
        ridge: float = 1e-9,
        search: str = "exhaustive",
        backend: str = "auto",
    ) -> None:
        if pixel_km <= 0:
            raise ValueError("pixel_km must be positive")
        if search not in SEARCH_MODES:
            raise ValueError(
                f"unknown search mode {search!r} (choose from {', '.join(SEARCH_MODES)})"
            )
        if backend not in KERNEL_BACKENDS:
            raise ValueError(
                f"unknown backend {backend!r} (choose from {', '.join(KERNEL_BACKENDS)})"
            )
        self.config = config
        self.pixel_km = pixel_km
        self.ridge = ridge
        self.search = search
        self.backend = backend

    # -- single pair ---------------------------------------------------------------

    def prepare(
        self,
        before: Frame,
        after: Frame,
        cache: FramePreparationCache | None = None,
    ) -> PreparedFrames:
        """Surface fits + semi-fluid precompute for one frame pair.

        :class:`Frame` already canonicalized and finite-checked the
        arrays in ``__post_init__``, so no re-validation happens here.
        ``cache`` optionally shares the per-frame half of the work
        across the pairs of a sequence (bit-identical either way).
        """
        if before.shape != after.shape:
            raise ValueError("frame shapes differ")
        min_side = 2 * self.config.margin() + 1
        if min(before.shape) < min_side:
            raise ValueError(
                f"image {before.shape} too small for config "
                f"{self.config.name!r} (needs at least {min_side} pixels per side)"
            )
        return prepare_frames(
            before.surface,
            after.surface,
            self.config,
            intensity_before=before.intensity,
            intensity_after=after.intensity,
            cache=cache,
        )

    def track_pair(
        self,
        before: Frame | np.ndarray,
        after: Frame | np.ndarray,
        dt_seconds: float | None = None,
        cache: FramePreparationCache | None = None,
    ) -> MotionField:
        """Dense motion field between two frames.

        Arrays are accepted directly for the monocular case.  ``dt`` is
        taken from the frame timestamps unless given explicitly.  When
        the timestamps are equal or reversed a placeholder of 1 s is
        substituted so pixel displacements stay usable, but the
        substitution is *loud*: a :class:`RuntimeWarning` is emitted and
        ``metadata["dt_substituted"]`` records the rejected interval, so
        derived wind speeds are never silently wrong.
        """
        before = before if isinstance(before, Frame) else Frame(np.asarray(before))
        after = after if isinstance(after, Frame) else Frame(np.asarray(after))
        substituted_dt: float | None = None
        if dt_seconds is None:
            dt_seconds = after.time_seconds - before.time_seconds
            if dt_seconds <= 0:
                substituted_dt = float(dt_seconds)
                dt_seconds = 1.0
                warnings.warn(
                    f"frame timestamps are not increasing (dt = {substituted_dt} s); "
                    "substituting dt = 1 s -- derived wind speeds are in "
                    "pixels/frame, not physical units",
                    RuntimeWarning,
                    stacklevel=2,
                )
        prepared = self.prepare(before, after, cache=cache)
        result = track_dense(
            prepared, ridge=self.ridge, search=self.search, backend=self.backend
        )
        metadata = {
            "model": "semi-fluid" if self.config.is_semifluid else "continuous",
            "config": self.config.name,
            "hypotheses": result.hypotheses_evaluated,
            "search": self.search,
            "backend": self.backend,
        }
        if substituted_dt is not None:
            metadata["dt_substituted"] = True
            metadata["dt_rejected_seconds"] = substituted_dt
        return MotionField(
            u=result.u,
            v=result.v,
            valid=result.valid,
            error=result.error,
            params=result.params,
            dt_seconds=float(dt_seconds),
            pixel_km=self.pixel_km,
            metadata=metadata,
        )

    # -- sequences ------------------------------------------------------------------

    def track_sequence(
        self,
        frames: Sequence[Frame] | Iterable[np.ndarray],
        workers: int | None = None,
        reuse_preparations: bool = True,
        transport: str = "pickle",
    ) -> list[MotionField]:
        """Motion fields for every consecutive pair of a sequence.

        This is the paper's T-timestep driver: T frames yield T-1
        fields (Hurricane Luis: 490 frames processed pairwise).

        ``reuse_preparations`` shares the per-frame surface fit and
        discriminant between the two pairs each interior frame belongs
        to, halving the sequence's surface-fit Gaussian eliminations;
        results are bit-identical with and without it.  ``workers > 1``
        shards the independent pairs over a process pool (each worker
        holds its own preparation cache); outputs are returned in pair
        order and are bit-identical to the sequential run.
        ``transport`` selects how pooled workers receive frames:
        ``"pickle"`` (default) or ``"shm"`` (a zero-copy shared-memory
        ring; see :mod:`repro.bus`) -- both bit-identical.
        """
        frame_list = [f if isinstance(f, Frame) else Frame(np.asarray(f)) for f in frames]
        if len(frame_list) < 2:
            raise ValueError("a sequence needs at least two frames")
        if workers is not None and workers < 1:
            raise ValueError("workers must be a positive integer")
        if workers is not None and workers > 1:
            from ..parallel.pairs import track_pairs_in_pool

            return track_pairs_in_pool(self, frame_list, workers, transport=transport)
        cache = FramePreparationCache(max_frames=4) if reuse_preparations else None
        return [
            self.track_pair(frame_list[m], frame_list[m + 1], cache=cache)
            for m in range(len(frame_list) - 1)
        ]

    # -- introspection ---------------------------------------------------------------

    def valid_region(self, shape: tuple[int, int]) -> np.ndarray:
        """The interior mask this configuration can track on a given shape."""
        return valid_mask(shape, self.config)

    def operation_counts(self, shape: tuple[int, int]) -> dict[str, int]:
        """Paper-style complexity accounting for one frame pair.

        Reproduces the Section 3 arithmetic: per tracked pixel,
        ``(2N_zs+1)^2`` Gaussian eliminations and as many template-error
        evaluations, each over ``(2N_zT+1)^2`` error terms; per template
        pixel, ``(2N_ss+1)^2`` semi-fluid error terms of ``(2N_sT+1)^2``
        discriminant comparisons each; plus four full-image surface
        fits.
        """
        c = self.config
        h, w = shape
        pixels = h * w
        counts = {
            "pixels_tracked": pixels,
            "hypotheses_per_pixel": c.hypotheses_per_pixel,
            "motion_gaussian_eliminations": pixels * c.hypotheses_per_pixel,
            "template_error_terms": pixels * c.hypotheses_per_pixel * c.template_pixels,
            "surface_fit_gaussian_eliminations": 4 * pixels,
        }
        if c.is_semifluid:
            counts["semifluid_error_terms_per_mapping"] = c.semifluid_candidates
            counts["semifluid_patch_comparisons"] = (
                pixels * c.precompute_window**2 * c.semifluid_patch_terms
            )
        return counts
