"""The paper's primary contribution: the Semi-fluid Motion Analysis algorithm.

Sequential reference implementation of Section 2: quadratic
surface-patch fitting and differential geometry (:mod:`.surface`), the
continuous motion model ``F_cont`` (:mod:`.continuous`), the semi-fluid
template mapping ``F_semi`` (:mod:`.semifluid`), hypothesis matching
(:mod:`.matching`), the :class:`~repro.core.sma.SMAnalyzer` pipeline and
the :class:`~repro.core.field.MotionField` result container.
"""

from .continuous import (
    N_PARAMS,
    PARAM_NAMES,
    MotionSolution,
    estimate_from_samples,
    pointwise_fields,
    predicted_normal,
    residual_rows,
    solve_accumulated,
)
from .field import MotionField
from .linalg import gaussian_eliminate, solve_normal_equations
from .matching import (
    DenseMatchResult,
    PreparedFrames,
    hypothesis_order,
    prepare_frames,
    track_dense,
    track_pixel,
    valid_mask,
)
from .prep import (
    CacheStats,
    FramePreparation,
    FramePreparationCache,
    frame_fingerprint,
    prepare_frame,
)
from .semifluid import (
    ScoreVolume,
    box_sum,
    compute_score_volume,
    discriminant_field,
    semifluid_displacements,
    semifluid_map_pixel,
    shift2d,
)
from .sma import Frame, SMAnalyzer
from .surface import (
    SurfaceGeometry,
    fit_patches,
    fit_patches_reference,
    fit_surface,
    geometry_from_coefficients,
)

__all__ = [
    "N_PARAMS",
    "PARAM_NAMES",
    "MotionSolution",
    "estimate_from_samples",
    "pointwise_fields",
    "predicted_normal",
    "residual_rows",
    "solve_accumulated",
    "MotionField",
    "gaussian_eliminate",
    "solve_normal_equations",
    "DenseMatchResult",
    "PreparedFrames",
    "hypothesis_order",
    "prepare_frames",
    "track_dense",
    "track_pixel",
    "valid_mask",
    "CacheStats",
    "FramePreparation",
    "FramePreparationCache",
    "frame_fingerprint",
    "prepare_frame",
    "ScoreVolume",
    "box_sum",
    "compute_score_volume",
    "discriminant_field",
    "semifluid_displacements",
    "semifluid_map_pixel",
    "shift2d",
    "Frame",
    "SMAnalyzer",
    "SurfaceGeometry",
    "fit_patches",
    "fit_patches_reference",
    "fit_surface",
    "geometry_from_coefficients",
]
