"""Hypothesis search and dense motion-correspondence estimation (Section 2.2).

For every tracked pixel the SMA algorithm evaluates every hypothesis in
the ``(2N_zs+1)^2`` z-search neighborhood: Step 1 selects the template
mapping (continuous ``F_cont`` or semi-fluid ``F_semi``), Step 2 solves
the 6x6 system for the motion parameters and evaluates the template
error eq. (3); the estimated correspondence is the error-minimizing
hypothesis (eq. 7).

Two implementations are provided, mirroring the paper's own methodology
("a sequential (un-optimized) version ... was used to form a baseline
for comparing the correctness of the parallel algorithm results"):

* :func:`track_pixel` -- the direct, per-pixel reference: explicit
  template sample lists, one hypothesis at a time.

* :func:`track_dense` -- the optimized dense path: because the template
  accumulation of eq. (3) is a box sum, the normal-equation fields for
  *all* pixels are accumulated with uniform filters, and all pixels'
  6x6 systems are solved as one batched Gaussian elimination per
  hypothesis.  The semi-fluid mapping uses the Section 4.1 precompute
  (:func:`repro.core.semifluid.compute_score_volume`).

Both paths produce identical integer displacements and identical motion
parameters (tested), and tie-breaks are deterministic: among equal
error minima the smaller displacement wins (Chebyshev magnitude, then
raster order).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..params import NeighborhoodConfig
from .continuous import (
    N_FIELDS,
    estimate_from_samples,
    pointwise_fields,
    solve_accumulated,
)
from .semifluid import (
    ScoreVolume,
    box_sum,
    compute_score_volume,
    discriminant_field,
    semifluid_displacements,
    semifluid_map_pixel,
    shift2d,
)
from .surface import SurfaceGeometry, fit_surface


@dataclass(frozen=True)
class DenseMatchResult:
    """Dense per-pixel correspondence estimates.

    * ``u``, ``v`` -- x- and y-displacement (pixels, t_m -> t_{m+1}),
    * ``params`` -- winning motion parameters, shape (H, W, 6),
    * ``error`` -- winning template error, shape (H, W),
    * ``valid`` -- interior mask (False in the border margin where
      windows would leave the image),
    * ``hypotheses_evaluated`` -- the ``(2N_zs+1)^2`` count, for cost
      accounting.
    """

    u: np.ndarray
    v: np.ndarray
    params: np.ndarray
    error: np.ndarray
    valid: np.ndarray
    hypotheses_evaluated: int

    @property
    def shape(self) -> tuple[int, int]:
        return self.u.shape

    def displacement_magnitude(self) -> np.ndarray:
        """Euclidean displacement magnitude per pixel."""
        return np.hypot(self.u, self.v)


def hypothesis_order(n_zs: int) -> list[tuple[int, int]]:
    """Hypothesis displacements sorted by (Chebyshev magnitude, raster).

    Evaluating hypotheses in this order with a strict-less update makes
    tie-breaking favor the smallest motion, deterministically, in both
    the dense and reference paths.
    """
    offsets = [
        (dy, dx)
        for dy in range(-n_zs, n_zs + 1)
        for dx in range(-n_zs, n_zs + 1)
    ]
    return sorted(offsets, key=lambda o: (max(abs(o[0]), abs(o[1])), o[0], o[1]))


def valid_mask(shape: tuple[int, int], config: NeighborhoodConfig) -> np.ndarray:
    """Interior mask: True where every window stays inside the image."""
    margin = config.margin()
    mask = np.zeros(shape, dtype=bool)
    if shape[0] > 2 * margin and shape[1] > 2 * margin:
        mask[margin : shape[0] - margin, margin : shape[1] - margin] = True
    return mask


@dataclass(frozen=True)
class PreparedFrames:
    """Everything the matcher needs, computed once per frame pair.

    ``geo_before``/``geo_after`` come from the *surface* (z) images;
    ``volume`` is the semi-fluid score volume from the *intensity*
    discriminants (None for the continuous model).
    """

    geo_before: SurfaceGeometry
    geo_after: SurfaceGeometry
    volume: ScoreVolume | None
    config: NeighborhoodConfig


def prepare_frames(
    z_before: np.ndarray,
    z_after: np.ndarray,
    config: NeighborhoodConfig,
    intensity_before: np.ndarray | None = None,
    intensity_after: np.ndarray | None = None,
) -> PreparedFrames:
    """Fit surfaces and (for the semi-fluid model) precompute scores.

    In the monocular case the intensity image *is* the digital surface
    (Section 2: "treating the intensity data as a digital surface") --
    pass it as ``z_before``/``z_after`` and omit the intensity pair.
    """
    z_before = np.asarray(z_before, dtype=np.float64)
    z_after = np.asarray(z_after, dtype=np.float64)
    for label, z in (("before", z_before), ("after", z_after)):
        if z.ndim != 2 or z.size == 0:
            raise ValueError(f"{label} frame must be a non-empty 2-D image, got shape {z.shape}")
        if not np.isfinite(z).all():
            raise ValueError(
                f"{label} frame contains non-finite values (NaN or Inf); garbage "
                "pixels would silently poison the windowed 6x6 normal equations"
            )
    if z_before.shape != z_after.shape:
        raise ValueError(f"frame shapes differ: {z_before.shape} vs {z_after.shape}")
    geo_b = fit_surface(z_before, config.n_w)
    geo_a = fit_surface(z_after, config.n_w)
    volume = None
    if config.is_semifluid:
        i_b = z_before if intensity_before is None else np.asarray(intensity_before, float)
        i_a = z_after if intensity_after is None else np.asarray(intensity_after, float)
        if i_b.shape != z_before.shape or i_a.shape != z_before.shape:
            raise ValueError("intensity shapes must match surface shapes")
        if not (np.isfinite(i_b).all() and np.isfinite(i_a).all()):
            raise ValueError("intensity contains non-finite values (NaN or Inf)")
        d_b = discriminant_field(i_b, config.n_w)
        d_a = discriminant_field(i_a, config.n_w)
        volume = compute_score_volume(d_b, d_a, config)
    return PreparedFrames(geo_before=geo_b, geo_after=geo_a, volume=volume, config=config)


def _shifted_geometry_stack(geo: SurfaceGeometry, volume: ScoreVolume) -> np.ndarray:
    """After-motion gradients shifted by every enlarged-window displacement.

    Returns ``(n_displacements, 2, H, W)`` with ``p'`` and ``q'``
    pre-shifted so semi-fluid gathers are a ``take_along_axis``.
    """
    n = volume.displacements.shape[0]
    out = np.empty((n, 2) + geo.shape, dtype=np.float64)
    for k, (dy, dx) in enumerate(volume.displacements):
        out[k, 0] = shift2d(geo.p, int(dy), int(dx))
        out[k, 1] = shift2d(geo.q, int(dy), int(dx))
    return out


def hypothesis_fields(
    prepared: PreparedFrames,
    hyp_dy: int,
    hyp_dx: int,
    shifted_after: np.ndarray | None = None,
    deltas: tuple[np.ndarray, np.ndarray] | None = None,
) -> np.ndarray:
    """Template-accumulated normal-equation fields for one hypothesis.

    Returns packed fields of shape ``(H, W, 28)``: the per-pixel
    contributions of :func:`repro.core.continuous.pointwise_fields`
    box-summed over the z-template window.  For the semi-fluid model the
    after-motion gradients are gathered through ``F_semi`` first;
    ``deltas`` may carry the precomputed per-pixel semi-fluid
    displacements ``(delta_y, delta_x)`` for this hypothesis.
    """
    geo_b, geo_a = prepared.geo_before, prepared.geo_after
    config = prepared.config
    if prepared.volume is not None and config.n_ss > 0:
        if deltas is None:
            deltas = semifluid_displacements(prepared.volume, hyp_dy, hyp_dx, config.n_ss)
        delta_y, delta_x = deltas
        if shifted_after is None:
            shifted_after = _shifted_geometry_stack(geo_a, prepared.volume)
        reach = prepared.volume.reach
        side = prepared.volume.side
        flat = (delta_y + reach) * side + (delta_x + reach)
        p_a = np.take_along_axis(shifted_after[:, 0], flat[None], axis=0)[0]
        q_a = np.take_along_axis(shifted_after[:, 1], flat[None], axis=0)[0]
    else:
        p_a = shift2d(geo_a.p, hyp_dy, hyp_dx)
        q_a = shift2d(geo_a.q, hyp_dy, hyp_dx)
    fields = pointwise_fields(geo_b.p, geo_b.q, p_a, q_a, geo_b.e, geo_b.g)
    accumulated = np.empty_like(fields)
    for k in range(N_FIELDS):
        accumulated[..., k] = box_sum(fields[..., k], config.n_zt)
    return accumulated


def track_dense(
    prepared: PreparedFrames, ridge: float = 1e-9
) -> DenseMatchResult:
    """Estimate the dense motion field: all pixels, all hypotheses.

    This is the "track all pixels ... in parallel" computation of the
    paper, executed as NumPy whole-array operations (the sequential
    *optimized* rendering; :class:`repro.parallel.parallel_sma.ParallelSMA`
    runs the same math through the SIMD simulator).
    """
    config = prepared.config
    shape = prepared.geo_before.shape
    semifluid = prepared.volume is not None and config.n_ss > 0
    shifted_after = None
    if semifluid:
        shifted_after = _shifted_geometry_stack(prepared.geo_after, prepared.volume)

    best_error = np.full(shape, np.inf)
    best_u = np.zeros(shape, dtype=np.float64)
    best_v = np.zeros(shape, dtype=np.float64)
    best_params = np.zeros(shape + (6,), dtype=np.float64)

    order = hypothesis_order(config.n_zs)
    for hyp_dy, hyp_dx in order:
        deltas = None
        if semifluid:
            deltas = semifluid_displacements(prepared.volume, hyp_dy, hyp_dx, config.n_ss)
        fields = hypothesis_fields(prepared, hyp_dy, hyp_dx, shifted_after, deltas)
        solution = solve_accumulated(fields, ridge=ridge)
        better = solution.error < best_error
        best_error = np.where(better, solution.error, best_error)
        if semifluid:
            # The non-rigid correspondence of the *tracked* pixel is its
            # own semi-fluid mapping under this hypothesis (eq. 8): the
            # hypothesis displacement refined by the pixel's F_semi
            # drift, which restores sub-window accuracy that the relaxed
            # template mapping would otherwise absorb.
            best_u = np.where(better, deltas[1].astype(np.float64), best_u)
            best_v = np.where(better, deltas[0].astype(np.float64), best_v)
        else:
            best_u = np.where(better, float(hyp_dx), best_u)
            best_v = np.where(better, float(hyp_dy), best_v)
        best_params = np.where(better[..., None], solution.params, best_params)

    return DenseMatchResult(
        u=best_u,
        v=best_v,
        params=best_params,
        error=best_error,
        valid=valid_mask(shape, config),
        hypotheses_evaluated=len(order),
    )


def track_pixel(
    prepared: PreparedFrames,
    x: int,
    y: int,
    d_before: np.ndarray | None = None,
    d_after: np.ndarray | None = None,
    ridge: float = 1e-9,
) -> tuple[float, float, np.ndarray, float]:
    """Reference per-pixel tracker (the paper's sequential baseline).

    Returns ``(u, v, params, error)`` for pixel ``(x, y)``.  For the
    semi-fluid model pass the intensity discriminant fields so the
    per-pixel :func:`semifluid_map_pixel` can run without the dense
    precompute.  Wraps toroidally like the dense path; meaningful only
    for interior pixels.
    """
    config = prepared.config
    geo_b, geo_a = prepared.geo_before, prepared.geo_after
    h, w = geo_b.shape
    n_zt = config.n_zt
    dyy, dxx = np.meshgrid(
        np.arange(-n_zt, n_zt + 1), np.arange(-n_zt, n_zt + 1), indexing="ij"
    )
    ty = (y + dyy) % h
    tx = (x + dxx) % w

    p_b = geo_b.p[ty, tx].ravel()
    q_b = geo_b.q[ty, tx].ravel()
    e_b = geo_b.e[ty, tx].ravel()
    g_b = geo_b.g[ty, tx].ravel()

    semifluid = config.is_semifluid
    if semifluid and (d_before is None or d_after is None):
        raise ValueError("semi-fluid reference tracking needs discriminant fields")

    best = None
    for hyp_dy, hyp_dx in hypothesis_order(config.n_zs):
        center_delta = (hyp_dy, hyp_dx)
        if semifluid:
            p_a = np.empty_like(p_b)
            q_a = np.empty_like(q_b)
            flat_ty = ty.ravel()
            flat_tx = tx.ravel()
            for idx in range(flat_ty.size):
                dy_star, dx_star = semifluid_map_pixel(
                    d_before,
                    d_after,
                    int(flat_tx[idx]),
                    int(flat_ty[idx]),
                    hyp_dy,
                    hyp_dx,
                    config,
                )
                if flat_ty[idx] == y % h and flat_tx[idx] == x % w:
                    center_delta = (dy_star, dx_star)
                p_a[idx] = geo_a.p[(flat_ty[idx] + dy_star) % h, (flat_tx[idx] + dx_star) % w]
                q_a[idx] = geo_a.q[(flat_ty[idx] + dy_star) % h, (flat_tx[idx] + dx_star) % w]
        else:
            ay = (ty + hyp_dy) % h
            ax = (tx + hyp_dx) % w
            p_a = geo_a.p[ay, ax].ravel()
            q_a = geo_a.q[ay, ax].ravel()
        solution = estimate_from_samples(p_b, q_b, p_a, q_a, e_b, g_b, ridge=ridge)
        err = float(solution.error)
        if best is None or err < best[3]:
            # Report the tracked pixel's own (semi-fluid) correspondence.
            best = (float(center_delta[1]), float(center_delta[0]), solution.params, err)
    assert best is not None
    return best
