"""Hypothesis search and dense motion-correspondence estimation (Section 2.2).

For every tracked pixel the SMA algorithm evaluates every hypothesis in
the ``(2N_zs+1)^2`` z-search neighborhood: Step 1 selects the template
mapping (continuous ``F_cont`` or semi-fluid ``F_semi``), Step 2 solves
the 6x6 system for the motion parameters and evaluates the template
error eq. (3); the estimated correspondence is the error-minimizing
hypothesis (eq. 7).

Two implementations are provided, mirroring the paper's own methodology
("a sequential (un-optimized) version ... was used to form a baseline
for comparing the correctness of the parallel algorithm results"):

* :func:`track_pixel` -- the direct, per-pixel reference: explicit
  template sample lists, one hypothesis at a time.

* :func:`track_dense` -- the optimized dense path: because the template
  accumulation of eq. (3) is a box sum, the normal-equation fields for
  *all* pixels are accumulated with uniform filters, and all pixels'
  6x6 systems are solved by batched Gaussian elimination.  The
  semi-fluid mapping uses the Section 4.1 precompute
  (:func:`repro.core.semifluid.compute_score_volume`).

:func:`track_dense` offers two engines producing **bit-identical**
results (tested):

* ``engine="batched"`` (default) -- the hypothesis axis is stacked too:
  the per-hypothesis normal-equation fields of a whole chunk of the
  ``(2N_zs+1)^2`` search window are built with one broadcast
  :func:`~repro.core.continuous.pointwise_fields` call, box-summed with
  one separable uniform filter sweep over the stack (internally a
  shared cumulative sliding sum per axis) and solved with ONE batched
  :func:`~repro.core.linalg.gaussian_eliminate` call -- the whole-search
  SIMD rendering, minus per-hypothesis Python dispatch.
* ``engine="serial"`` -- one hypothesis at a time, kept as the
  validation baseline and the pre-optimization benchmark reference.

Both paths produce identical integer displacements and identical motion
parameters (tested), and tie-breaks are deterministic: among equal
error minima the smaller displacement wins (Chebyshev magnitude, then
raster order).

On top of the engines, ``search`` selects the *hypothesis schedule*:

* ``search="exhaustive"`` (default) -- every pixel evaluates every
  hypothesis, as above.
* ``search="pruned"`` -- exact certificate-grid pruning, bit-identical
  to exhaustive.  Because the template error of eq. (3) is a sum of
  non-negative per-sample terms, the minimized error over any
  *sub-window* of the template is a lower bound on the minimized error
  over the full template (the bound survives the ridge term -- the
  computed value is exactly ``min_theta E(theta) + ridge |theta|^2``,
  which is monotone under adding non-negative sample terms -- and the
  ``max(.., 0)`` clamp).  The engine solves these cheap certificate
  systems on a sparse grid (one per ``stride x stride`` block of
  pixels, window half-width ``n_zt - 1`` so every pixel's nearest
  certificate window nests inside its own template) and skips the full
  6x6 solve wherever the certificate bound already exceeds the pixel's
  current best error by more than a small fp-safety slack.  Singular
  certificate systems fall back to a bound of zero (never prune), so
  soundness never depends on the rank of a certificate patch.
* ``search="pyramid"`` -- opt-in coarse-to-fine guidance (continuous
  model only): the raw surfaces are decimated through
  :mod:`repro.stereo.pyramid`, tracked exhaustively at the coarse
  level, and the upsampled coarse displacement restricts each pixel's
  fine-level z-search to a ``(2*refine+1)^2`` window around its coarse
  hypothesis.  Approximate by design; endpoint error vs. exhaustive is
  bounded by tests on the synthetic vortex dataset.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..kernels import KERNEL_BACKENDS, ResolvedBackend, resolve_backend
from ..kernels.reference import box_sum_stack as _kernel_box_sum_stack
from ..kernels.reference import strided_window_sums
from ..obs.metrics import METRICS
from ..obs.tracing import TRACER
from ..params import NeighborhoodConfig
from .continuous import (
    N_FIELDS,
    estimate_from_samples,
    pointwise_fields,
    solve_accumulated,
)
from .prep import FramePreparationCache, prepare_frame
from .semifluid import (
    ScoreVolume,
    box_sum,
    compute_score_volume,
    semifluid_displacements,
    semifluid_map_pixel,
    shift2d,
)
from .surface import SurfaceGeometry

#: Soft cap on the stacked per-hypothesis field bytes held live by the
#: batched engine; chunks the ``(2N_zs+1)^2`` search when exceeded.
#: Small on purpose: the per-hypothesis working set (28 packed fields,
#: their box sums, the unpacked 6x6 systems) must stay cache-resident --
#: profiling shows monolithic stacks run several times SLOWER than
#: one-or-two-hypothesis chunks because every stage becomes a strided
#: sweep over main memory.
DEFAULT_BATCH_BYTES = 2**20

#: Hypothesis-schedule modes accepted by :func:`track_dense`.
SEARCH_MODES = ("exhaustive", "pruned", "pyramid")

#: Certificate-grid spacing of the pruned engine.  With certificate
#: half-width ``m = n_zt - 1`` a stride of 3 keeps every pixel within
#: Chebyshev distance ``n_zt - m = 1`` of a grid center, so the
#: displaced certificate window still nests inside the pixel's own
#: template and the bound stays exact.
CERT_STRIDE = 3

#: FP-safety slack for the prune test: a hypothesis is skipped only when
#: its certificate bound exceeds the current best by more than
#: ``rel * |c_cert| + abs``.  The sub-window solve and the full solve
#: share no intermediate rounding, so the analytic bound must be given
#: a few ulps of room before it may veto a solve that could win or tie.
CERT_SLACK_REL = 3e-6
CERT_SLACK_ABS = 1e-12

#: Ledger phase name for GE charges of :func:`track_dense` (matches
#: :data:`repro.parallel.parallel_sma.PHASE_MATCHING`).
PHASE_MATCHING = "Hypothesis matching"


@dataclass(frozen=True)
class DenseMatchResult:
    """Dense per-pixel correspondence estimates.

    * ``u``, ``v`` -- x- and y-displacement (pixels, t_m -> t_{m+1}),
    * ``params`` -- winning motion parameters, shape (H, W, 6),
    * ``error`` -- winning template error, shape (H, W),
    * ``valid`` -- interior mask (False in the border margin where
      windows would leave the image),
    * ``hypotheses_evaluated`` -- hypotheses the schedule touched (the
      full ``(2N_zs+1)^2`` count for exhaustive/pruned; the fine-level
      offsets visited for pyramid),
    * ``ge_solves`` -- 6x6 Gaussian eliminations actually performed
      (certificate + survivor solves for the pruned schedule),
    * ``hypotheses_pruned`` -- pixel-hypothesis pairs whose full solve
      the pruned schedule skipped.
    """

    u: np.ndarray
    v: np.ndarray
    params: np.ndarray
    error: np.ndarray
    valid: np.ndarray
    hypotheses_evaluated: int
    ge_solves: int = 0
    hypotheses_pruned: int = 0

    @property
    def shape(self) -> tuple[int, int]:
        return self.u.shape

    def displacement_magnitude(self) -> np.ndarray:
        """Euclidean displacement magnitude per pixel."""
        return np.hypot(self.u, self.v)


def hypothesis_order(n_zs: int) -> list[tuple[int, int]]:
    """Hypothesis displacements sorted by (Chebyshev magnitude, raster).

    Evaluating hypotheses in this order with a strict-less update makes
    tie-breaking favor the smallest motion, deterministically, in both
    the dense and reference paths.
    """
    offsets = [
        (dy, dx)
        for dy in range(-n_zs, n_zs + 1)
        for dx in range(-n_zs, n_zs + 1)
    ]
    return sorted(offsets, key=lambda o: (max(abs(o[0]), abs(o[1])), o[0], o[1]))


def valid_mask(shape: tuple[int, int], config: NeighborhoodConfig) -> np.ndarray:
    """Interior mask: True where every window stays inside the image."""
    margin = config.margin()
    mask = np.zeros(shape, dtype=bool)
    if shape[0] > 2 * margin and shape[1] > 2 * margin:
        mask[margin : shape[0] - margin, margin : shape[1] - margin] = True
    return mask


@dataclass(frozen=True)
class PreparedFrames:
    """Everything the matcher needs, computed once per frame pair.

    ``geo_before``/``geo_after`` come from the *surface* (z) images;
    ``volume`` is the semi-fluid score volume from the *intensity*
    discriminants (None for the continuous model).  ``z_before``/
    ``z_after`` keep the raw surfaces so the pyramid search can build
    its coarse levels; they are None for hand-built instances.
    """

    geo_before: SurfaceGeometry
    geo_after: SurfaceGeometry
    volume: ScoreVolume | None
    config: NeighborhoodConfig
    z_before: np.ndarray | None = None
    z_after: np.ndarray | None = None


def prepare_frames(
    z_before: np.ndarray,
    z_after: np.ndarray,
    config: NeighborhoodConfig,
    intensity_before: np.ndarray | None = None,
    intensity_after: np.ndarray | None = None,
    cache: FramePreparationCache | None = None,
) -> PreparedFrames:
    """Fit surfaces and (for the semi-fluid model) precompute scores.

    In the monocular case the intensity image *is* the digital surface
    (Section 2: "treating the intensity data as a digital surface") --
    pass it as ``z_before``/``z_after`` and omit the intensity pair.

    ``cache`` optionally reuses the per-frame half of the work (surface
    fit + discriminant field) across pairs of a sequence: frame ``m``
    is both the ``after`` frame of pair ``m-1`` and the ``before``
    frame of pair ``m``, so a sequence driver that passes the same
    cache fits each frame exactly once.  Cached and uncached results
    are bit-identical.  The semi-fluid score volume couples both
    frames of the pair and is always computed here, per pair.
    """
    z_before = np.asarray(z_before, dtype=np.float64)
    z_after = np.asarray(z_after, dtype=np.float64)
    for label, z in (("before", z_before), ("after", z_after)):
        if z.ndim != 2 or z.size == 0:
            raise ValueError(f"{label} frame must be a non-empty 2-D image, got shape {z.shape}")
        if not np.isfinite(z).all():
            raise ValueError(
                f"{label} frame contains non-finite values (NaN or Inf); garbage "
                "pixels would silently poison the windowed 6x6 normal equations"
            )
    if z_before.shape != z_after.shape:
        raise ValueError(f"frame shapes differ: {z_before.shape} vs {z_after.shape}")
    i_b = i_a = None
    if config.is_semifluid:
        i_b = z_before if intensity_before is None else np.asarray(intensity_before, float)
        i_a = z_after if intensity_after is None else np.asarray(intensity_after, float)
        if i_b.shape != z_before.shape or i_a.shape != z_after.shape:
            raise ValueError("intensity shapes must match surface shapes")
        if not (np.isfinite(i_b).all() and np.isfinite(i_a).all()):
            raise ValueError("intensity contains non-finite values (NaN or Inf)")
    lookup = cache.get if cache is not None else prepare_frame
    # Pass None when the intensity IS the surface (monocular) so the
    # content fingerprint hashes each frame's pixels exactly once.
    with TRACER.span("prepare_frames", semifluid=config.is_semifluid, cached=cache is not None):
        prep_b = lookup(z_before, None if intensity_before is None else i_b, config)
        prep_a = lookup(z_after, None if intensity_after is None else i_a, config)
        volume = None
        if config.is_semifluid:
            with TRACER.span("score_volume"):
                volume = compute_score_volume(
                    prep_b.discriminant, prep_a.discriminant, config
                )
    return PreparedFrames(
        geo_before=prep_b.geometry,
        geo_after=prep_a.geometry,
        volume=volume,
        config=config,
        z_before=z_before,
        z_after=z_after,
    )


def _shifted_geometry_stack(geo: SurfaceGeometry, volume: ScoreVolume) -> np.ndarray:
    """After-motion gradients shifted by every enlarged-window displacement.

    Returns ``(n_displacements, 2, H, W)`` with ``p'`` and ``q'``
    pre-shifted so semi-fluid gathers are a ``take_along_axis``.
    """
    n = volume.displacements.shape[0]
    out = np.empty((n, 2) + geo.shape, dtype=np.float64)
    for k, (dy, dx) in enumerate(volume.displacements):
        out[k, 0] = shift2d(geo.p, int(dy), int(dx))
        out[k, 1] = shift2d(geo.q, int(dy), int(dx))
    return out


def _hypothesis_pointwise(
    prepared: PreparedFrames,
    hyp_dy: int,
    hyp_dx: int,
    shifted_after: np.ndarray | None = None,
    deltas: tuple[np.ndarray, np.ndarray] | None = None,
) -> np.ndarray:
    """Per-sample (un-accumulated) normal-equation fields for one hypothesis.

    The ``(H, W, 28)`` pointwise contributions of
    :func:`repro.core.continuous.pointwise_fields`, with the semi-fluid
    ``F_semi`` gather applied when active.  Both the template box sum
    and the pruned engine's certificate sub-window sums accumulate
    these same fields, which is what makes the certificate bound exact.
    """
    geo_b, geo_a = prepared.geo_before, prepared.geo_after
    config = prepared.config
    if prepared.volume is not None and config.n_ss > 0:
        if deltas is None:
            deltas = semifluid_displacements(prepared.volume, hyp_dy, hyp_dx, config.n_ss)
        delta_y, delta_x = deltas
        if shifted_after is None:
            shifted_after = _shifted_geometry_stack(geo_a, prepared.volume)
        reach = prepared.volume.reach
        side = prepared.volume.side
        flat = (delta_y + reach) * side + (delta_x + reach)
        p_a = np.take_along_axis(shifted_after[:, 0], flat[None], axis=0)[0]
        q_a = np.take_along_axis(shifted_after[:, 1], flat[None], axis=0)[0]
    else:
        p_a = shift2d(geo_a.p, hyp_dy, hyp_dx)
        q_a = shift2d(geo_a.q, hyp_dy, hyp_dx)
    return pointwise_fields(geo_b.p, geo_b.q, p_a, q_a, geo_b.e, geo_b.g)


def hypothesis_fields(
    prepared: PreparedFrames,
    hyp_dy: int,
    hyp_dx: int,
    shifted_after: np.ndarray | None = None,
    deltas: tuple[np.ndarray, np.ndarray] | None = None,
) -> np.ndarray:
    """Template-accumulated normal-equation fields for one hypothesis.

    Returns packed fields of shape ``(H, W, 28)``: the per-pixel
    contributions of :func:`repro.core.continuous.pointwise_fields`
    box-summed over the z-template window.  For the semi-fluid model the
    after-motion gradients are gathered through ``F_semi`` first;
    ``deltas`` may carry the precomputed per-pixel semi-fluid
    displacements ``(delta_y, delta_x)`` for this hypothesis.
    """
    fields = _hypothesis_pointwise(prepared, hyp_dy, hyp_dx, shifted_after, deltas)
    config = prepared.config
    accumulated = np.empty_like(fields)
    for k in range(N_FIELDS):
        accumulated[..., k] = box_sum(fields[..., k], config.n_zt)
    return accumulated


def track_dense(
    prepared: PreparedFrames,
    ridge: float = 1e-9,
    engine: str = "batched",
    batch_bytes: int = DEFAULT_BATCH_BYTES,
    search: str = "exhaustive",
    ledger=None,
    pyramid_levels: int = 1,
    pyramid_refine: int = 1,
    backend: str = "auto",
) -> DenseMatchResult:
    """Estimate the dense motion field: all pixels, all hypotheses.

    This is the "track all pixels ... in parallel" computation of the
    paper, executed as NumPy whole-array operations (the sequential
    *optimized* rendering; :class:`repro.parallel.parallel_sma.ParallelSMA`
    runs the same math through the SIMD simulator).

    ``engine`` selects ``"batched"`` (default: hypotheses stacked and
    solved together, see the module docstring) or ``"serial"`` (one
    hypothesis per iteration, the validation baseline).  The two are
    bit-identical in ``u``, ``v``, ``params`` and ``error``.
    ``batch_bytes`` caps the live hypothesis-stack memory of the
    batched engine; the search window is chunked when it would exceed
    the cap, which changes speed, never results.

    ``search`` selects the hypothesis schedule (module docstring):
    ``"exhaustive"``, ``"pruned"`` (bit-identical, fewer GE solves) or
    ``"pyramid"`` (approximate coarse-to-fine, continuous model only,
    with ``pyramid_levels`` decimations and a ``pyramid_refine``
    half-width fine window).  ``ledger`` optionally receives the GE
    solves actually performed, charged under ``"Hypothesis matching"``
    -- the observable proof of the pruned schedule's saving.

    ``backend`` selects the kernel execution path
    (:data:`repro.kernels.KERNEL_BACKENDS`): ``"auto"`` (historical
    native-when-available dispatch), ``"numpy"`` (pin the reference),
    ``"native"`` (require the C kernel) -- all three bit-identical --
    or the opt-in ``"device"`` array-API path, which evaluates whole
    hypothesis chunks (including certificate grids) on device within
    the documented tolerance of :mod:`repro.kernels.digest`.
    """
    if search not in SEARCH_MODES:
        raise ValueError(
            f"unknown search mode {search!r} (choose from {', '.join(SEARCH_MODES)})"
        )
    if engine not in ("batched", "serial"):
        raise ValueError(f"unknown engine {engine!r} (choose 'batched' or 'serial')")
    if backend not in KERNEL_BACKENDS:
        raise ValueError(
            f"unknown kernel backend {backend!r} "
            f"(choose from {', '.join(KERNEL_BACKENDS)})"
        )
    if backend == "device" and search == "pyramid":
        raise ValueError(
            "backend='device' supports search='exhaustive' and 'pruned'; "
            "stacking two approximate paths (device + pyramid) is not supported"
        )
    resolved = resolve_backend(backend)
    with TRACER.span(
        "hypothesis_search", engine=engine, search=search, backend=resolved.resolved
    ):
        if resolved.is_device:
            result = _track_dense_device(prepared, ridge, batch_bytes, search, resolved)
        elif search == "pruned":
            result = _track_dense_pruned(prepared, ridge, resolved.prefer_native)
        elif search == "pyramid":
            result = _track_dense_pyramid(
                prepared, ridge, batch_bytes, pyramid_levels, pyramid_refine,
                resolved.prefer_native,
            )
        elif engine == "serial":
            result = _track_dense_serial(prepared, ridge, resolved.prefer_native)
        else:
            result = _track_dense_batched(prepared, ridge, batch_bytes, resolved.prefer_native)
    if ledger is not None:
        with ledger.phase(PHASE_MATCHING):
            ledger.charge_gaussian_elimination(result.ge_solves, order=6)
    return result


def _track_dense_serial(
    prepared: PreparedFrames, ridge: float, prefer_native: bool = True
) -> DenseMatchResult:
    """One hypothesis at a time (the pre-batching reference loop)."""
    config = prepared.config
    shape = prepared.geo_before.shape
    semifluid = prepared.volume is not None and config.n_ss > 0
    shifted_after = None
    if semifluid:
        shifted_after = _shifted_geometry_stack(prepared.geo_after, prepared.volume)

    best_error = np.full(shape, np.inf)
    best_u = np.zeros(shape, dtype=np.float64)
    best_v = np.zeros(shape, dtype=np.float64)
    best_params = np.zeros(shape + (6,), dtype=np.float64)

    order = hypothesis_order(config.n_zs)
    for hyp_dy, hyp_dx in order:
        deltas = None
        if semifluid:
            deltas = semifluid_displacements(prepared.volume, hyp_dy, hyp_dx, config.n_ss)
        fields = hypothesis_fields(prepared, hyp_dy, hyp_dx, shifted_after, deltas)
        solution = solve_accumulated(fields, ridge=ridge, prefer_native=prefer_native)
        better = solution.error < best_error
        best_error = np.where(better, solution.error, best_error)
        if semifluid:
            # The non-rigid correspondence of the *tracked* pixel is its
            # own semi-fluid mapping under this hypothesis (eq. 8): the
            # hypothesis displacement refined by the pixel's F_semi
            # drift, which restores sub-window accuracy that the relaxed
            # template mapping would otherwise absorb.
            best_u = np.where(better, deltas[1].astype(np.float64), best_u)
            best_v = np.where(better, deltas[0].astype(np.float64), best_v)
        else:
            best_u = np.where(better, float(hyp_dx), best_u)
            best_v = np.where(better, float(hyp_dy), best_v)
        best_params = np.where(better[..., None], solution.params, best_params)

    return DenseMatchResult(
        u=best_u,
        v=best_v,
        params=best_params,
        error=best_error,
        valid=valid_mask(shape, config),
        hypotheses_evaluated=len(order),
        ge_solves=shape[0] * shape[1] * len(order),
    )


def _box_sum_stack(fields: np.ndarray, half_width: int) -> np.ndarray:
    """Box sum over the image axes of a ``(n, H, W, 28)`` stack.

    Delegates to the consolidated kernels-module implementation
    (arithmetic per (n, k) slice identical to
    :func:`repro.core.semifluid.box_sum` on that slice, hence
    bit-identical to the serial engine).
    """
    return _kernel_box_sum_stack(fields, half_width)


def _track_dense_batched(
    prepared: PreparedFrames, ridge: float, batch_bytes: int,
    prefer_native: bool = True,
) -> DenseMatchResult:
    """All hypotheses stacked: one field build, one box-sum sweep, one
    batched Gaussian elimination per chunk of the search window."""
    config = prepared.config
    geo_b, geo_a = prepared.geo_before, prepared.geo_after
    shape = geo_b.shape
    semifluid = prepared.volume is not None and config.n_ss > 0
    shifted_after = None
    if semifluid:
        shifted_after = _shifted_geometry_stack(geo_a, prepared.volume)

    best_error = np.full(shape, np.inf)
    best_u = np.zeros(shape, dtype=np.float64)
    best_v = np.zeros(shape, dtype=np.float64)
    best_params = np.zeros(shape + (6,), dtype=np.float64)

    order = hypothesis_order(config.n_zs)
    bytes_per_hypothesis = shape[0] * shape[1] * N_FIELDS * 8
    chunk_size = max(1, int(batch_bytes) // max(bytes_per_hypothesis, 1))
    METRICS.inc("hypotheses.evaluated", len(order))

    for start in range(0, len(order), chunk_size):
        chunk = order[start : start + chunk_size]
        n = len(chunk)
        METRICS.inc("batched_engine.chunks")
        chunk_span = TRACER.span("hypothesis_chunk", start=start, size=n)
        chunk_span.__enter__()
        try:
            p_a, q_a, delta_y, delta_x = _chunk_after_gradients(
                prepared, chunk, shifted_after
            )
            fields = pointwise_fields(
                geo_b.p[None], geo_b.q[None], p_a, q_a, geo_b.e[None], geo_b.g[None]
            )
            accumulated = _box_sum_stack(fields, config.n_zt)
            del fields
            solution = solve_accumulated(
                accumulated, ridge=ridge, prefer_native=prefer_native
            )
            del accumulated

            # Merge in hypothesis order with a strict-less update: identical
            # tie-breaking (Chebyshev magnitude, then raster) to the serial
            # engine, regardless of chunking.
            for k, (hyp_dy, hyp_dx) in enumerate(chunk):
                better = solution.error[k] < best_error
                best_error = np.where(better, solution.error[k], best_error)
                if semifluid:
                    best_u = np.where(better, delta_x[k].astype(np.float64), best_u)
                    best_v = np.where(better, delta_y[k].astype(np.float64), best_v)
                else:
                    best_u = np.where(better, float(hyp_dx), best_u)
                    best_v = np.where(better, float(hyp_dy), best_v)
                best_params = np.where(better[..., None], solution.params[k], best_params)
        finally:
            chunk_span.__exit__(None, None, None)

    return DenseMatchResult(
        u=best_u,
        v=best_v,
        params=best_params,
        error=best_error,
        valid=valid_mask(shape, config),
        hypotheses_evaluated=len(order),
        ge_solves=shape[0] * shape[1] * len(order),
    )


class _CertificateGrid:
    """Sub-template certificate geometry for the pruned schedule.

    One certificate window of half-width ``m = n_zt - 1`` per
    ``CERT_STRIDE x CERT_STRIDE`` block, with all windows fully inside
    the image.  Every pixel maps to its nearest grid center (Chebyshev
    distance <= ``n_zt - m``), so the certificate window is a subset of
    that pixel's own template window and its minimized error is a
    sound lower bound; pixels beyond the last grid row/column get a
    bound of zero (never pruned).
    """

    def __init__(self, shape: tuple[int, int], n_zt: int, m: int) -> None:
        h, w = shape
        self.m = m
        self.gy = np.arange(m, h - m, CERT_STRIDE)
        self.gx = np.arange(m, w - m, CERT_STRIDE)
        iy = np.clip(
            np.round((np.arange(h) - m) / CERT_STRIDE).astype(np.intp),
            0, self.gy.size - 1,
        )
        ix = np.clip(
            np.round((np.arange(w) - m) / CERT_STRIDE).astype(np.intp),
            0, self.gx.size - 1,
        )
        self.pixel_to_grid = np.ix_(iy, ix)
        tol = n_zt - m
        cy = m + CERT_STRIDE * iy
        cx = m + CERT_STRIDE * ix
        self.in_range = (
            (np.abs(np.arange(h) - cy) <= tol)[:, None]
            & (np.abs(np.arange(w) - cx) <= tol)[None, :]
        )

    @classmethod
    def build(cls, shape: tuple[int, int], n_zt: int) -> "_CertificateGrid | None":
        """A usable grid, or None when certificates cannot discriminate.

        ``m = n_zt - 1`` needs at least two template rows to leave a
        certificate window that overdetermines the six parameters; a
        ``m < 2`` window (<= 18 residuals) prunes next to nothing, so
        tiny templates simply fall back to the exhaustive engine.
        """
        m = n_zt - 1
        if m < 2:
            return None
        grid = cls(shape, n_zt, m)
        if grid.gy.size == 0 or grid.gx.size == 0:
            return None
        return grid

    @property
    def systems(self) -> int:
        """Certificate solves per hypothesis (one per grid point)."""
        return self.gy.size * self.gx.size

    def _window_sums(self, arr: np.ndarray, axis: int, grid_size: int) -> np.ndarray:
        """Sum ``arr`` over every certificate window along ``axis``.

        Delegates to the consolidated kernels-module implementation; the
        bin-grouped summation order only perturbs the *bound* within the
        certificate slack -- the field itself never flows through this
        path.
        """
        return strided_window_sums(arr, axis, grid_size, CERT_STRIDE, self.m)

    def lower_bounds(self, pw: np.ndarray, ridge: float, prefer_native: bool = True):
        """Per-pixel error lower bound + fp slack for one hypothesis.

        ``pw`` is the ``(H, W, 28)`` pointwise field of the hypothesis.
        Returns ``(lb, slack)`` with shapes ``(H, W)``.
        """
        tmp = self._window_sums(pw, 1, self.gx.size)
        acc = self._window_sums(tmp, 0, self.gy.size)
        solution = solve_accumulated(acc, ridge=ridge, prefer_native=prefer_native)
        # A singular certificate system reports E(0) = c, which is NOT a
        # lower bound on the minimum; bound zero keeps the pixel honest.
        lb_grid = np.where(solution.singular, 0.0, solution.error)
        lb = np.where(self.in_range, lb_grid[self.pixel_to_grid], 0.0)
        slack = (
            CERT_SLACK_REL * np.abs(acc[..., N_FIELDS - 1][self.pixel_to_grid])
            + CERT_SLACK_ABS
        )
        return lb, slack


def _track_dense_pruned(
    prepared: PreparedFrames, ridge: float, prefer_native: bool = True
) -> DenseMatchResult:
    """Certificate-grid pruning: bit-identical to exhaustive, fewer solves.

    Soundness of the skip: a hypothesis is pruned for a pixel only when
    ``lb - slack > best_error`` strictly, where ``lb`` underestimates
    the hypothesis' true (ridge-regularized, clamped) template error.
    A pruned hypothesis therefore could neither have won the strict
    ``error < best`` update nor produced an exact tie, so the merged
    ``u``, ``v``, ``params`` and ``error`` match the exhaustive
    schedule byte for byte.  The first hypothesis never prunes
    (``best = inf``), so every pixel always receives a finite best.
    """
    config = prepared.config
    geo_b = prepared.geo_before
    shape = geo_b.shape
    semifluid = prepared.volume is not None and config.n_ss > 0
    shifted_after = None
    if semifluid:
        shifted_after = _shifted_geometry_stack(prepared.geo_after, prepared.volume)

    grid = _CertificateGrid.build(shape, config.n_zt)
    if grid is None:
        # Template too small for useful certificates: exhaustive IS the
        # pruned result (the contract is bit-identity either way).
        return _track_dense_batched(prepared, ridge, DEFAULT_BATCH_BYTES, prefer_native)

    best_error = np.full(shape, np.inf)
    best_u = np.zeros(shape, dtype=np.float64)
    best_v = np.zeros(shape, dtype=np.float64)
    best_params = np.zeros(shape + (6,), dtype=np.float64)
    flat_error = best_error.ravel()
    flat_u = best_u.ravel()
    flat_v = best_v.ravel()
    flat_params = best_params.reshape(-1, 6)

    order = hypothesis_order(config.n_zs)
    pixels = shape[0] * shape[1]
    cert_solves = 0
    survivor_solves = 0
    pruned = 0
    have_best = False
    METRICS.inc("hypotheses.evaluated", len(order))

    for hyp_dy, hyp_dx in order:
        deltas = None
        if semifluid:
            deltas = semifluid_displacements(prepared.volume, hyp_dy, hyp_dx, config.n_ss)
        pw = _hypothesis_pointwise(prepared, hyp_dy, hyp_dx, shifted_after, deltas)
        if have_best:
            lb, slack = grid.lower_bounds(pw, ridge, prefer_native)
            cert_solves += grid.systems
            survivors = np.flatnonzero(~((lb - slack) > best_error).ravel())
            pruned += pixels - survivors.size
        else:
            # Nothing can prune against best = inf, so the first
            # hypothesis skips the certificate pass entirely.
            survivors = np.arange(pixels)
        if survivors.size == 0:
            continue
        # Full-image box sum on purpose: scipy's separable uniform
        # filter is a running sum whose rounding depends on the distance
        # from the array origin, so cropping to the survivor bounding
        # box would change bits relative to the exhaustive engine.
        accumulated = _box_sum_stack(pw[None], config.n_zt)[0]
        solution = solve_accumulated(
            accumulated.reshape(-1, N_FIELDS)[survivors], ridge=ridge,
            prefer_native=prefer_native,
        )
        survivor_solves += survivors.size
        have_best = True
        better = solution.error < flat_error[survivors]
        winners = survivors[better]
        if winners.size:
            flat_error[winners] = solution.error[better]
            flat_params[winners] = solution.params[better]
            if semifluid:
                flat_u[winners] = deltas[1].ravel()[winners].astype(np.float64)
                flat_v[winners] = deltas[0].ravel()[winners].astype(np.float64)
            else:
                flat_u[winners] = float(hyp_dx)
                flat_v[winners] = float(hyp_dy)

    METRICS.inc("search.hypotheses.pruned", pruned)
    METRICS.inc("search.ge_solves.performed", cert_solves + survivor_solves)
    METRICS.inc("search.ge_solves.saved", pixels * len(order) - survivor_solves)
    METRICS.inc("search.certificate_solves", cert_solves)
    return DenseMatchResult(
        u=best_u,
        v=best_v,
        params=best_params,
        error=best_error,
        valid=valid_mask(shape, config),
        hypotheses_evaluated=len(order),
        ge_solves=cert_solves + survivor_solves,
        hypotheses_pruned=pruned,
    )


def _chunk_after_gradients(
    prepared: PreparedFrames,
    chunk: list[tuple[int, int]],
    shifted_after: np.ndarray | None,
):
    """Host-side gather of after-motion gradients for a hypothesis chunk.

    Returns ``(p_a, q_a, delta_y, delta_x)`` with the gradient stacks of
    shape ``(n, H, W)``; the deltas are the per-pixel semi-fluid
    correspondences (None for the continuous model).  Shared by the
    batched host engine and the device engine -- the semi-fluid argmin
    gather stays on host either way, only the field chain moves.
    """
    config = prepared.config
    shape = prepared.geo_before.shape
    geo_a = prepared.geo_after
    semifluid = prepared.volume is not None and config.n_ss > 0
    n = len(chunk)
    p_a = np.empty((n,) + shape, dtype=np.float64)
    q_a = np.empty((n,) + shape, dtype=np.float64)
    delta_y = delta_x = None
    if semifluid:
        delta_y = np.empty((n,) + shape, dtype=np.int64)
        delta_x = np.empty((n,) + shape, dtype=np.int64)
        reach = prepared.volume.reach
        side = prepared.volume.side
        for k, (hyp_dy, hyp_dx) in enumerate(chunk):
            dy_k, dx_k = semifluid_displacements(
                prepared.volume, hyp_dy, hyp_dx, config.n_ss
            )
            delta_y[k], delta_x[k] = dy_k, dx_k
            flat = (dy_k + reach) * side + (dx_k + reach)
            p_a[k] = np.take_along_axis(shifted_after[:, 0], flat[None], axis=0)[0]
            q_a[k] = np.take_along_axis(shifted_after[:, 1], flat[None], axis=0)[0]
    else:
        for k, (hyp_dy, hyp_dx) in enumerate(chunk):
            p_a[k] = shift2d(geo_a.p, hyp_dy, hyp_dx)
            q_a[k] = shift2d(geo_a.q, hyp_dy, hyp_dx)
    return p_a, q_a, delta_y, delta_x


def _track_dense_device(
    prepared: PreparedFrames,
    ridge: float,
    batch_bytes: int,
    search: str,
    resolved: ResolvedBackend,
) -> DenseMatchResult:
    """Whole hypothesis chunks on the array-API device backend.

    The field build, template box sums, certificate-grid sums and the
    batched 6x6 eliminate all execute on device
    (:class:`repro.kernels.device.DeviceBackend`); the host keeps only
    the semi-fluid gather, the hypothesis schedule and the strict-less
    merge.  Approximate by contract: results match the host engines
    within the documented tolerance of :mod:`repro.kernels.digest`, and
    near-tie pixels may pick a different (equally minimal) hypothesis.
    """
    dev = resolved.device
    config = prepared.config
    geo_b = prepared.geo_before
    shape = geo_b.shape
    semifluid = prepared.volume is not None and config.n_ss > 0
    shifted_after = None
    if semifluid:
        shifted_after = _shifted_geometry_stack(prepared.geo_after, prepared.volume)

    best_error = np.full(shape, np.inf)
    best_u = np.zeros(shape, dtype=np.float64)
    best_v = np.zeros(shape, dtype=np.float64)
    best_params = np.zeros(shape + (6,), dtype=np.float64)

    order = hypothesis_order(config.n_zs)
    pixels = shape[0] * shape[1]
    METRICS.inc("hypotheses.evaluated", len(order))

    grid = _CertificateGrid.build(shape, config.n_zt) if search == "pruned" else None
    if grid is not None:
        # Certificate-grid pruning with every sum and solve on device;
        # only the per-pixel survivor bookkeeping stays on host.
        flat_error = best_error.ravel()
        flat_u = best_u.ravel()
        flat_v = best_v.ravel()
        flat_params = best_params.reshape(-1, 6)
        cert_solves = 0
        survivor_solves = 0
        pruned = 0
        have_best = False
        for hyp_dy, hyp_dx in order:
            chunk = [(hyp_dy, hyp_dx)]
            p_a, q_a, delta_y, delta_x = _chunk_after_gradients(
                prepared, chunk, shifted_after
            )
            pw = dev.stage_chunk(geo_b.p, geo_b.q, geo_b.e, geo_b.g, p_a, q_a)
            if have_best:
                lb_grid, c_grid = dev.certificate_bounds(
                    pw, grid.m, grid.gy, grid.gx, ridge
                )
                cert_solves += grid.systems
                lb = np.where(grid.in_range, lb_grid[grid.pixel_to_grid], 0.0)
                slack = CERT_SLACK_REL * c_grid[grid.pixel_to_grid] + CERT_SLACK_ABS
                survivors = np.flatnonzero(~((lb - slack) > best_error).ravel())
                pruned += pixels - survivors.size
            else:
                survivors = np.arange(pixels)
            if survivors.size == 0:
                continue
            error_s, params_s = dev.solve_template(
                pw, config.n_zt, ridge, survivors=survivors
            )
            survivor_solves += survivors.size
            have_best = True
            better = error_s < flat_error[survivors]
            winners = survivors[better]
            if winners.size:
                flat_error[winners] = error_s[better]
                flat_params[winners] = params_s[better]
                if semifluid:
                    flat_u[winners] = delta_x[0].ravel()[winners].astype(np.float64)
                    flat_v[winners] = delta_y[0].ravel()[winners].astype(np.float64)
                else:
                    flat_u[winners] = float(hyp_dx)
                    flat_v[winners] = float(hyp_dy)
        METRICS.inc("search.hypotheses.pruned", pruned)
        METRICS.inc("search.ge_solves.performed", cert_solves + survivor_solves)
        METRICS.inc("search.ge_solves.saved", pixels * len(order) - survivor_solves)
        METRICS.inc("search.certificate_solves", cert_solves)
        return DenseMatchResult(
            u=best_u,
            v=best_v,
            params=best_params,
            error=best_error,
            valid=valid_mask(shape, config),
            hypotheses_evaluated=len(order),
            ge_solves=cert_solves + survivor_solves,
            hypotheses_pruned=pruned,
        )

    # Exhaustive schedule (also pruned when the template is too small
    # for certificates): chunked exactly like the host batched engine.
    bytes_per_hypothesis = shape[0] * shape[1] * N_FIELDS * 8
    chunk_size = max(1, int(batch_bytes) // max(bytes_per_hypothesis, 1))
    for start in range(0, len(order), chunk_size):
        chunk = order[start : start + chunk_size]
        with TRACER.span("hypothesis_chunk", start=start, size=len(chunk)):
            p_a, q_a, delta_y, delta_x = _chunk_after_gradients(
                prepared, chunk, shifted_after
            )
            pw = dev.stage_chunk(geo_b.p, geo_b.q, geo_b.e, geo_b.g, p_a, q_a)
            error, params = dev.solve_template(pw, config.n_zt, ridge)
            for k, (hyp_dy, hyp_dx) in enumerate(chunk):
                better = error[k] < best_error
                best_error = np.where(better, error[k], best_error)
                if semifluid:
                    best_u = np.where(better, delta_x[k].astype(np.float64), best_u)
                    best_v = np.where(better, delta_y[k].astype(np.float64), best_v)
                else:
                    best_u = np.where(better, float(hyp_dx), best_u)
                    best_v = np.where(better, float(hyp_dy), best_v)
                best_params = np.where(better[..., None], params[k], best_params)

    return DenseMatchResult(
        u=best_u,
        v=best_v,
        params=best_params,
        error=best_error,
        valid=valid_mask(shape, config),
        hypotheses_evaluated=len(order),
        ge_solves=pixels * len(order),
    )


def _track_dense_pyramid(
    prepared: PreparedFrames,
    ridge: float,
    batch_bytes: int,
    levels: int,
    refine: int,
    prefer_native: bool = True,
) -> DenseMatchResult:
    """Coarse-to-fine guided search (approximate, continuous model only)."""
    from ..stereo.pyramid import downsample, upsample_flow

    config = prepared.config
    if prepared.volume is not None and config.n_ss > 0:
        raise ValueError(
            "search='pyramid' supports the continuous model only: the "
            "semi-fluid score volume is resolution-specific and cannot "
            "be decimated (use search='pruned' for an exact speedup)"
        )
    if prepared.z_before is None or prepared.z_after is None:
        raise ValueError(
            "search='pyramid' needs PreparedFrames built by prepare_frames "
            "(the raw surfaces are required to build the coarse levels)"
        )
    if levels < 1:
        raise ValueError("pyramid_levels must be >= 1")
    if refine < 0:
        raise ValueError("pyramid_refine must be >= 0")
    shape = prepared.geo_before.shape

    # Decimate while the coarse level can still track anything: each
    # level halves the surfaces and (conservatively) the search radius.
    z_b, z_a = prepared.z_before, prepared.z_after
    coarse_zs = config.n_zs
    used_levels = 0
    for _ in range(levels):
        if min(z_b.shape) < 4:
            break
        next_zs = max(1, -(-coarse_zs // 2))
        next_b = downsample(z_b)
        if min(next_b.shape) <= 2 * config.replace(n_zs=next_zs).margin() + 1:
            break
        z_b, z_a = next_b, downsample(z_a)
        coarse_zs = next_zs
        used_levels += 1
    if used_levels == 0:
        # Image too small for any coarse level: the guided search IS the
        # exhaustive search.
        return _track_dense_batched(prepared, ridge, batch_bytes, prefer_native)

    coarse_config = config.replace(n_zs=coarse_zs)
    with TRACER.span(
        "pyramid_level",
        level=used_levels,
        height=z_b.shape[0],
        width=z_b.shape[1],
        n_zs=coarse_zs,
    ):
        coarse_prep = prepare_frames(z_b, z_a, coarse_config)
        coarse = _track_dense_batched(coarse_prep, ridge, batch_bytes, prefer_native)
    u_up, v_up = upsample_flow(coarse.u, coarse.v, shape)
    center_x = np.clip(np.rint(u_up), -config.n_zs, config.n_zs).astype(np.int64)
    center_y = np.clip(np.rint(v_up), -config.n_zs, config.n_zs).astype(np.int64)

    best_error = np.full(shape, np.inf)
    best_u = np.zeros(shape, dtype=np.float64)
    best_v = np.zeros(shape, dtype=np.float64)
    best_params = np.zeros(shape + (6,), dtype=np.float64)
    flat_error = best_error.ravel()
    flat_u = best_u.ravel()
    flat_v = best_v.ravel()
    flat_params = best_params.reshape(-1, 6)

    offsets_visited = 0
    fine_solves = 0
    fine_span = TRACER.span(
        "pyramid_level", level=0, height=shape[0], width=shape[1], refine=refine
    )
    fine_span.__enter__()
    try:
        for hyp_dy, hyp_dx in hypothesis_order(config.n_zs):
            mask = (np.abs(hyp_dy - center_y) <= refine) & (
                np.abs(hyp_dx - center_x) <= refine
            )
            if not mask.any():
                continue
            offsets_visited += 1
            pw = _hypothesis_pointwise(prepared, hyp_dy, hyp_dx)
            accumulated = _box_sum_stack(pw[None], config.n_zt)[0]
            wanted = np.flatnonzero(mask.ravel())
            solution = solve_accumulated(
                accumulated.reshape(-1, N_FIELDS)[wanted], ridge=ridge,
                prefer_native=prefer_native,
            )
            fine_solves += wanted.size
            better = solution.error < flat_error[wanted]
            winners = wanted[better]
            if winners.size:
                flat_error[winners] = solution.error[better]
                flat_params[winners] = solution.params[better]
                flat_u[winners] = float(hyp_dx)
                flat_v[winners] = float(hyp_dy)
    finally:
        fine_span.__exit__(None, None, None)

    METRICS.inc("pyramid.levels", used_levels)
    METRICS.inc("pyramid.fine_offsets.visited", offsets_visited)
    METRICS.inc("pyramid.fine_solves", fine_solves)
    return DenseMatchResult(
        u=best_u,
        v=best_v,
        params=best_params,
        error=best_error,
        valid=valid_mask(shape, config),
        hypotheses_evaluated=offsets_visited,
        ge_solves=coarse.ge_solves + fine_solves,
    )


def track_pixel(
    prepared: PreparedFrames,
    x: int,
    y: int,
    d_before: np.ndarray | None = None,
    d_after: np.ndarray | None = None,
    ridge: float = 1e-9,
) -> tuple[float, float, np.ndarray, float]:
    """Reference per-pixel tracker (the paper's sequential baseline).

    Returns ``(u, v, params, error)`` for pixel ``(x, y)``.  For the
    semi-fluid model pass the intensity discriminant fields so the
    per-pixel :func:`semifluid_map_pixel` can run without the dense
    precompute.  Wraps toroidally like the dense path; meaningful only
    for interior pixels.
    """
    config = prepared.config
    geo_b, geo_a = prepared.geo_before, prepared.geo_after
    h, w = geo_b.shape
    n_zt = config.n_zt
    dyy, dxx = np.meshgrid(
        np.arange(-n_zt, n_zt + 1), np.arange(-n_zt, n_zt + 1), indexing="ij"
    )
    ty = (y + dyy) % h
    tx = (x + dxx) % w

    p_b = geo_b.p[ty, tx].ravel()
    q_b = geo_b.q[ty, tx].ravel()
    e_b = geo_b.e[ty, tx].ravel()
    g_b = geo_b.g[ty, tx].ravel()

    semifluid = config.is_semifluid
    if semifluid and (d_before is None or d_after is None):
        raise ValueError("semi-fluid reference tracking needs discriminant fields")

    best = None
    for hyp_dy, hyp_dx in hypothesis_order(config.n_zs):
        center_delta = (hyp_dy, hyp_dx)
        if semifluid:
            p_a = np.empty_like(p_b)
            q_a = np.empty_like(q_b)
            flat_ty = ty.ravel()
            flat_tx = tx.ravel()
            for idx in range(flat_ty.size):
                dy_star, dx_star = semifluid_map_pixel(
                    d_before,
                    d_after,
                    int(flat_tx[idx]),
                    int(flat_ty[idx]),
                    hyp_dy,
                    hyp_dx,
                    config,
                )
                if flat_ty[idx] == y % h and flat_tx[idx] == x % w:
                    center_delta = (dy_star, dx_star)
                p_a[idx] = geo_a.p[(flat_ty[idx] + dy_star) % h, (flat_tx[idx] + dx_star) % w]
                q_a[idx] = geo_a.q[(flat_ty[idx] + dy_star) % h, (flat_tx[idx] + dx_star) % w]
        else:
            ay = (ty + hyp_dy) % h
            ax = (tx + hyp_dx) % w
            p_a = geo_a.p[ay, ax].ravel()
            q_a = geo_a.q[ay, ax].ravel()
        solution = estimate_from_samples(p_b, q_b, p_a, q_a, e_b, g_b, ridge=ridge)
        err = float(solution.error)
        if best is None or err < best[3]:
            # Report the tracked pixel's own (semi-fluid) correspondence.
            best = (float(center_delta[1]), float(center_delta[0]), solution.params, err)
    assert best is not None
    return best
