"""Per-frame preparation and sequence-level computation reuse.

The pairwise front half of the SMA pipeline -- quadratic surface
fitting (Section 2.2, Step 2) and the intensity-discriminant field of
the semi-fluid mapping (Section 2.3) -- is a pure function of ONE
frame.  Yet a naive sequence driver prepares every interior frame
twice: frame ``m`` is the ``after`` frame of pair ``m-1`` and the
``before`` frame of pair ``m``.  Over the paper's 490-frame Hurricane
Luis sequence that doubles the surface-fit Gaussian eliminations (the
"over one million separate Gaussian-eliminations" of Section 3) for no
benefit.

:class:`FramePreparation` packages the per-frame half of
:func:`repro.core.matching.prepare_frames`; :class:`FramePreparationCache`
memoizes it under a **content fingerprint** (a digest of the raw pixel
bytes plus the window parameters that shape the fit), so

* each distinct frame is fitted exactly once per sequence,
* results are bit-identical with and without the cache -- the cached
  value IS the value the direct computation would produce, keyed by
  content rather than identity, and
* checkpoint/resume stays bit-identical trivially: a cold cache after
  resume recomputes the same pure function.

Only the *per-frame* products are cached.  The semi-fluid score volume
(eq. 9-11) couples both discriminants of a pair and is computed per
pair by :func:`repro.core.matching.prepare_frames` as before.
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict
from dataclasses import dataclass, field

import numpy as np

from ..obs.metrics import METRICS
from ..obs.tracing import TRACER
from ..params import NeighborhoodConfig
from .semifluid import discriminant_field
from .surface import SurfaceGeometry, fit_surface


@dataclass(frozen=True)
class FramePreparation:
    """The per-frame half of a pair preparation.

    * ``geometry`` -- differential geometry of the fitted z-surface,
    * ``discriminant`` -- ``D = I_xx I_yy - I_xy^2`` of the intensity
      surface (None for the continuous model, which never consults it),
    * ``fingerprint`` -- the content key this preparation was computed
      under.
    """

    geometry: SurfaceGeometry
    discriminant: np.ndarray | None
    fingerprint: str

    @property
    def shape(self) -> tuple[int, int]:
        return self.geometry.shape


def frame_fingerprint(
    surface: np.ndarray,
    intensity: np.ndarray | None,
    config: NeighborhoodConfig,
) -> str:
    """Content fingerprint of one frame's preparation inputs.

    Digests the raw float64 pixel bytes of the surface (and intensity,
    when the semi-fluid model will consume it) together with the only
    configuration parameters the per-frame products depend on: the
    fitting half-width ``n_w`` and whether a discriminant is needed.
    Two frames with equal content always collide -- that is the point.
    """
    h = hashlib.blake2b(digest_size=20)
    h.update(f"n_w={config.n_w};semifluid={config.is_semifluid};".encode())
    for name, arr in (("surface", surface), ("intensity", intensity)):
        if arr is None:
            h.update(b"|none")
            continue
        a = np.ascontiguousarray(np.asarray(arr, dtype=np.float64))
        h.update(f"|{name}:{a.shape[0]}x{a.shape[1]}:".encode())
        h.update(a.data)
    return h.hexdigest()


def prepare_frame(
    surface: np.ndarray,
    intensity: np.ndarray | None,
    config: NeighborhoodConfig,
    fingerprint: str | None = None,
) -> FramePreparation:
    """Compute one frame's preparation directly (no caching).

    ``intensity`` is the resolved discriminant source: the separate
    intensity image in stereo mode, the surface itself in monocular
    mode, or None for the continuous model.
    """
    surface = np.asarray(surface, dtype=np.float64)
    with TRACER.span("surface_fit", semifluid=config.is_semifluid):
        geometry = fit_surface(surface, config.n_w)
        discriminant = None
        if config.is_semifluid:
            source = surface if intensity is None else np.asarray(intensity, dtype=np.float64)
            discriminant = discriminant_field(source, config.n_w)
    if fingerprint is None:
        fingerprint = frame_fingerprint(surface, intensity, config)
    return FramePreparation(
        geometry=geometry, discriminant=discriminant, fingerprint=fingerprint
    )


@dataclass
class CacheStats:
    """Hit/miss counters, surfaced in run metadata and benchmarks."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    def as_dict(self) -> dict[str, int]:
        return {"hits": self.hits, "misses": self.misses, "evictions": self.evictions}


@dataclass
class FramePreparationCache:
    """LRU cache of :class:`FramePreparation` keyed by content fingerprint.

    ``max_frames`` bounds resident preparations; the streaming access
    pattern (pair ``m`` touches frames ``m`` and ``m+1``) only ever
    needs two, so the small default never evicts a live entry.

    Thread-safe: the serving layer shares one cache across worker
    threads, so every mutation of the LRU map and the stats runs under
    a lock.  The preparation itself is computed *outside* the lock --
    it is a pure function of the frame content, so two threads racing
    on the same cold key at worst duplicate work, never corrupt state
    or diverge in results (the first insert wins; both threads return
    preparations with identical contents).
    """

    max_frames: int = 8
    stats: CacheStats = field(default_factory=CacheStats)
    _entries: OrderedDict = field(default_factory=OrderedDict, repr=False)
    _lock: threading.Lock = field(
        default_factory=threading.Lock, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        if self.max_frames < 1:
            raise ValueError("max_frames must be >= 1")

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def get(
        self,
        surface: np.ndarray,
        intensity: np.ndarray | None,
        config: NeighborhoodConfig,
    ) -> FramePreparation:
        """The frame's preparation, computed on first sight of its content."""
        key = frame_fingerprint(surface, intensity, config)
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                self._entries.move_to_end(key)
                self.stats.hits += 1
                METRICS.inc("prep_cache.hit")
                return entry
            self.stats.misses += 1
        METRICS.inc("prep_cache.miss")
        entry = prepare_frame(surface, intensity, config, fingerprint=key)
        with self._lock:
            existing = self._entries.get(key)
            if existing is not None:
                # Another thread computed the same content concurrently;
                # keep its entry resident and return it (identical data).
                self._entries.move_to_end(key)
                return existing
            self._entries[key] = entry
            while len(self._entries) > self.max_frames:
                self._entries.popitem(last=False)
                self.stats.evictions += 1
                METRICS.inc("prep_cache.eviction")
        return entry

    def seed(self, preparation: FramePreparation) -> None:
        """Insert an externally computed preparation under its own fingerprint.

        The shared-memory bus path: a pool worker that attaches to a
        :class:`~repro.bus.ring.FrameRing` receives the publisher's
        fitted planes along with the content fingerprint they were
        computed under, and seeds them here so :meth:`get` hits without
        refitting.  First insert wins, matching :meth:`get`'s race rule;
        the cached value is bit-identical to what a local recompute
        would produce because the preparation is a pure function of the
        fingerprinted content.
        """
        with self._lock:
            if preparation.fingerprint in self._entries:
                self._entries.move_to_end(preparation.fingerprint)
                return
            self._entries[preparation.fingerprint] = preparation
            while len(self._entries) > self.max_frames:
                self._entries.popitem(last=False)
                self.stats.evictions += 1
                METRICS.inc("prep_cache.eviction")

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
