"""The continuous non-rigid motion model ``F_cont`` (Section 2.2).

Under the local affine transformation of eq. (6),

    x' = x + (a_i x + b_i y + x0)
    y' = y + (a_j x + b_j y + y0)
    z' = z + (a_k x + b_k y + z0),

a graph surface ``S(x, y) = (x, y, z(x, y))`` with gradients
``p = z_x`` and ``q = z_y`` has unnormalized normal ``N = (-p, -q, 1)``.
Differentiating the deformed surface ``S'(x, y) = (x+u, y+v, z+w)``
(with ``u, v, w`` the affine displacement components) and keeping terms
first order in the six motion parameters gives the *predicted* normal
after motion:

    N'_i ~= -p - a_k + a_j q - b_j p
    N'_j ~= -q - b_k + b_i p - a_i q
    N'_k ~= 1 + a_i + b_j

(the rigid translation (x0, y0, z0) drops out -- normals are
translation invariant -- leaving exactly the six unknowns
{a_i, b_i, a_j, b_j, a_k, b_k} of the paper).

The *observed* normal after motion ``[n'_i, n'_j, n'_k]`` is measured
from the quadratic patch fitted at the hypothesized corresponding
pixel; its gradient form is ``p' = -n'_i / n'_k`` and
``q' = -n'_j / n'_k``.  Scaling the observation so its k-component
matches the predicted ``1 + a_i + b_j`` and differencing the i- and
j-components yields residuals **linear** in the parameters:

    eps_1 = (1/E) [ (p' - p) + a_i p' + a_j q + b_j (p' - p) - a_k ]
    eps_2 = (1/G) [ (q' - q) + a_i (q' - q) + b_i p + b_j q'  - b_k ]

where ``E = 1 + p^2`` and ``G = 1 + q^2`` are the first-fundamental-
form coefficients the paper names in eqs. (4)-(5).  (The published
eqs. (4)-(5) are OCR-corrupted in our source; this derivation
reconstructs them from the same first-principles small-deformation
analysis of [8], and has the properties the paper requires: linearity
in the six parameters -- so the first-order optimality conditions are
one 6x6 Gaussian elimination -- zero residual under pure translation,
and 1/E, 1/G fundamental-form weighting.)

The template error of eq. (3),

    eps(x, y; x^, y^) = sum over template pixels of (eps_1^2 + eps_2^2),

is quadratic in the parameters; :func:`solve_accumulated` minimizes it
from accumulated normal-equation fields.  Because the accumulation is
a plain box sum over the template window, the dense matcher
(:mod:`repro.core.matching`) evaluates it for *all* pixels at once
with uniform filters.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .linalg import gaussian_eliminate

#: Parameter order used throughout: theta = (a_i, b_i, a_j, b_j, a_k, b_k).
PARAM_NAMES: tuple[str, ...] = ("a_i", "b_i", "a_j", "b_j", "a_k", "b_k")

N_PARAMS = 6

#: Upper-triangle index pairs of the symmetric 6x6 normal matrix, in the
#: packed order used by the dense field representation (21 entries).
TRIU_INDICES: tuple[tuple[int, int], ...] = tuple(
    (i, j) for i in range(N_PARAMS) for j in range(i, N_PARAMS)
)

N_TRIU = len(TRIU_INDICES)  # 21

#: Packed field layout: 21 H entries + 6 gradient entries + 1 constant.
N_FIELDS = N_TRIU + N_PARAMS + 1  # 28


def predicted_normal(p, q, params):
    """First-order predicted unnormalized normal after the affine motion.

    Parameters may be scalars or broadcastable arrays; ``params`` has
    the order of :data:`PARAM_NAMES` on its last axis.
    """
    params = np.asarray(params, dtype=np.float64)
    a_i, b_i, a_j, b_j, a_k, b_k = np.moveaxis(params, -1, 0)
    n_i = -p - a_k + a_j * q - b_j * p
    n_j = -q - b_k + b_i * p - a_i * q
    n_k = 1.0 + a_i + b_j
    return np.stack(np.broadcast_arrays(n_i, n_j, n_k), axis=-1)


def residual_rows(p, q, p_after, q_after):
    """Design rows and constants of eps_1, eps_2 (unweighted).

    Given before-motion gradients ``(p, q)`` and observed after-motion
    gradients ``(p_after, q_after)`` -- any broadcastable shapes --
    returns ``(a1, r1, a2, r2)`` where ``a1``/``a2`` have a trailing
    axis of length 6 such that ``eps_m = a_m . theta + r_m``.
    """
    p, q, p_after, q_after = np.broadcast_arrays(
        np.asarray(p, dtype=np.float64),
        np.asarray(q, dtype=np.float64),
        np.asarray(p_after, dtype=np.float64),
        np.asarray(q_after, dtype=np.float64),
    )
    zero = np.zeros_like(p)
    minus_one = -np.ones_like(p)
    dp = p_after - p
    dq = q_after - q
    a1 = np.stack([p_after, zero, q, dp, minus_one, zero], axis=-1)
    a2 = np.stack([dq, p, zero, q_after, zero, minus_one], axis=-1)
    return a1, dp, a2, dq


def pointwise_fields(p, q, p_after, q_after, e, g) -> np.ndarray:
    """Per-sample normal-equation contributions, packed into 28 fields.

    For each sample the weighted error contribution is
    ``w1 (a1.theta + r1)^2 + w2 (a2.theta + r2)^2`` with quadratic
    weights ``w1 = 1/E^2`` and ``w2 = 1/G^2`` (the residuals carry 1/E,
    1/G).  Expanding gives a 6x6 matrix ``H`` (21 packed upper-triangle
    entries), a gradient vector ``grad`` (6) and a constant ``c`` (1):

        E(theta) = c + 2 theta . grad + theta^T H theta

    Summing the packed fields over a template window and solving
    ``H theta = -grad`` minimizes eq. (3) over that window.  Output
    shape is ``broadcast_shape + (28,)``.
    """
    a1, r1, a2, r2 = residual_rows(p, q, p_after, q_after)
    e = np.asarray(e, dtype=np.float64)
    g = np.asarray(g, dtype=np.float64)
    w1 = 1.0 / (e * e)
    w2 = 1.0 / (g * g)
    out_shape = a1.shape[:-1]
    # Hoist the weight products out of the 28-field loop.  Python's *
    # is left-associative, so ``w1 * a1_i * a1_j == (w1 * a1_i) * a1_j``
    # exactly: precomputing ``w1 * a1`` (and ``w1 * r1``) reuses the
    # identical first product and keeps every output bit unchanged.
    wa1 = w1[..., None] * a1
    wa2 = w2[..., None] * a2
    w1r1 = w1 * r1
    w2r2 = w2 * r2
    fields = np.empty(out_shape + (N_FIELDS,), dtype=np.float64)
    # Structural zeros: a1 columns 1 and 5 and a2 columns 2 and 4 are
    # identically zero (residual_rows), and the weights are finite and
    # strictly positive (E, G >= 1), so each vanished product is an
    # exact IEEE zero.  Skipping those products leaves every template
    # accumulation and solver input bit-for-bit unchanged (a +-0 term
    # never moves a running sum); only the sign of a structurally-zero
    # raw entry can differ, which no consumer observes.  Two reusable
    # scratch buffers replace the three fresh temporaries per field.
    a1_zero = (1, 5)
    a2_zero = (2, 4)
    buf_a = np.empty(out_shape, dtype=np.float64)
    buf_b = np.empty(out_shape, dtype=np.float64)
    for idx, (i, j) in enumerate(TRIU_INDICES):
        keep1 = i not in a1_zero and j not in a1_zero
        keep2 = i not in a2_zero and j not in a2_zero
        if keep1 and keep2:
            np.multiply(wa1[..., i], a1[..., j], out=buf_a)
            np.multiply(wa2[..., i], a2[..., j], out=buf_b)
            np.add(buf_a, buf_b, out=buf_a)
            fields[..., idx] = buf_a
        elif keep1:
            np.multiply(wa1[..., i], a1[..., j], out=buf_a)
            fields[..., idx] = buf_a
        elif keep2:
            np.multiply(wa2[..., i], a2[..., j], out=buf_a)
            fields[..., idx] = buf_a
        else:
            fields[..., idx] = 0.0
    for k in range(N_PARAMS):
        if k not in a1_zero and k not in a2_zero:
            np.multiply(w1r1, a1[..., k], out=buf_a)
            np.multiply(w2r2, a2[..., k], out=buf_b)
            np.add(buf_a, buf_b, out=buf_a)
            fields[..., N_TRIU + k] = buf_a
        elif k not in a1_zero:
            np.multiply(w1r1, a1[..., k], out=buf_a)
            fields[..., N_TRIU + k] = buf_a
        else:
            np.multiply(w2r2, a2[..., k], out=buf_a)
            fields[..., N_TRIU + k] = buf_a
    fields[..., N_TRIU + N_PARAMS] = w1r1 * r1 + w2r2 * r2
    return fields


def unpack_fields(fields: np.ndarray):
    """Unpack summed fields into ``(H, grad, c)``.

    ``fields`` has shape ``(..., 28)``; returns ``H`` of shape
    ``(..., 6, 6)`` (symmetric), ``grad`` of shape ``(..., 6)`` and
    ``c`` of shape ``(...,)``.
    """
    fields = np.asarray(fields, dtype=np.float64)
    if fields.shape[-1] != N_FIELDS:
        raise ValueError(f"expected {N_FIELDS} packed fields, got {fields.shape[-1]}")
    shape = fields.shape[:-1]
    h = np.empty(shape + (N_PARAMS, N_PARAMS), dtype=np.float64)
    for idx, (i, j) in enumerate(TRIU_INDICES):
        h[..., i, j] = fields[..., idx]
        h[..., j, i] = fields[..., idx]
    grad = fields[..., N_TRIU : N_TRIU + N_PARAMS].copy()
    c = fields[..., N_TRIU + N_PARAMS].copy()
    return h, grad, c


@dataclass(frozen=True)
class MotionSolution:
    """Solution of one (batch of) eq. (3) minimization(s).

    ``params`` has shape ``(..., 6)`` in :data:`PARAM_NAMES` order,
    ``error`` the minimized template error, ``singular`` flags systems
    whose normal matrix was rank deficient (parameters forced to zero,
    error evaluated at zero -- the honest fallback for textureless
    patches).
    """

    params: np.ndarray
    error: np.ndarray
    singular: np.ndarray


def solve_accumulated(fields: np.ndarray, ridge: float = 1e-9) -> MotionSolution:
    """Minimize the accumulated template error (Step 2 of Section 2.2).

    ``fields`` are template-summed packed fields.  A tiny ridge term
    stabilizes near-degenerate patches without perturbing
    well-conditioned solutions; set ``ridge=0`` for the strict paper
    formulation.
    """
    h, grad, c = unpack_fields(fields)
    if ridge:
        h = h + ridge * np.eye(N_PARAMS)
    theta, singular = gaussian_eliminate(h, -grad)
    theta = np.where(singular[..., None], 0.0, theta)
    # E* = c + theta . grad at the optimum (and = c exactly when theta = 0).
    error = c + np.einsum("...k,...k->...", theta, grad)
    # Guard against tiny negative values from roundoff.
    error = np.maximum(error, 0.0)
    return MotionSolution(params=theta, error=error, singular=singular)


def estimate_from_samples(
    p, q, p_after, q_after, e, g, ridge: float = 1e-9
) -> MotionSolution:
    """Reference single-window estimator from explicit template samples.

    All inputs are 1-D arrays over the template pixels of one tracked
    pixel/hypothesis pair.  Used to validate the dense field/box-sum
    path against a direct construction.
    """
    fields = pointwise_fields(p, q, p_after, q_after, e, g)
    return solve_accumulated(fields.sum(axis=0), ridge=ridge)


def evaluate_error(fields_sum: np.ndarray, params: np.ndarray) -> np.ndarray:
    """Evaluate the template error at given parameters (not the minimum)."""
    h, grad, c = unpack_fields(fields_sum)
    return (
        c
        + 2.0 * np.einsum("...k,...k->...", params, grad)
        + np.einsum("...i,...ij,...j->...", params, h, params)
    )
