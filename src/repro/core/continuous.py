"""The continuous non-rigid motion model ``F_cont`` (Section 2.2).

Under the local affine transformation of eq. (6),

    x' = x + (a_i x + b_i y + x0)
    y' = y + (a_j x + b_j y + y0)
    z' = z + (a_k x + b_k y + z0),

a graph surface ``S(x, y) = (x, y, z(x, y))`` with gradients
``p = z_x`` and ``q = z_y`` has unnormalized normal ``N = (-p, -q, 1)``.
Differentiating the deformed surface ``S'(x, y) = (x+u, y+v, z+w)``
(with ``u, v, w`` the affine displacement components) and keeping terms
first order in the six motion parameters gives the *predicted* normal
after motion:

    N'_i ~= -p - a_k + a_j q - b_j p
    N'_j ~= -q - b_k + b_i p - a_i q
    N'_k ~= 1 + a_i + b_j

(the rigid translation (x0, y0, z0) drops out -- normals are
translation invariant -- leaving exactly the six unknowns
{a_i, b_i, a_j, b_j, a_k, b_k} of the paper).

The *observed* normal after motion ``[n'_i, n'_j, n'_k]`` is measured
from the quadratic patch fitted at the hypothesized corresponding
pixel; its gradient form is ``p' = -n'_i / n'_k`` and
``q' = -n'_j / n'_k``.  Scaling the observation so its k-component
matches the predicted ``1 + a_i + b_j`` and differencing the i- and
j-components yields residuals **linear** in the parameters:

    eps_1 = (1/E) [ (p' - p) + a_i p' + a_j q + b_j (p' - p) - a_k ]
    eps_2 = (1/G) [ (q' - q) + a_i (q' - q) + b_i p + b_j q'  - b_k ]

where ``E = 1 + p^2`` and ``G = 1 + q^2`` are the first-fundamental-
form coefficients the paper names in eqs. (4)-(5).  (The published
eqs. (4)-(5) are OCR-corrupted in our source; this derivation
reconstructs them from the same first-principles small-deformation
analysis of [8], and has the properties the paper requires: linearity
in the six parameters -- so the first-order optimality conditions are
one 6x6 Gaussian elimination -- zero residual under pure translation,
and 1/E, 1/G fundamental-form weighting.)

The template error of eq. (3),

    eps(x, y; x^, y^) = sum over template pixels of (eps_1^2 + eps_2^2),

is quadratic in the parameters; :func:`solve_accumulated` minimizes it
from accumulated normal-equation fields.  Because the accumulation is
a plain box sum over the template window, the dense matcher
(:mod:`repro.core.matching`) evaluates it for *all* pixels at once
with uniform filters.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

# The residual-row / packed-field arithmetic lives in the backend-neutral
# kernels module; these re-exports keep the historical import surface.
from ..kernels.reference import (  # noqa: F401  (re-exported API)
    A1_ZERO_COLUMNS,
    A2_ZERO_COLUMNS,
    N_FIELDS,
    N_PARAMS,
    N_TRIU,
    PARAM_NAMES,
    TRIU_INDICES,
    pointwise_fields,
    residual_rows,
)
from .linalg import gaussian_eliminate


def predicted_normal(p, q, params):
    """First-order predicted unnormalized normal after the affine motion.

    Parameters may be scalars or broadcastable arrays; ``params`` has
    the order of :data:`PARAM_NAMES` on its last axis.
    """
    params = np.asarray(params, dtype=np.float64)
    a_i, b_i, a_j, b_j, a_k, b_k = np.moveaxis(params, -1, 0)
    n_i = -p - a_k + a_j * q - b_j * p
    n_j = -q - b_k + b_i * p - a_i * q
    n_k = 1.0 + a_i + b_j
    return np.stack(np.broadcast_arrays(n_i, n_j, n_k), axis=-1)


def unpack_fields(fields: np.ndarray):
    """Unpack summed fields into ``(H, grad, c)``.

    ``fields`` has shape ``(..., 28)``; returns ``H`` of shape
    ``(..., 6, 6)`` (symmetric), ``grad`` of shape ``(..., 6)`` and
    ``c`` of shape ``(...,)``.
    """
    fields = np.asarray(fields, dtype=np.float64)
    if fields.shape[-1] != N_FIELDS:
        raise ValueError(f"expected {N_FIELDS} packed fields, got {fields.shape[-1]}")
    shape = fields.shape[:-1]
    h = np.empty(shape + (N_PARAMS, N_PARAMS), dtype=np.float64)
    for idx, (i, j) in enumerate(TRIU_INDICES):
        h[..., i, j] = fields[..., idx]
        h[..., j, i] = fields[..., idx]
    grad = fields[..., N_TRIU : N_TRIU + N_PARAMS].copy()
    c = fields[..., N_TRIU + N_PARAMS].copy()
    return h, grad, c


@dataclass(frozen=True)
class MotionSolution:
    """Solution of one (batch of) eq. (3) minimization(s).

    ``params`` has shape ``(..., 6)`` in :data:`PARAM_NAMES` order,
    ``error`` the minimized template error, ``singular`` flags systems
    whose normal matrix was rank deficient (parameters forced to zero,
    error evaluated at zero -- the honest fallback for textureless
    patches).
    """

    params: np.ndarray
    error: np.ndarray
    singular: np.ndarray


def solve_accumulated(
    fields: np.ndarray, ridge: float = 1e-9, prefer_native: bool = True
) -> MotionSolution:
    """Minimize the accumulated template error (Step 2 of Section 2.2).

    ``fields`` are template-summed packed fields.  A tiny ridge term
    stabilizes near-degenerate patches without perturbing
    well-conditioned solutions; set ``ridge=0`` for the strict paper
    formulation.  ``prefer_native`` feeds the eliminate dispatch
    (bit-identical either way; ``backend="numpy"`` pins it False).
    """
    h, grad, c = unpack_fields(fields)
    if ridge:
        h = h + ridge * np.eye(N_PARAMS)
    theta, singular = gaussian_eliminate(h, -grad, prefer_native=prefer_native)
    theta = np.where(singular[..., None], 0.0, theta)
    # E* = c + theta . grad at the optimum (and = c exactly when theta = 0).
    error = c + np.einsum("...k,...k->...", theta, grad)
    # Guard against tiny negative values from roundoff.
    error = np.maximum(error, 0.0)
    return MotionSolution(params=theta, error=error, singular=singular)


def estimate_from_samples(
    p, q, p_after, q_after, e, g, ridge: float = 1e-9
) -> MotionSolution:
    """Reference single-window estimator from explicit template samples.

    All inputs are 1-D arrays over the template pixels of one tracked
    pixel/hypothesis pair.  Used to validate the dense field/box-sum
    path against a direct construction.
    """
    fields = pointwise_fields(p, q, p_after, q_after, e, g)
    return solve_accumulated(fields.sum(axis=0), ridge=ridge)


def evaluate_error(fields_sum: np.ndarray, params: np.ndarray) -> np.ndarray:
    """Evaluate the template error at given parameters (not the minimum)."""
    h, grad, c = unpack_fields(fields_sum)
    return (
        c
        + 2.0 * np.einsum("...k,...k->...", params, grad)
        + np.einsum("...i,...ij,...j->...", params, h, params)
    )
