"""The semi-fluid template mapping ``F_semi`` (Section 2.3).

"The semi-fluid motion paradigm relaxes the local continuity
constraint for a small surface patch": instead of carrying every
template pixel to the *same* relative displacement (the continuous
mapping ``F_cont``), each template pixel is allowed to drift
independently within a small ``(2N_ss+1)^2`` semi-fluid search window
around its continuity-predicted location.  The drift is chosen by
matching the **discriminant of the intensity surface** before and
after motion, "which measures area of changes of a small intensity
surface patch" (eq. 10-11).

Concretely, with ``D(x, y, t) = I_xx I_yy - I_xy^2`` the discriminant
of the quadratic patch fitted to the *intensity* image (the
second-fundamental-form discriminant -- invariant to intensity offset
and tilt, sensitive to local shape), the matching score between a
before-pixel ``(x_a, y_a)`` and an after-candidate ``(x_s, y_s)`` is
the variance-normalized SSD over the semi-fluid surface-patch
neighborhood:

    theta(x_a, y_a; x_s, y_s) =
        sum_patch (D'(x_s+dx, y_s+dy) - D(x_a+dx, y_a+dy))^2
        / (sum_patch D(x_a+dx, y_a+dy)^2 + eps)

and ``F_semi(x_a, y_a) = argmin theta`` over the search window
(eq. 9).  With ``N_ss = 0`` the window degenerates to its center and
``F_semi`` reduces to ``F_cont`` exactly, as the paper notes.

The implementation follows the Section 4.1 optimization: the score is
precomputed *for every displacement in the enlarged*
``(2N_zs + 2N_ss + 1)^2`` *displacement window* as a dense per-pixel
field (each one a box-filtered squared difference of shifted
discriminant fields), after which the per-hypothesis mapping is a
windowed argmin -- no score is ever computed twice for overlapping
templates.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..kernels.reference import box_sum as _kernel_box_sum
from ..params import NeighborhoodConfig
from .surface import fit_patches

#: Relative floor added to the normalization denominator of theta.
NORMALIZATION_EPS = 1e-9


def shift2d(array: np.ndarray, dy: int, dx: int) -> np.ndarray:
    """Toroidal sample shift: ``out[y, x] = array[y + dy, x + dx]``.

    Wraparound values are only ever consumed in the invalid border
    margin that the matcher masks off.
    """
    return np.roll(array, shift=(-dy, -dx), axis=(0, 1))


def box_sum(field: np.ndarray, half_width: int) -> np.ndarray:
    """Sum of ``field`` over the ``(2N+1)^2`` window centered per pixel.

    Out-of-bounds contributions are zero (``mode='constant'``), which
    only affects the masked border margin.  Delegates to the single
    consolidated implementation in :mod:`repro.kernels.reference`.
    """
    return _kernel_box_sum(field, half_width)


def discriminant_field(intensity: np.ndarray, n_w: int) -> np.ndarray:
    """Discriminant ``D = I_xx I_yy - I_xy^2`` of the intensity surface.

    Uses the same quadratic patch fit as the z-surface geometry
    (Section 2.3: "computed after fitting local surface patches as
    described in Step 2 of Section 2.2, but using the intensity
    image").
    """
    coeffs = fit_patches(intensity, n_w)
    return 4.0 * coeffs[..., 3] * coeffs[..., 5] - coeffs[..., 4] ** 2


@dataclass(frozen=True)
class ScoreVolume:
    """Dense semi-fluid scores over the enlarged displacement window.

    ``scores[k]`` is the per-pixel theta for displacement
    ``displacements[k]`` (a ``(dy, dx)`` pair); displacements enumerate
    the ``(2(N_zs + N_ss) + 1)^2`` window in raster order.  ``reach``
    is ``N_zs + N_ss``.
    """

    scores: np.ndarray  # (n_displacements, H, W)
    displacements: np.ndarray  # (n_displacements, 2) as (dy, dx)
    reach: int

    @property
    def side(self) -> int:
        return 2 * self.reach + 1

    def index_of(self, dy: int, dx: int) -> int:
        """Raster index of displacement ``(dy, dx)``."""
        if abs(dy) > self.reach or abs(dx) > self.reach:
            raise ValueError(f"displacement ({dy}, {dx}) outside reach {self.reach}")
        return (dy + self.reach) * self.side + (dx + self.reach)


def compute_score_volume(
    d_before: np.ndarray, d_after: np.ndarray, config: NeighborhoodConfig
) -> ScoreVolume:
    """Precompute theta for every displacement in the enlarged window.

    This is the Section 4.1 precompute: "computing the error term in
    (10) for all pixels in a (2N_zs + 2N_ss + 1) x (2N_zs + 2N_ss + 1)
    neighborhood centered around the pixel being tracked, and then
    applying a (2N_ss + 1) x (2N_ss + 1) window ... and performing the
    minimization given in (9)".
    """
    d_before = np.asarray(d_before, dtype=np.float64)
    d_after = np.asarray(d_after, dtype=np.float64)
    if d_before.shape != d_after.shape:
        raise ValueError("discriminant fields must have identical shapes")
    reach = config.n_zs + config.n_ss
    side = 2 * reach + 1
    norm = box_sum(d_before * d_before, config.n_st) + NORMALIZATION_EPS
    scores = np.empty((side * side,) + d_before.shape, dtype=np.float64)
    displacements = np.empty((side * side, 2), dtype=np.int64)
    k = 0
    for dy in range(-reach, reach + 1):
        for dx in range(-reach, reach + 1):
            diff = shift2d(d_after, dy, dx) - d_before
            scores[k] = box_sum(diff * diff, config.n_st) / norm
            displacements[k] = (dy, dx)
            k += 1
    return ScoreVolume(scores=scores, displacements=displacements, reach=reach)


def semifluid_displacements(
    volume: ScoreVolume, hyp_dy: int, hyp_dx: int, n_ss: int
) -> tuple[np.ndarray, np.ndarray]:
    """Per-pixel semi-fluid displacement for one hypothesis (eq. 9).

    For hypothesis displacement ``(hyp_dy, hyp_dx)``, each pixel's
    mapping is the displacement minimizing theta within the
    ``(2N_ss+1)^2`` window centered on the hypothesis.  Returns integer
    arrays ``(delta_y, delta_x)`` of the *absolute* chosen displacement
    per pixel.  Ties break toward the window center (continuity), then
    raster order -- deterministically, so the sequential and parallel
    paths agree bit-for-bit.
    """
    if n_ss == 0:
        shape = volume.scores.shape[1:]
        return (
            np.full(shape, hyp_dy, dtype=np.int64),
            np.full(shape, hyp_dx, dtype=np.int64),
        )
    indices = []
    for sy in range(-n_ss, n_ss + 1):
        for sx in range(-n_ss, n_ss + 1):
            indices.append(volume.index_of(hyp_dy + sy, hyp_dx + sx))
    sub = volume.scores[indices]  # (win^2, H, W)
    win = 2 * n_ss + 1
    center = (win * win) // 2
    # Visit candidates in (|k - center|, k) order with a strict-less
    # update so exact ties resolve toward the window center (continuity)
    # and then raster order -- identical to semifluid_map_pixel.
    order = sorted(range(win * win), key=lambda k: (abs(k - center), k))
    best_score = np.full(sub.shape[1:], np.inf)
    best_k = np.zeros(sub.shape[1:], dtype=np.int64)
    for k in order:
        better = sub[k] < best_score
        best_score = np.where(better, sub[k], best_score)
        best_k = np.where(better, k, best_k)
    chosen = np.asarray(indices, dtype=np.int64)[best_k]
    delta = volume.displacements[chosen]
    return delta[..., 0], delta[..., 1]


def semifluid_map_pixel(
    d_before: np.ndarray,
    d_after: np.ndarray,
    x_a: int,
    y_a: int,
    base_dy: int,
    base_dx: int,
    config: NeighborhoodConfig,
) -> tuple[int, int]:
    """Reference per-pixel semi-fluid mapping (no precompute).

    Directly evaluates eq. (10)-(11) for one template pixel and returns
    the chosen absolute displacement ``(dy*, dx*)``.  Used to validate
    the dense precompute path.
    """
    n_st, n_ss = config.n_st, config.n_ss
    h, w = d_before.shape
    dyy, dxx = np.meshgrid(
        np.arange(-n_st, n_st + 1), np.arange(-n_st, n_st + 1), indexing="ij"
    )
    py = (y_a + dyy) % h
    px = (x_a + dxx) % w
    ref = d_before[py, px]
    norm = float((ref * ref).sum()) + NORMALIZATION_EPS
    best_score = np.inf
    best = (base_dy, base_dx)
    best_rank = np.inf
    win = 2 * n_ss + 1
    center = (win * win) // 2
    k = 0
    for sy in range(-n_ss, n_ss + 1):
        for sx in range(-n_ss, n_ss + 1):
            qy = (y_a + base_dy + sy + dyy) % h
            qx = (x_a + base_dx + sx + dxx) % w
            cand = d_after[qy, qx]
            score = float(((cand - ref) ** 2).sum()) / norm
            rank = abs(k - center)
            if score < best_score or (score == best_score and rank < best_rank):
                best_score = score
                best = (base_dy + sy, base_dx + sx)
                best_rank = rank
            k += 1
    return best
