"""Quadratic surface-patch fitting and differential geometry (Section 2.2, Step 2).

"Each z(t_m) and z(t_{m+1}) pixel ... is fitted with a continuous
quadratic surface patch centered at that pixel.  Least squares surface
fitting using a surface-patch neighborhood of (2N_w+1) x (2N_w+1)
pixels ... leads to solving a 6 x 6 matrix using the
Gaussian-elimination method.  These quadratic surface patches are then
used to compute the unit normals."

The patch model, in window-centered coordinates (dx, dy):

    z(dx, dy) ~= c0 + c1 dx + c2 dy + c3 dx^2 + c4 dx dy + c5 dy^2

Two equivalent evaluation paths are provided:

* :func:`fit_patches_reference` -- the paper's formulation: one 6x6
  normal-equation system per pixel, solved by (batched) Gaussian
  elimination.  This is the path whose operation counts the cost model
  charges ("4 x 512 x 512 = 1048576 separate Gaussian-eliminations").

* :func:`fit_patches` -- the numerically identical vectorized path:
  because the design matrix is the same for every pixel, the
  least-squares solution is a fixed linear functional of the window
  (a 2-D Savitzky-Golay filter), so each coefficient is one
  correlation of the image with a precomputed kernel.

From the coefficients the local differential geometry falls out
directly: gradients p = z_x = c1 and q = z_y = c2, unit normal
n = (-p, -q, 1)/sqrt(1 + p^2 + q^2), the first-fundamental-form
coefficients E = 1 + p^2 and G = 1 + q^2 named in the paper, and the
second-fundamental-form discriminant D = z_xx z_yy - z_xy^2 =
4 c3 c5 - c4^2 used by the semi-fluid template mapping.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

import numpy as np
from scipy import ndimage

from .linalg import gaussian_eliminate

#: Number of quadratic patch coefficients.
N_COEFFS = 6


@lru_cache(maxsize=32)
def design_matrix(n_w: int) -> np.ndarray:
    """Design matrix Phi of the quadratic fit over a (2N_w+1)^2 window.

    Rows enumerate window offsets in raster order (dy major, dx minor);
    columns are the basis [1, dx, dy, dx^2, dx*dy, dy^2].
    """
    if n_w < 1:
        raise ValueError("surface fitting needs n_w >= 1 (a 3x3 window at minimum)")
    offsets = np.arange(-n_w, n_w + 1)
    dy, dx = np.meshgrid(offsets, offsets, indexing="ij")
    dx = dx.ravel().astype(np.float64)
    dy = dy.ravel().astype(np.float64)
    return np.column_stack([np.ones_like(dx), dx, dy, dx * dx, dx * dy, dy * dy])


@lru_cache(maxsize=32)
def savgol_kernels(n_w: int) -> np.ndarray:
    """Per-coefficient correlation kernels K with shape (6, 2N_w+1, 2N_w+1).

    ``c_k(pixel) = sum_window K[k] * z(window)`` reproduces the
    least-squares solution exactly: K = (Phi^T Phi)^{-1} Phi^T reshaped
    onto the window.
    """
    phi = design_matrix(n_w)
    side = 2 * n_w + 1
    pinv = np.linalg.solve(phi.T @ phi, phi.T)  # (6, side*side)
    return pinv.reshape(N_COEFFS, side, side)


def fit_patches(image: np.ndarray, n_w: int, mode: str = "nearest") -> np.ndarray:
    """Vectorized quadratic patch fit: coefficients with shape (H, W, 6)."""
    image = np.asarray(image, dtype=np.float64)
    if image.ndim != 2:
        raise ValueError(f"image must be 2-D, got shape {image.shape}")
    kernels = savgol_kernels(n_w)
    coeffs = np.empty(image.shape + (N_COEFFS,), dtype=np.float64)
    for k in range(N_COEFFS):
        coeffs[..., k] = ndimage.correlate(image, kernels[k], mode=mode)
    return coeffs


def fit_patches_reference(image: np.ndarray, n_w: int) -> np.ndarray:
    """Per-pixel 6x6 Gaussian-elimination fit (the paper's formulation).

    Edge pixels use the clamped ("nearest") window so the result matches
    :func:`fit_patches` with ``mode="nearest"`` everywhere.  Intended
    for validation and for small inputs; quadratic in window size.
    """
    image = np.asarray(image, dtype=np.float64)
    if image.ndim != 2:
        raise ValueError(f"image must be 2-D, got shape {image.shape}")
    h, w = image.shape
    phi = design_matrix(n_w)
    ata = phi.T @ phi
    padded = np.pad(image, n_w, mode="edge")
    side = 2 * n_w + 1
    coeffs = np.empty((h, w, N_COEFFS), dtype=np.float64)
    systems = np.broadcast_to(ata, (h * w, N_COEFFS, N_COEFFS))
    windows = np.lib.stride_tricks.sliding_window_view(padded, (side, side))
    rhs = windows.reshape(h * w, side * side) @ phi
    solutions, singular = gaussian_eliminate(systems, rhs)
    if singular.any():  # pragma: no cover - Phi^T Phi is fixed and well-conditioned
        raise np.linalg.LinAlgError("surface-fit normal equations reported singular")
    coeffs[...] = solutions.reshape(h, w, N_COEFFS)
    return coeffs


@dataclass(frozen=True)
class SurfaceGeometry:
    """Per-pixel differential geometry of a fitted surface.

    Attributes are all (H, W) float arrays:

    * ``p``, ``q`` -- first derivatives z_x, z_y,
    * ``normal_i/j/k`` -- unit-normal components [n_i, n_j, n_k],
    * ``e``, ``g`` -- first-fundamental-form coefficients E, G,
    * ``discriminant`` -- z_xx z_yy - z_xy^2 (semi-fluid matching field).
    """

    p: np.ndarray
    q: np.ndarray
    normal_i: np.ndarray
    normal_j: np.ndarray
    normal_k: np.ndarray
    e: np.ndarray
    g: np.ndarray
    discriminant: np.ndarray

    @property
    def shape(self) -> tuple[int, int]:
        return self.p.shape

    def normals(self) -> np.ndarray:
        """Stacked unit normals with shape (H, W, 3)."""
        return np.stack([self.normal_i, self.normal_j, self.normal_k], axis=-1)


def geometry_from_coefficients(coeffs: np.ndarray) -> SurfaceGeometry:
    """Derive :class:`SurfaceGeometry` from patch coefficients (H, W, 6)."""
    coeffs = np.asarray(coeffs, dtype=np.float64)
    if coeffs.ndim != 3 or coeffs.shape[-1] != N_COEFFS:
        raise ValueError(f"coefficients must be (H, W, 6), got {coeffs.shape}")
    p = coeffs[..., 1]
    q = coeffs[..., 2]
    norm = np.sqrt(1.0 + p * p + q * q)
    disc = 4.0 * coeffs[..., 3] * coeffs[..., 5] - coeffs[..., 4] ** 2
    return SurfaceGeometry(
        p=p,
        q=q,
        normal_i=-p / norm,
        normal_j=-q / norm,
        normal_k=1.0 / norm,
        e=1.0 + p * p,
        g=1.0 + q * q,
        discriminant=disc,
    )


def fit_surface(image: np.ndarray, n_w: int) -> SurfaceGeometry:
    """Fit quadratic patches at every pixel and return the geometry."""
    return geometry_from_coefficients(fit_patches(image, n_w))


def gaussian_eliminations_required(height: int, width: int, n_images: int = 4) -> int:
    """Surface-fit GE count for the cost model.

    The paper: "Local surface patches are fit for each pixel in both the
    intensity and surface images at both time steps ... so over one
    million (4 x 512 x 512 = 1048576) separate Gaussian-eliminations".
    """
    if height <= 0 or width <= 0 or n_images <= 0:
        raise ValueError("all dimensions must be positive")
    return n_images * height * width
