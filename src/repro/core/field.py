"""Dense motion-field container and wind conversions.

The SMA algorithm's product is a dense per-pixel motion field; the
paper's application converts it to cloud-top **wind** estimates ("cloud
motion vectors from the SMA algorithm can be used to estimate the wind
field") by scaling pixel displacements with the ground sample distance
and the frame interval, and compares against an expert meteorologist's
manual wind barbs (Section 5.1).

:class:`MotionField` bundles the dense estimates with that metadata and
provides the operations the evaluation needs: sampling at tracer
points, wind-speed/direction conversion, sparse subsampling for
visualization ("we show the results only for every 10th pixel"), and
serialization.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

import numpy as np

from ..ioutil import atomic_savez


@dataclass
class MotionField:
    """Dense pixel-displacement field between two frames.

    Attributes
    ----------
    u, v:
        x- and y-displacement per pixel (pixels, frame m -> m+1).
    valid:
        Boolean interior mask (windows fully in-bounds).
    error:
        Winning template error per pixel.
    params:
        Winning motion parameters per pixel, shape (H, W, 6); optional.
    dt_seconds:
        Frame interval (7.5 min for Frederic, ~1 min for GOES-9).
    pixel_km:
        Ground sample distance (about 1 km at the Frederic image
        center).
    """

    u: np.ndarray
    v: np.ndarray
    valid: np.ndarray
    error: np.ndarray
    params: np.ndarray | None = None
    dt_seconds: float = 450.0
    pixel_km: float = 1.0
    metadata: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        shape = self.u.shape
        for name in ("v", "valid", "error"):
            if getattr(self, name).shape != shape:
                raise ValueError(f"{name} shape {getattr(self, name).shape} != u shape {shape}")
        if self.params is not None and self.params.shape[:2] != shape:
            raise ValueError("params leading shape must match u")
        if self.dt_seconds <= 0:
            raise ValueError("dt_seconds must be positive")
        if self.pixel_km <= 0:
            raise ValueError("pixel_km must be positive")

    @property
    def shape(self) -> tuple[int, int]:
        return self.u.shape

    # -- sampling -----------------------------------------------------------------

    def sample(self, points: np.ndarray) -> np.ndarray:
        """Displacements at integer tracer points.

        ``points`` is ``(n, 2)`` as ``(x, y)``; returns ``(n, 2)`` as
        ``(u, v)``.  Points outside the valid mask raise, because the
        paper only compares tracked (interior) pixels.
        """
        pts = np.asarray(points, dtype=np.int64)
        if pts.ndim != 2 or pts.shape[1] != 2:
            raise ValueError("points must be (n, 2) as (x, y)")
        x, y = pts[:, 0], pts[:, 1]
        h, w = self.shape
        if (x < 0).any() or (x >= w).any() or (y < 0).any() or (y >= h).any():
            raise ValueError("tracer point outside the image")
        if not self.valid[y, x].all():
            bad = int((~self.valid[y, x]).sum())
            raise ValueError(f"{bad} tracer point(s) fall in the invalid border margin")
        return np.stack([self.u[y, x], self.v[y, x]], axis=-1)

    # -- wind conversion -----------------------------------------------------------

    def wind_speed(self) -> np.ndarray:
        """Wind speed in m/s per pixel."""
        meters = np.hypot(self.u, self.v) * self.pixel_km * 1000.0
        return meters / self.dt_seconds

    def wind_direction_deg(self) -> np.ndarray:
        """Meteorological wind direction (degrees, direction wind blows FROM).

        0 = from north, 90 = from east; image +y is south.

        **Calm convention**: a pixel with zero displacement has no
        direction of travel -- ``arctan2(0, 0)`` would fabricate a
        "from-south" 180 degrees -- so calm pixels report NaN.  Callers
        aggregating directions (e.g. circular means) must filter NaN.
        """
        # Motion vector (u, v) in image coords: +u east, +v south.
        east = self.u
        north = -self.v
        to_deg = np.degrees(np.arctan2(east, north))  # direction of travel
        direction = (to_deg + 180.0) % 360.0
        return np.where((east == 0.0) & (north == 0.0), np.nan, direction)

    def wind_vectors(self, points: np.ndarray) -> np.ndarray:
        """(speed m/s, direction deg) at tracer points, shape (n, 2).

        Calm points (zero displacement) report speed 0 and direction
        NaN -- see :meth:`wind_direction_deg` for the convention.
        """
        disp = self.sample(points)
        meters = np.hypot(disp[:, 0], disp[:, 1]) * self.pixel_km * 1000.0
        speed = meters / self.dt_seconds
        east = disp[:, 0]
        north = -disp[:, 1]
        direction = (np.degrees(np.arctan2(east, north)) + 180.0) % 360.0
        direction = np.where((east == 0.0) & (north == 0.0), np.nan, direction)
        return np.stack([speed, direction], axis=-1)

    # -- statistics ---------------------------------------------------------------

    def rmse_against(self, reference_u: np.ndarray, reference_v: np.ndarray) -> float:
        """Root-mean-squared endpoint error (pixels) over the valid mask."""
        if reference_u.shape != self.shape or reference_v.shape != self.shape:
            raise ValueError("reference field shape mismatch")
        du = (self.u - reference_u)[self.valid]
        dv = (self.v - reference_v)[self.valid]
        if du.size == 0:
            raise ValueError("no valid pixels to compare")
        return float(np.sqrt(np.mean(du * du + dv * dv)))

    def mean_displacement(self) -> tuple[float, float]:
        """Mean (u, v) over the valid mask."""
        if not self.valid.any():
            raise ValueError("no valid pixels")
        return float(self.u[self.valid].mean()), float(self.v[self.valid].mean())

    # -- visualization & serialization ----------------------------------------------

    def subsample(self, stride: int = 10, mask: np.ndarray | None = None):
        """Sparse vectors for display, one per ``stride`` pixels.

        Mirrors the paper's Fig. 6 presentation ("results only for every
        10th pixel and over cloudy regions").  ``mask`` restricts to a
        region of interest (e.g. cloudy pixels).  Returns ``(points,
        vectors)`` arrays of shape (n, 2).
        """
        if stride < 1:
            raise ValueError("stride must be >= 1")
        keep = self.valid.copy()
        if mask is not None:
            if mask.shape != self.shape:
                raise ValueError("mask shape mismatch")
            keep &= mask.astype(bool)
        ys, xs = np.nonzero(keep)
        sel = (ys % stride == 0) & (xs % stride == 0)
        ys, xs = ys[sel], xs[sel]
        points = np.stack([xs, ys], axis=-1)
        vectors = np.stack([self.u[ys, xs], self.v[ys, xs]], axis=-1)
        return points, vectors

    def save(self, path: str) -> None:
        """Serialize to a compressed .npz archive.

        The write is atomic (temp file in the target directory, then
        rename), so an interrupted save never leaves a truncated field
        where a previous good one was.
        """
        arrays = {
            "u": self.u,
            "v": self.v,
            "valid": self.valid,
            "error": self.error,
            "dt_seconds": np.float64(self.dt_seconds),
            "pixel_km": np.float64(self.pixel_km),
        }
        if self.params is not None:
            arrays["params"] = self.params
        if self.metadata:
            arrays["metadata_json"] = np.array(json.dumps(self.metadata))
        atomic_savez(path, **arrays)

    @classmethod
    def load(cls, path: str) -> "MotionField":
        """Inverse of :meth:`save`."""
        with np.load(path) as data:
            return cls(
                u=data["u"],
                v=data["v"],
                valid=data["valid"].astype(bool),
                error=data["error"],
                params=data["params"] if "params" in data else None,
                dt_seconds=float(data["dt_seconds"]),
                pixel_km=float(data["pixel_km"]),
                metadata=(
                    json.loads(str(data["metadata_json"]))
                    if "metadata_json" in data
                    else {}
                ),
            )
