"""Template-mapping segmentation by hypothesis rows (Sections 4.1 / 4.3).

"The template mapping data cannot be segmented [by pixel layer], since
each segment would correspond to multiple layers within a PE of data
pixels being tracked ...  Instead the key observation is that the
template mapping data can be segmented by hypothesis or search area.
The data chunks or segments are in multiples of rows of the search or
hypothesis neighborhood with each row containing (2N_zs + 1) template
mappings.  Each segment can be independently computed and processed
...  The segment can then be discarded and next chunk computed ...
Once all the segments are processed, the equivalent minimization of
(7) is complete."

:func:`iter_segments` yields the hypothesis displacements of each
Z-row chunk; :class:`SegmentedSearch` drives the full minimization
over a chunked search area while charging each segment's
template-mapping store to a :class:`~repro.maspar.memory.PEMemoryTracker`
-- so an infeasible segment size fails with the same
:class:`~repro.maspar.memory.PEMemoryError` the real machine's 64 KB
would force, and the result is provably independent of the chunking
(tested against the unsegmented search).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterator

import numpy as np

from ..maspar.memory import PEMemoryTracker
from ..params import NeighborhoodConfig
from .memory_plan import FLOAT_BYTES, FLOATS_PER_MAPPING


def iter_segments(
    config: NeighborhoodConfig, segment_rows: int
) -> Iterator[list[tuple[int, int]]]:
    """Yield hypothesis displacements (dy, dx) in Z-row chunks.

    Rows run over dy = -N_zs .. N_zs; each chunk covers up to
    ``segment_rows`` consecutive rows, every row containing the full
    ``(2N_zs + 1)`` dx sweep.
    """
    side = config.search_window
    if not 1 <= segment_rows <= side:
        raise ValueError(f"segment rows must be in [1, {side}]")
    n = config.n_zs
    row = -n
    while row <= n:
        chunk: list[tuple[int, int]] = []
        for dy in range(row, min(row + segment_rows, n + 1)):
            for dx in range(-n, n + 1):
                chunk.append((dy, dx))
        yield chunk
        row += segment_rows


@dataclass
class SegmentResult:
    """Best-so-far state across processed segments."""

    error: np.ndarray
    u: np.ndarray
    v: np.ndarray
    params: np.ndarray
    segments_processed: int = 0
    mappings_computed: int = 0


class SegmentedSearch:
    """Chunked minimization of eq. (7) over the hypothesis area.

    Parameters
    ----------
    config:
        Neighborhood configuration (defines the search area).
    evaluate:
        Callback ``evaluate(dy, dx) -> (error, params, u, v)`` returning,
        for one hypothesis displacement, dense per-pixel arrays: the
        template error, the motion parameters ``(H, W, 6)`` and the
        per-pixel correspondence displacement fields (which differ from
        the constant hypothesis under the semi-fluid mapping).
    memory:
        Optional PE-memory ledger; each segment's template-mapping
        store is allocated for the duration of the segment and freed
        afterwards -- exactly the lifetime the paper engineered.
    layers:
        Resident pixels per PE (sizes the segment allocation).
    """

    def __init__(
        self,
        config: NeighborhoodConfig,
        evaluate: Callable[[int, int], tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]],
        memory: PEMemoryTracker | None = None,
        layers: int = 1,
    ) -> None:
        if layers < 1:
            raise ValueError("layers must be >= 1")
        self.config = config
        self.evaluate = evaluate
        self.memory = memory
        self.layers = layers

    def _segment_bytes(self, n_rows: int) -> int:
        side = self.config.search_window
        per_mapping = FLOATS_PER_MAPPING * FLOAT_BYTES
        # mappings + the per-hypothesis error terms of the segment
        return n_rows * side * (per_mapping + FLOAT_BYTES) * self.layers

    def run(self, shape: tuple[int, int], segment_rows: int) -> SegmentResult:
        """Process all segments; returns the global best state.

        The update rule matches :func:`repro.core.matching.track_dense`'s
        ordering semantics only when segments are processed with the
        same tie-break; to keep segmentation *provably* order
        independent, ties here are broken by (Chebyshev magnitude,
        dy, dx) of the hypothesis regardless of chunk order.
        """
        state = SegmentResult(
            error=np.full(shape, np.inf),
            u=np.zeros(shape, dtype=np.float64),
            v=np.zeros(shape, dtype=np.float64),
            params=np.zeros(shape + (6,), dtype=np.float64),
        )
        rank = np.full(shape + (3,), np.inf)
        for chunk in iter_segments(self.config, segment_rows):
            rows_in_chunk = len({dy for dy, _ in chunk})
            handle = None
            if self.memory is not None:
                handle = self.memory.allocate(
                    self._segment_bytes(rows_in_chunk), name="template-mapping-segment"
                )
            try:
                for dy, dx in chunk:
                    error, params, u_field, v_field = self.evaluate(dy, dx)
                    hyp_rank = np.array(
                        [max(abs(dy), abs(dx)), dy, dx], dtype=np.float64
                    )
                    better = error < state.error
                    tie = error == state.error
                    if tie.any():
                        # lexicographic rank comparison on exact ties
                        r = rank
                        lex = (
                            (hyp_rank[0] < r[..., 0])
                            | ((hyp_rank[0] == r[..., 0]) & (hyp_rank[1] < r[..., 1]))
                            | (
                                (hyp_rank[0] == r[..., 0])
                                & (hyp_rank[1] == r[..., 1])
                                & (hyp_rank[2] < r[..., 2])
                            )
                        )
                        better = better | (tie & lex)
                    state.error = np.where(better, error, state.error)
                    state.u = np.where(better, u_field, state.u)
                    state.v = np.where(better, v_field, state.v)
                    state.params = np.where(better[..., None], params, state.params)
                    rank = np.where(better[..., None], hyp_rank, rank)
                    state.mappings_computed += 1
            finally:
                if handle is not None:
                    self.memory.free(handle)
            state.segments_processed += 1
        return state
