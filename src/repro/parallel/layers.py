"""Memory-layer scheduling (Section 4, opening).

"The parallel implementation was designed to track all pixels in the
mem-th memory layer in parallel and then repeat the process for each
layer."  Under the 2-D hierarchical mapping, memory layer ``mem``
holds one pixel per PE -- the pixel at in-block position
``(mem div xvr, mem mod xvr)`` of every PE's block -- so a layer is an
``(nyproc, nxproc)`` plane that strides through the image.

These utilities expose that schedule: extracting the per-layer plane
from an image, writing a computed plane back, and iterating a whole
image layer by layer.  They are the bridge between whole-image results
(what the vectorized matcher produces) and the per-layer execution
order (what the machine actually runs and the cost model reasons
about), and the round-trip identities are property-tested.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from ..maspar.mapping import HierarchicalMapping


def layer_plane(image: np.ndarray, mapping: HierarchicalMapping, mem: int) -> np.ndarray:
    """The (nyproc, nxproc) plane of pixels living in memory layer ``mem``."""
    if not 0 <= mem < mapping.layers:
        raise ValueError(f"layer {mem} out of range [0, {mapping.layers})")
    image = np.asarray(image)
    if image.shape[:2] != (mapping.height, mapping.width):
        raise ValueError("image does not match mapping geometry")
    by, bx = mem // mapping.xvr, mem % mapping.xvr
    return image[by :: mapping.yvr, bx :: mapping.xvr].copy()


def set_layer_plane(
    image: np.ndarray, mapping: HierarchicalMapping, mem: int, plane: np.ndarray
) -> None:
    """Write a computed per-layer plane back into the image (in place)."""
    if not 0 <= mem < mapping.layers:
        raise ValueError(f"layer {mem} out of range [0, {mapping.layers})")
    plane = np.asarray(plane)
    if plane.shape[:2] != (mapping.nyproc, mapping.nxproc):
        raise ValueError(
            f"plane shape {plane.shape[:2]} does not match the PE grid "
            f"({mapping.nyproc}, {mapping.nxproc})"
        )
    by, bx = mem // mapping.xvr, mem % mapping.xvr
    image[by :: mapping.yvr, bx :: mapping.xvr] = plane


def iter_layers(
    image: np.ndarray, mapping: HierarchicalMapping
) -> Iterator[tuple[int, np.ndarray]]:
    """Yield ``(mem, plane)`` in the machine's execution order."""
    for mem in range(mapping.layers):
        yield mem, layer_plane(image, mapping, mem)


def layer_pixel_coordinates(
    mapping: HierarchicalMapping, mem: int
) -> tuple[np.ndarray, np.ndarray]:
    """Image coordinates (x, y) of every PE's layer-``mem`` pixel.

    Returns (nyproc, nxproc) integer arrays -- the inverse-mapping
    (eq. 13) evaluated for the whole grid at fixed ``mem``.
    """
    if not 0 <= mem < mapping.layers:
        raise ValueError(f"layer {mem} out of range [0, {mapping.layers})")
    iy, ix = np.meshgrid(
        np.arange(mapping.nyproc), np.arange(mapping.nxproc), indexing="ij"
    )
    x, y = mapping.to_pixel(iy, ix, np.full_like(iy, mem))
    return x, y


def assemble_from_layers(
    planes: list[np.ndarray], mapping: HierarchicalMapping
) -> np.ndarray:
    """Rebuild a full image from its per-layer planes (inverse of iteration)."""
    if len(planes) != mapping.layers:
        raise ValueError(f"expected {mapping.layers} planes, got {len(planes)}")
    sample = np.asarray(planes[0])
    image = np.empty(
        (mapping.height, mapping.width) + sample.shape[2:], dtype=sample.dtype
    )
    for mem, plane in enumerate(planes):
        set_layer_plane(image, mapping, mem, np.asarray(plane))
    return image
