"""The paper's parallelization of the SMA algorithm (Section 4).

Layer-by-layer scheduling (:mod:`.layers`), template-mapping
segmentation under the 64 KB PE-memory constraint (:mod:`.segmentation`,
:mod:`.memory_plan`), the full parallel driver producing Table 2/4
style timing breakdowns (:mod:`.parallel_sma`), and the prior-art
parallel Horn-Schunck baseline (:mod:`.parallel_hs`).
"""

from .layers import (
    assemble_from_layers,
    iter_layers,
    layer_pixel_coordinates,
    layer_plane,
    set_layer_plane,
)
from .memory_plan import (
    FLOAT_BYTES,
    FLOATS_PER_MAPPING,
    SCRATCH_BYTES,
    MemoryPlan,
    max_feasible_segment_rows,
    plan,
    segments_for,
    template_mapping_bytes,
)
from .parallel_asa import (
    PHASE_CORRELATION,
    PHASE_PYRAMID,
    PHASE_WARP,
    ParallelASA,
    ParallelASAResult,
)
from .parallel_hs import ParallelHSResult, parallel_horn_schunck
from .plural_sma import PluralSMAResult, plural_track_continuous
from .parallel_sma import (
    PHASE_GEOMETRY,
    PHASE_MATCHING,
    PHASE_SEMIFLUID,
    PHASE_SURFACE_FIT,
    ParallelResult,
    ParallelSMA,
    machine_for_image,
)
from .segmentation import SegmentedSearch, SegmentResult, iter_segments

__all__ = [
    "assemble_from_layers",
    "iter_layers",
    "layer_pixel_coordinates",
    "layer_plane",
    "set_layer_plane",
    "FLOAT_BYTES",
    "FLOATS_PER_MAPPING",
    "SCRATCH_BYTES",
    "MemoryPlan",
    "max_feasible_segment_rows",
    "plan",
    "segments_for",
    "template_mapping_bytes",
    "PHASE_CORRELATION",
    "PHASE_PYRAMID",
    "PHASE_WARP",
    "ParallelASA",
    "ParallelASAResult",
    "ParallelHSResult",
    "parallel_horn_schunck",
    "PHASE_GEOMETRY",
    "PHASE_MATCHING",
    "PHASE_SEMIFLUID",
    "PHASE_SURFACE_FIT",
    "ParallelResult",
    "ParallelSMA",
    "PluralSMAResult",
    "plural_track_continuous",
    "machine_for_image",
    "SegmentedSearch",
    "SegmentResult",
    "iter_segments",
]
