"""The SMA inner loop written as a genuine plural (MPL-style) program.

:class:`~repro.parallel.parallel_sma.ParallelSMA` reproduces the
paper's *results and cost structure* by charging analytic operation
counts around shared numerics.  This module goes one level deeper for
the continuous model: the whole tracking loop is expressed in the
simulator's plural vocabulary -- one pixel per PE, neighborhoods
fetched with real X-net walks (:func:`repro.maspar.xnet.fetch_neighborhood`),
per-PE 6x6 systems solved in lockstep, and the winner selection done
with masked plural assignment under ``pe.where`` -- exactly how the MPL
source of the 1996 implementation was structured.

It is deliberately restricted to the configuration class the
one-pixel-per-PE mapping supports (image shape == PE grid, continuous
model) and is quadratically slower than the production matcher; its
role is validation and pedagogy: the produced fields match
:func:`repro.core.matching.track_dense` exactly on the valid interior
(tested), demonstrating that the vectorized implementation and the
machine-level program are the same algorithm.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.continuous import N_FIELDS, pointwise_fields, unpack_fields
from ..core.linalg import gaussian_eliminate
from ..core.matching import hypothesis_order, valid_mask
from ..core.surface import savgol_kernels
from ..maspar.cost import CostLedger
from ..maspar.machine import MachineConfig, scaled_machine
from ..maspar.pe_array import PEArray, Plural
from ..maspar.xnet import fetch_neighborhood, xnet_shift
from ..params import NeighborhoodConfig


@dataclass(frozen=True)
class PluralSMAResult:
    """Plural-program output plus its cost ledger."""

    u: np.ndarray
    v: np.ndarray
    error: np.ndarray
    valid: np.ndarray
    ledger: CostLedger


def _plural_surface_gradients(
    pe: PEArray, image: Plural, n_w: int
) -> tuple[np.ndarray, np.ndarray]:
    """Per-PE quadratic-patch gradients via a real neighborhood fetch.

    The window arrives through ``(2n_w+1)^2 - 1`` X-net shifts; each PE
    then applies the shared least-squares kernels (the 6x6 solve is
    factored into the precomputed kernels, identically on every PE --
    the SIMD way to run a million identical Gaussian eliminations).
    """
    windows = fetch_neighborhood(pe, image, n_w)  # (side, side, ny, nx)
    kernels = savgol_kernels(n_w)  # (6, side, side)
    side = 2 * n_w + 1
    pe.ledger.charge_flops(2 * side * side * windows[0, 0].size)
    p = np.einsum("yx,yxij->ij", kernels[1], windows)
    q = np.einsum("yx,yxij->ij", kernels[2], windows)
    return p, q


def plural_track_continuous(
    frame_before: np.ndarray,
    frame_after: np.ndarray,
    config: NeighborhoodConfig,
    machine: MachineConfig | None = None,
    ridge: float = 1e-9,
) -> PluralSMAResult:
    """Track a frame pair with the plural-program formulation.

    Requirements: ``config.n_ss == 0`` (continuous model) and the image
    shape equal to the PE grid (use
    :func:`repro.maspar.machine.scaled_machine` to fit).
    """
    if config.is_semifluid:
        raise ValueError("the plural program implements the continuous model (n_ss = 0)")
    f0 = np.asarray(frame_before, dtype=np.float64)
    f1 = np.asarray(frame_after, dtype=np.float64)
    if f0.shape != f1.shape:
        raise ValueError("frames must share a shape")
    if machine is None:
        machine = scaled_machine(*f0.shape)
    if f0.shape != (machine.nyproc, machine.nxproc):
        raise ValueError(
            f"image {f0.shape} must equal the PE grid "
            f"({machine.nyproc}, {machine.nxproc}) for the one-pixel-per-PE program"
        )

    pe = PEArray(machine)
    ledger = pe.ledger

    with ledger.phase("Surface fit"):
        z0 = pe.from_array(f0, name="z(t)")
        z1 = pe.from_array(f1, name="z(t+1)")
        p_b, q_b = _plural_surface_gradients(pe, z0, config.n_w)
        p_a, q_a = _plural_surface_gradients(pe, z1, config.n_w)

    with ledger.phase("Compute geometric variables"):
        e_b = 1.0 + p_b * p_b
        g_b = 1.0 + q_b * q_b
        ledger.charge_flops(4 * p_b.size)
        p_after = pe.from_array(p_a, name="p'")
        q_after = pe.from_array(q_a, name="q'")

    shape = f0.shape
    best_error = pe.full(np.inf, name="best error")
    best_u = pe.zeros(name="best u")
    best_v = pe.zeros(name="best v")

    with ledger.phase("Hypothesis matching"):
        for hyp_dy, hyp_dx in hypothesis_order(config.n_zs):
            with pe.scope():
                # fetch the after-motion gradients at the hypothesis via
                # the mesh (a (dy, dx) X-net walk of both planes)
                p_hyp = xnet_shift(p_after, -hyp_dy, -hyp_dx)
                q_hyp = xnet_shift(q_after, -hyp_dy, -hyp_dx)
                fields = pointwise_fields(
                    p_b, q_b, p_hyp.data, q_hyp.data, e_b, g_b
                )  # (ny, nx, 28)
                ledger.charge_flops(fields.size * 3.0)
                # template accumulation: every field plane walks the
                # z-template window over the mesh
                acc = np.empty_like(fields)
                field_plural = pe.from_array(fields[..., 0], name="field plane")
                for k in range(N_FIELDS):
                    field_plural.data[...] = fields[..., k]
                    windows = fetch_neighborhood(pe, field_plural, config.n_zt)
                    acc[..., k] = windows.sum(axis=(0, 1))
                ledger.charge_flops(acc.size * (2 * config.n_zt + 1) ** 2)
                # per-PE 6x6 Gaussian elimination, in lockstep
                h_mat, grad, c = unpack_fields(acc)
                h_mat = h_mat + ridge * np.eye(6)
                theta, singular = gaussian_eliminate(h_mat, -grad)
                theta = np.where(singular[..., None], 0.0, theta)
                ledger.charge_gaussian_elimination(shape[0] * shape[1], order=6)
                error = np.maximum(
                    c + np.einsum("...k,...k->...", theta, grad), 0.0
                )
                err_plural = pe.from_array(error, name="hypothesis error")
                # masked winner update -- MPL `if (err < best)` semantics
                with pe.where(err_plural.data < best_error.data):
                    pe.assign(best_error, err_plural)
                    pe.assign(best_u, float(hyp_dx))
                    pe.assign(best_v, float(hyp_dy))

    return PluralSMAResult(
        u=best_u.data.copy(),
        v=best_v.data.copy(),
        error=best_error.data.copy(),
        valid=valid_mask(shape, config),
        ledger=ledger,
    )
