"""Parallel Horn-Schunck on the SIMD simulator (the paper's ref. [2]).

Branca, Distante & Ellingworth parallelized Horn & Schunck on the same
MasPar MP-2 (IPPS 1995); the paper cites it as the prior state of the
parallel-motion-estimation art.  This module reproduces that baseline
*on the simulator's plural data path*: the Jacobi iteration's
neighborhood average is computed with genuine X-net shifts over the PE
array (one layer per PE -- the natural mapping when the image matches
the PE grid, or the hierarchical mapping's gather/scatter otherwise),
and every operation lands on the cost ledger.

Unlike :class:`repro.parallel.parallel_sma.ParallelSMA`, which charges
analytic counts for its heavy inner loops, the Horn-Schunck iteration
is cheap enough to execute *operation-by-operation* through
:class:`~repro.maspar.pe_array.PEArray`, making this the simulator's
end-to-end workout: results match the sequential
:func:`repro.analysis.baselines.horn_schunck` to machine precision.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..analysis.baselines import hs_derivatives
from ..maspar.cost import CostLedger
from ..maspar.machine import MachineConfig, scaled_machine
from ..maspar.pe_array import PEArray, Plural
from ..maspar.xnet import xnet_shift


@dataclass(frozen=True)
class ParallelHSResult:
    """Flow field plus the machine-model cost of producing it."""

    u: np.ndarray
    v: np.ndarray
    iterations: int
    ledger: CostLedger


def _plural_average(pe: PEArray, plural: Plural) -> Plural:
    """Horn-Schunck neighborhood average via eight X-net shifts.

    ``u_bar = (N+S+E+W)/6 + (NE+NW+SE+SW)/12`` -- each term one unit
    mesh shift, matching the kernel of the sequential implementation
    (interior pixels; the border uses the toroidal wrap and is trimmed
    by the caller's comparison mask).
    """
    axial = None
    for dy, dx in ((-1, 0), (1, 0), (0, -1), (0, 1)):
        shifted = xnet_shift(plural, dy, dx)
        axial = shifted if axial is None else axial + shifted
    diagonal = None
    for dy, dx in ((-1, -1), (-1, 1), (1, -1), (1, 1)):
        shifted = xnet_shift(plural, dy, dx)
        diagonal = shifted if diagonal is None else diagonal + shifted
    assert axial is not None and diagonal is not None
    return axial * (1.0 / 6.0) + diagonal * (1.0 / 12.0)


def parallel_horn_schunck(
    frame0: np.ndarray,
    frame1: np.ndarray,
    machine: MachineConfig | None = None,
    alpha: float = 1.0,
    iterations: int = 100,
    tolerance: float = 0.0,
) -> ParallelHSResult:
    """Horn-Schunck executed on the PE array, one pixel per PE.

    The image shape must match the machine's PE grid (use
    :func:`repro.maspar.machine.scaled_machine` to fit); derivative
    stencils are computed up front (they are data-independent of the
    iteration) and the Jacobi loop runs entirely in plural operations.
    ``tolerance`` enables the same mean-update early exit as the
    sequential baseline (0 disables), bounding the cost when the flow
    converges quickly -- the regime the reliability subsystem's
    degraded mode relies on.
    """
    f0 = np.asarray(frame0, dtype=np.float64)
    f1 = np.asarray(frame1, dtype=np.float64)
    if f0.shape != f1.shape:
        raise ValueError("frames must share a shape")
    if alpha <= 0:
        raise ValueError("alpha must be positive")
    if iterations < 1:
        raise ValueError("iterations must be >= 1")
    if tolerance < 0:
        raise ValueError("tolerance must be >= 0")
    if machine is None:
        machine = scaled_machine(*f0.shape)
    if f0.shape != (machine.nyproc, machine.nxproc):
        raise ValueError(
            f"image {f0.shape} must match the PE grid "
            f"({machine.nyproc}, {machine.nxproc}) for the one-pixel-per-PE mapping"
        )

    pe = PEArray(machine)
    ledger = pe.ledger
    with ledger.phase("derivatives"):
        ex_arr, ey_arr, et_arr = hs_derivatives(f0, f1)
        denom_arr = alpha * alpha + ex_arr * ex_arr + ey_arr * ey_arr
        ledger.charge_flops(f0.size * 30.0)

    ex = pe.from_array(ex_arr, name="Ex")
    ey = pe.from_array(ey_arr, name="Ey")
    et = pe.from_array(et_arr, name="Et")
    inv_denom = pe.from_array(1.0 / denom_arr, name="1/denom")
    u = pe.zeros(name="u")
    v = pe.zeros(name="v")

    done = 0
    with ledger.phase("jacobi iteration"):
        for done in range(1, iterations + 1):
            with pe.scope():
                u_bar = _plural_average(pe, u)
                v_bar = _plural_average(pe, v)
                common = (ex * u_bar + ey * v_bar + et) * inv_denom
                new_u = u_bar - ex * common
                new_v = v_bar - ey * common
                delta = float(
                    np.mean(np.hypot(new_u.data - u.data, new_v.data - v.data))
                )
                pe.assign(u, new_u)
                pe.assign(v, new_v)
            if tolerance > 0 and delta < tolerance:
                break

    return ParallelHSResult(
        u=u.data.copy(), v=v.data.copy(), iterations=done, ledger=ledger
    )
