"""PE memory requirement of the parallel SMA algorithm (Section 4.3).

"One of the bottlenecks while designing the parallel implementation was
the memory constraint of 64 KB per PE."  The dominant consumer is the
pre-computed template-mapping store of Section 4.1: for every resident
pixel, every hypothesis in the search area needs its template mapping
kept.  The paper's key sizing example: "even storing just two floating
point numbers for each precomputed template mapping for a relatively
small search area of 23 x 23 and with 16 pixel elements stored per PE
would still require 67.7 KB per PE which exceeds the available" memory
-- i.e. ``23^2 * 2 floats * 4 B * 16 layers = 67,712 B = 67.7 KB``
(decimal), which :func:`template_mapping_bytes` reproduces exactly.

The fix is segmentation "by hypothesis or search area": segments of
``Z`` rows of the hypothesis neighborhood, each row holding
``(2N_zs + 1)`` template mappings, computed, consumed and discarded in
turn.  :func:`sma_bytes_per_pe` gives the full per-PE budget for a
segment size ``Z`` and :func:`max_feasible_segment_rows` the largest
``Z`` that fits -- the quantity that decides between the unsegmented
fast path (Table 2 was run with ``Z = 2N_zs + 1``) and chunked
execution.

The published formula is OCR-corrupted in our source; the budget below
is rebuilt from the stated inventory (images and surfaces, geometric
variables, the two-float template-mapping store, per-segment error
terms, running best-correspondence state, and a fixed scratch area of
288 bytes, the constant that survives in the paper's formula).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..maspar.machine import MachineConfig
from ..params import NeighborhoodConfig

#: Bytes per floating-point value (the MP-2 implementation used singles).
FLOAT_BYTES = 4

#: Floats stored per precomputed template mapping: the paper notes the
#: minimization of eq. (3) depends only on (n'_i + n'_j) and n'_k.
FLOATS_PER_MAPPING = 2

#: Fixed per-PE scratch (registers spill, accumulation matrices, loop
#: state) -- the additive constant of the paper's formula.
SCRATCH_BYTES = 288


def template_mapping_bytes(
    search_half_width: int, layers: int, rows: int | None = None
) -> int:
    """Bytes/PE of the precomputed template-mapping store.

    ``rows`` is the segment size ``Z`` in hypothesis rows; ``None``
    means unsegmented (all ``2N_zs + 1`` rows resident).  Each row
    holds ``(2N_zs + 1)`` mappings of two floats for each of the
    ``layers`` resident pixels.
    """
    if search_half_width < 0 or layers < 1:
        raise ValueError("invalid geometry")
    side = 2 * search_half_width + 1
    z = side if rows is None else rows
    if not 1 <= z <= side:
        raise ValueError(f"segment rows must be in [1, {side}], got {z}")
    return z * side * FLOATS_PER_MAPPING * FLOAT_BYTES * layers


@dataclass(frozen=True)
class MemoryPlan:
    """Complete per-PE budget of one parallel SMA run."""

    config: NeighborhoodConfig
    layers: int
    segment_rows: int
    image_bytes: int
    geometry_bytes: int
    template_mapping_store_bytes: int
    error_bytes: int
    best_state_bytes: int
    scratch_bytes: int

    @property
    def total_bytes(self) -> int:
        return (
            self.image_bytes
            + self.geometry_bytes
            + self.template_mapping_store_bytes
            + self.error_bytes
            + self.best_state_bytes
            + self.scratch_bytes
        )

    def fits(self, capacity_bytes: int) -> bool:
        return self.total_bytes <= capacity_bytes

    def rows(self) -> list[tuple[str, int]]:
        """Budget as (component, bytes/PE) rows for reporting."""
        return [
            ("images & surfaces", self.image_bytes),
            ("geometric variables", self.geometry_bytes),
            ("template-mapping store", self.template_mapping_store_bytes),
            ("segment error terms", self.error_bytes),
            ("best-correspondence state", self.best_state_bytes),
            ("scratch", self.scratch_bytes),
        ]


def plan(
    config: NeighborhoodConfig, layers: int, segment_rows: int | None = None
) -> MemoryPlan:
    """Build the per-PE memory budget for a segment size.

    Inventory (all per resident pixel, i.e. times ``layers``):

    * images & surfaces: I(t_m), I(t_m+1), z(t_m), z(t_m+1) -- 4 floats,
    * geometric variables: before-motion p, q, E, G; after-motion
      (n'_i + n'_j), n'_k; intensity discriminants D, D' -- 8 floats,
    * template-mapping store: Z rows x (2N_zs+1) mappings x 2 floats,
    * segment error terms: Z x (2N_zs+1) running eq.-(3) errors,
    * best state: best error, displacement (2), six parameters -- 9
      floats,
    * fixed scratch: 288 B.
    """
    side = config.search_window
    z = side if segment_rows is None else segment_rows
    if not 1 <= z <= side:
        raise ValueError(f"segment rows must be in [1, {side}], got {z}")
    if layers < 1:
        raise ValueError("layers must be >= 1")
    return MemoryPlan(
        config=config,
        layers=layers,
        segment_rows=z,
        image_bytes=4 * FLOAT_BYTES * layers,
        geometry_bytes=8 * FLOAT_BYTES * layers,
        template_mapping_store_bytes=template_mapping_bytes(config.n_zs, layers, z),
        error_bytes=z * side * FLOAT_BYTES * layers,
        best_state_bytes=9 * FLOAT_BYTES * layers,
        scratch_bytes=SCRATCH_BYTES,
    )


def max_feasible_segment_rows(
    config: NeighborhoodConfig, layers: int, machine: MachineConfig
) -> int:
    """Largest segment size Z whose budget fits the PE memory.

    Returns 0 when even ``Z = 1`` does not fit (the image must then be
    folded onto more PEs or streamed from the disk array).
    """
    for z in range(config.search_window, 0, -1):
        if plan(config, layers, z).fits(machine.pe_memory_bytes):
            return z
    return 0


def segments_for(config: NeighborhoodConfig, segment_rows: int) -> int:
    """Number of segments needed to cover the whole search area."""
    side = config.search_window
    if not 1 <= segment_rows <= side:
        raise ValueError(f"segment rows must be in [1, {side}]")
    return -(-side // segment_rows)
