"""Process-pool sharding of a sequence's independent frame pairs.

The pairwise estimates of a T-frame sequence are mutually independent --
pair ``m`` reads frames ``m`` and ``m+1`` and nothing else -- so they
shard perfectly.  This module is the multi-core analogue of the paper's
observation that the MasPar keeps all PEs busy because every pixel (and
every pair) runs the same schedule on private data.

Workers are plain ``multiprocessing`` pool processes.  Each worker holds
its own :class:`~repro.core.prep.FramePreparationCache`, so a worker that
receives adjacent pairs still fits shared frames once.  Because the
per-pair computation is a pure function of the two frames, the pool
returns fields bit-identical to the sequential path, in pair order,
regardless of worker count or scheduling.

Top-level functions only: pool workers import this module by name, so
the task callables must be picklable module attributes.
"""

from __future__ import annotations

import multiprocessing
import time
from typing import TYPE_CHECKING, Sequence

from ..obs import absorb_payload, worker_init, worker_payload
from ..obs.tracing import TRACER

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.field import MotionField
    from ..core.sma import Frame, SMAnalyzer

#: Per-worker state, populated by the pool initializer.
_WORKER_STATE: dict = {}


def _pool_context() -> multiprocessing.context.BaseContext:
    """Prefer fork (cheap, inherits the loaded native kernel) when present."""
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context("fork" if "fork" in methods else None)


def _init_pair_worker(
    config,
    pixel_km: float,
    ridge: float,
    tracing: bool = False,
    search: str = "exhaustive",
    backend: str = "auto",
) -> None:
    from ..core.prep import FramePreparationCache
    from ..core.sma import SMAnalyzer

    worker_init(tracing)
    _WORKER_STATE["analyzer"] = SMAnalyzer(
        config, pixel_km=pixel_km, ridge=ridge, search=search, backend=backend
    )
    _WORKER_STATE["cache"] = FramePreparationCache(max_frames=4)


def _track_pair_task(task: tuple) -> tuple:
    index, before, after = task
    with TRACER.span("pair", pair=index):
        field = _WORKER_STATE["analyzer"].track_pair(
            before, after, cache=_WORKER_STATE["cache"]
        )
    return index, field, worker_payload()


def track_pairs_in_pool(
    analyzer: "SMAnalyzer", frame_list: Sequence["Frame"], workers: int
) -> list["MotionField"]:
    """All consecutive-pair fields of ``frame_list``, computed in a pool.

    Returns the same list :meth:`SMAnalyzer.track_sequence` would build
    sequentially -- same order, bit-identical contents.
    """
    tasks = [
        (m, frame_list[m], frame_list[m + 1]) for m in range(len(frame_list) - 1)
    ]
    results: list = [None] * len(tasks)
    ctx = _pool_context()
    with ctx.Pool(
        processes=min(workers, len(tasks)),
        initializer=_init_pair_worker,
        initargs=(
            analyzer.config,
            analyzer.pixel_km,
            analyzer.ridge,
            TRACER.enabled,
            analyzer.search,
            analyzer.backend,
        ),
    ) as pool:
        for index, field, payload in pool.imap_unordered(_track_pair_task, tasks):
            results[index] = field
            absorb_payload(payload)
    return results


def _init_ladder_worker(
    config,
    hs_iterations: int,
    tracing: bool = False,
    search: str = "exhaustive",
    backend: str = "auto",
) -> None:
    from ..core.prep import FramePreparationCache
    from ..reliability.degrade import DegradationLadder

    worker_init(tracing)
    _WORKER_STATE["ladder"] = DegradationLadder(
        config, hs_iterations=hs_iterations, search=search, backend=backend
    )
    _WORKER_STATE["prep_cache"] = FramePreparationCache(max_frames=4)


def _ladder_pair_task(task: tuple) -> tuple:
    (index, before, after, machine, planned, dt, int_b, int_a, fit_images) = task
    t0 = time.perf_counter()
    with TRACER.span("pair", pair=index):
        result, steps = _WORKER_STATE["ladder"].track_pair(
            before,
            after,
            machine,
            planned,
            dt_seconds=dt,
            intensity_before=int_b,
            intensity_after=int_a,
            prep_cache=_WORKER_STATE["prep_cache"],
            fit_images=fit_images,
        )
    wall = time.perf_counter() - t0
    return index, result, steps, wall, worker_payload()


class LadderPool:
    """Pool of :class:`~repro.reliability.degrade.DegradationLadder` workers.

    Used by the streaming runner's ``workers`` mode: the main process
    keeps doing everything order-sensitive (disk fetches, ledger
    charges, report events, checkpoints) while the pure per-pair
    computation runs in the pool.  Results are merged strictly in pair
    order, so the run's field, ledger and report are bit-identical to
    the sequential path.
    """

    def __init__(
        self,
        config,
        hs_iterations: int,
        workers: int,
        search: str = "exhaustive",
        backend: str = "auto",
    ) -> None:
        self._pool = _pool_context().Pool(
            processes=workers,
            initializer=_init_ladder_worker,
            initargs=(config, hs_iterations, TRACER.enabled, search, backend),
        )

    def submit(self, task: tuple):
        """Dispatch one `_ladder_pair_task` tuple; returns an AsyncResult."""
        return self._pool.apply_async(_ladder_pair_task, (task,))

    def close(self) -> None:
        self._pool.close()
        self._pool.join()

    def __enter__(self) -> "LadderPool":
        return self

    def __exit__(self, *exc) -> None:
        self._pool.terminate()
        self._pool.join()
