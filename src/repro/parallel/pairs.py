"""Process-pool sharding of a sequence's independent frame pairs.

The pairwise estimates of a T-frame sequence are mutually independent --
pair ``m`` reads frames ``m`` and ``m+1`` and nothing else -- so they
shard perfectly.  This module is the multi-core analogue of the paper's
observation that the MasPar keeps all PEs busy because every pixel (and
every pair) runs the same schedule on private data.

Workers are plain ``multiprocessing`` pool processes.  Each worker holds
its own :class:`~repro.core.prep.FramePreparationCache`, so a worker that
receives adjacent pairs still fits shared frames once.  Because the
per-pair computation is a pure function of the two frames, the pool
returns fields bit-identical to the sequential path, in pair order,
regardless of worker count or scheduling.

Two frame **transports** are supported:

``pickle`` (default, the bit-identity reference)
    Tasks ride the pool's pipe.  On fork platforms the frame list is
    staged in a module global *before* the pool forks, so workers
    inherit every frame copy-on-write and tasks carry only indices --
    no frame is ever re-pickled, fixing the old per-pair payload tax.
    Workers additionally memoize frames per-process by content
    fingerprint, so even the non-fork fallback (frames embedded in
    tasks) canonicalizes each distinct frame once.

``shm``
    Frames are published once into a named shared-memory
    :class:`~repro.bus.ring.FrameRing` (with their fitted preparation
    planes) and dense fields return through a
    :class:`~repro.bus.ring.ResultRing`; tasks and results carry only
    slot indices plus scalar metadata.  Bit-identical to ``pickle`` --
    the planes are the same float64 bytes, and workers seed their
    preparation caches from the ring instead of refitting.

Top-level functions only: pool workers import this module by name, so
the task callables must be picklable module attributes.
"""

from __future__ import annotations

import itertools
import multiprocessing
import os
import time
from typing import TYPE_CHECKING, Sequence

from ..obs import absorb_payload, worker_init, worker_payload
from ..obs.metrics import METRICS
from ..obs.tracing import TRACER

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.field import MotionField
    from ..core.sma import Frame, SMAnalyzer

#: Frame transports the pools accept.
TRANSPORTS = ("pickle", "shm")

#: Per-worker state, populated by the pool initializer.
_WORKER_STATE: dict = {}

#: Frames staged for fork inheritance: set in the parent immediately
#: before the pool forks, so children share the list copy-on-write and
#: tasks address frames by index instead of re-pickling them.
_POOL_FRAMES: Sequence | None = None

_RING_COUNTER = itertools.count()


def resolve_transport(transport: str) -> str:
    if transport not in TRANSPORTS:
        raise ValueError(f"unknown transport {transport!r} (choose from {TRANSPORTS})")
    return transport


def _ring_name(tag: str) -> str:
    """A collision-free ring name for one pool's lifetime."""
    return f"{tag}-{os.getpid()}-{next(_RING_COUNTER)}-{os.urandom(3).hex()}"


def _pool_context() -> multiprocessing.context.BaseContext:
    """Prefer fork (cheap, inherits the loaded native kernel) when present."""
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context("fork" if "fork" in methods else None)


def _start_method(ctx) -> str:
    return getattr(ctx, "_name", None) or ctx.get_start_method()


def _frame_bytes(frame) -> int:
    surface = frame.surface.nbytes
    return surface + (frame.intensity.nbytes if frame.intensity is not None else 0)


def _init_pair_worker(
    config,
    pixel_km: float,
    ridge: float,
    tracing: bool = False,
    search: str = "exhaustive",
    backend: str = "auto",
    frame_ring: str | None = None,
    result_ring: str | None = None,
) -> None:
    from ..core.prep import FramePreparationCache
    from ..core.sma import SMAnalyzer

    worker_init(tracing)
    _WORKER_STATE.clear()
    _WORKER_STATE["analyzer"] = SMAnalyzer(
        config, pixel_km=pixel_km, ridge=ridge, search=search, backend=backend
    )
    _WORKER_STATE["cache"] = FramePreparationCache(max_frames=4)
    _WORKER_STATE["frame_memo"] = {}
    if frame_ring is not None:
        from ..bus.ring import FrameRing, ResultRing

        _WORKER_STATE["frame_ring"] = FrameRing.attach(frame_ring, timeout=10.0)
        _WORKER_STATE["result_ring"] = ResultRing.attach(result_ring, timeout=10.0)


def _memoized_frame(fingerprint: str, frame):
    """Per-worker frame memo: one canonicalized Frame per distinct content."""
    memo = _WORKER_STATE["frame_memo"]
    cached = memo.get(fingerprint)
    if cached is not None:
        METRICS.inc("pool.frame_memo.hit")
        return cached
    if len(memo) >= 8:
        memo.pop(next(iter(memo)))
    memo[fingerprint] = frame
    return frame


def _ring_frame(seq: int):
    """Read frame ``seq`` from the attached ring, seeding the prep cache.

    Batch rings are sized to the whole sequence, so slots are never
    overwritten and the zero-copy view is stable for the worker's
    lifetime -- the frame bytes are mapped, not transferred.
    """
    ring = _WORKER_STATE["frame_ring"]
    memo = _WORKER_STATE["frame_memo"]
    key = f"seq:{seq}"
    cached = memo.get(key)
    if cached is not None:
        METRICS.inc("pool.frame_memo.hit")
        return cached
    bus_frame = ring.read_frame(seq, copy=False)
    if bus_frame.preparation is not None:
        _WORKER_STATE["cache"].seed(bus_frame.preparation)
    METRICS.inc("bus.bytes_avoided", ring.slot_bytes)
    if len(memo) >= 8:
        memo.pop(next(iter(memo)))
    memo[key] = bus_frame.frame
    return bus_frame.frame


def _track_pair_task(task: tuple) -> tuple:
    """One pair on any transport.

    Task shapes: ``("idx", m)`` fork-inherited frames, ``("obj", m,
    fp_before, before, fp_after, after)`` frames embedded (non-fork
    fallback), ``("shm", m, seq_before, seq_after)`` ring slots.
    """
    kind, index = task[0], task[1]
    if kind == "idx":
        before, after = _POOL_FRAMES[index], _POOL_FRAMES[index + 1]
    elif kind == "obj":
        before = _memoized_frame(task[2], task[3])
        after = _memoized_frame(task[4], task[5])
    else:
        before, after = _ring_frame(task[2]), _ring_frame(task[3])
    with TRACER.span("pair", pair=index):
        field = _WORKER_STATE["analyzer"].track_pair(
            before, after, cache=_WORKER_STATE["cache"]
        )
    if kind == "shm":
        seq = _WORKER_STATE["result_ring"].publish_field(index, field)
        return index, ("seq", seq, field.metadata), worker_payload()
    return index, ("field", field, None), worker_payload()


def track_pairs_in_pool(
    analyzer: "SMAnalyzer",
    frame_list: Sequence["Frame"],
    workers: int,
    transport: str = "pickle",
) -> list["MotionField"]:
    """All consecutive-pair fields of ``frame_list``, computed in a pool.

    Returns the same list :meth:`SMAnalyzer.track_sequence` would build
    sequentially -- same order, bit-identical contents -- on either
    transport.
    """
    resolve_transport(transport)
    if transport == "shm":
        return _track_pairs_shm(analyzer, frame_list, workers)
    return _track_pairs_pickle(analyzer, frame_list, workers)


def _track_pairs_pickle(
    analyzer: "SMAnalyzer", frame_list: Sequence["Frame"], workers: int
) -> list["MotionField"]:
    global _POOL_FRAMES
    from ..core.prep import frame_fingerprint

    n_tasks = len(frame_list) - 1
    ctx = _pool_context()
    fork = _start_method(ctx) == "fork"
    if fork:
        tasks = [("idx", m) for m in range(n_tasks)]
        _POOL_FRAMES = list(frame_list)
        # Every task after the first two frames rides the pipe payload-free.
        for frame in frame_list:
            METRICS.inc("pool.frame_bytes_avoided", _frame_bytes(frame))
    else:  # pragma: no cover - non-fork platforms
        fps = [
            frame_fingerprint(f.surface, f.intensity, analyzer.config)
            for f in frame_list
        ]
        tasks = [
            ("obj", m, fps[m], frame_list[m], fps[m + 1], frame_list[m + 1])
            for m in range(n_tasks)
        ]
    results: list = [None] * n_tasks
    try:
        with ctx.Pool(
            processes=min(workers, n_tasks),
            initializer=_init_pair_worker,
            initargs=(
                analyzer.config,
                analyzer.pixel_km,
                analyzer.ridge,
                TRACER.enabled,
                analyzer.search,
                analyzer.backend,
            ),
        ) as pool:
            for index, (_, field, _), payload in pool.imap_unordered(
                _track_pair_task, tasks
            ):
                results[index] = field
                absorb_payload(payload)
    finally:
        _POOL_FRAMES = None
    return results


def _track_pairs_shm(
    analyzer: "SMAnalyzer", frame_list: Sequence["Frame"], workers: int
) -> list["MotionField"]:
    from ..bus.ring import FrameRing, ResultRing
    from ..core.prep import FramePreparationCache

    n_tasks = len(frame_list) - 1
    height, width = frame_list[0].shape
    has_intensity = any(f.intensity is not None for f in frame_list)
    name = _ring_name("pairs")
    frame_ring = FrameRing.create_frames(
        name,
        capacity=len(frame_list),
        height=height,
        width=width,
        intensity=has_intensity,
        prep=True,
    )
    result_ring = ResultRing.create_results(
        f"{name}-out",
        capacity=min(n_tasks, 2 * workers + 2),
        height=height,
        width=width,
        params=True,
    )
    results: list = [None] * n_tasks
    try:
        cache = FramePreparationCache(max_frames=4)
        for frame in frame_list:
            # Same lookup prepare_frames() performs, so the fingerprint
            # (and the fitted planes) match what a worker would compute.
            prep = cache.get(frame.surface, frame.intensity, analyzer.config)
            frame_ring.publish_frame(frame, preparation=prep, pixel_km=analyzer.pixel_km)
        tasks = [("shm", m, m, m + 1) for m in range(n_tasks)]
        with _pool_context().Pool(
            processes=min(workers, n_tasks),
            initializer=_init_pair_worker,
            initargs=(
                analyzer.config,
                analyzer.pixel_km,
                analyzer.ridge,
                TRACER.enabled,
                analyzer.search,
                analyzer.backend,
                name,
                f"{name}-out",
            ),
        ) as pool:
            for index, (_, seq, metadata), payload in pool.imap_unordered(
                _track_pair_task, tasks
            ):
                _, field = result_ring.read_field(seq, metadata=metadata)
                result_ring.mark_consumed(seq)
                results[index] = field
                absorb_payload(payload)
    finally:
        frame_ring.unlink()
        frame_ring.close()
        result_ring.unlink()
        result_ring.close()
    return results


def _init_ladder_worker(
    config,
    hs_iterations: int,
    tracing: bool = False,
    search: str = "exhaustive",
    backend: str = "auto",
    frame_ring: str | None = None,
    result_ring: str | None = None,
) -> None:
    from ..core.prep import FramePreparationCache
    from ..reliability.degrade import DegradationLadder

    worker_init(tracing)
    _WORKER_STATE.clear()
    _WORKER_STATE["ladder"] = DegradationLadder(
        config, hs_iterations=hs_iterations, search=search, backend=backend
    )
    _WORKER_STATE["prep_cache"] = FramePreparationCache(max_frames=4)
    if frame_ring is not None:
        from ..bus.ring import FrameRing, ResultRing

        _WORKER_STATE["frame_ring"] = FrameRing.attach(frame_ring, timeout=10.0)
        _WORKER_STATE["result_ring"] = ResultRing.attach(result_ring, timeout=10.0)


def _ladder_pair_task(task: tuple) -> tuple:
    (index, before, after, machine, planned, dt, int_b, int_a, fit_images) = task
    t0 = time.perf_counter()
    with TRACER.span("pair", pair=index):
        result, steps = _WORKER_STATE["ladder"].track_pair(
            before,
            after,
            machine,
            planned,
            dt_seconds=dt,
            intensity_before=int_b,
            intensity_after=int_a,
            prep_cache=_WORKER_STATE["prep_cache"],
            fit_images=fit_images,
        )
    wall = time.perf_counter() - t0
    return index, result, steps, wall, worker_payload()


def _ladder_pair_task_shm(task: tuple) -> tuple:
    """Ladder task with frames read from (and planes returned via) rings.

    Live rings *can* lap a slow worker; a missed or torn slot raises and
    the runner's per-pair fault handling takes over (interpolation rung),
    exactly like a failed disk fetch.
    """
    (index, seq_b, seq_a, machine, planned, dt, fit_images) = task
    ring = _WORKER_STATE["frame_ring"]
    t0 = time.perf_counter()
    bf_b = ring.read_frame(seq_b, copy=True)
    bf_a = ring.read_frame(seq_a, copy=True)
    METRICS.inc("bus.bytes_avoided", 2 * ring.slot_bytes)
    with TRACER.span("pair", pair=index):
        result, steps = _WORKER_STATE["ladder"].track_pair(
            bf_b.frame.surface,
            bf_a.frame.surface,
            machine,
            planned,
            dt_seconds=dt,
            intensity_before=bf_b.frame.intensity,
            intensity_after=bf_a.frame.intensity,
            prep_cache=_WORKER_STATE["prep_cache"],
            fit_images=fit_images,
        )
    wall = time.perf_counter() - t0
    seq = _WORKER_STATE["result_ring"].publish_planes(
        index, result.u, result.v, result.error
    )
    slim = (result.rung, result.segment_rows, result.ledger, result.seconds, result.detail)
    return index, ("seq", seq, slim), steps, wall, worker_payload()


class LadderPool:
    """Pool of :class:`~repro.reliability.degrade.DegradationLadder` workers.

    Used by the streaming runner's ``workers`` mode: the main process
    keeps doing everything order-sensitive (disk fetches, ledger
    charges, report events, checkpoints) while the pure per-pair
    computation runs in the pool.  Results are merged strictly in pair
    order, so the run's field, ledger and report are bit-identical to
    the sequential path.

    With ``transport="shm"`` the pool lazily creates a frame ring and a
    result ring on first submit; each distinct frame is published once
    (keyed by array identity -- the runner hands pair ``m+1`` the same
    ``after`` array object it handed pair ``m`` as ``before``) and
    workers receive only slot indices.
    """

    def __init__(
        self,
        config,
        hs_iterations: int,
        workers: int,
        search: str = "exhaustive",
        backend: str = "auto",
        transport: str = "pickle",
    ) -> None:
        self.transport = resolve_transport(transport)
        self.workers = workers
        self._config = config
        self._hs_iterations = hs_iterations
        self._search = search
        self._backend = backend
        self._pool = None
        self._frame_ring = None
        self._result_ring = None
        self._published: dict[int, int] = {}  # id(array) -> ring seq
        self._pending_results = 0
        if transport == "pickle":
            self._pool = _pool_context().Pool(
                processes=workers,
                initializer=_init_ladder_worker,
                initargs=(config, hs_iterations, TRACER.enabled, search, backend),
            )

    @property
    def ring_name(self) -> str | None:
        return self._frame_ring.name if self._frame_ring is not None else None

    def _ensure_shm(self, shape: tuple[int, int], has_intensity: bool) -> None:
        from ..bus.ring import FrameRing, ResultRing

        if self._pool is not None:
            return
        name = _ring_name("ladder")
        # Wave scheduling bounds in-flight pairs to ~workers, so a slot
        # is reused only long after both of its pairs completed.
        self._frame_ring = FrameRing.create_frames(
            name,
            capacity=4 * self.workers + 16,
            height=shape[0],
            width=shape[1],
            intensity=has_intensity,
            prep=False,
        )
        self._result_ring = ResultRing.create_results(
            f"{name}-out",
            capacity=2 * self.workers + 4,
            height=shape[0],
            width=shape[1],
            params=False,
        )
        self._pool = _pool_context().Pool(
            processes=self.workers,
            initializer=_init_ladder_worker,
            initargs=(
                self._config,
                self._hs_iterations,
                TRACER.enabled,
                self._search,
                self._backend,
                name,
                f"{name}-out",
            ),
        )

    def _publish_once(self, array, intensity) -> int:
        # The memo holds the array itself, not just its id: a held
        # reference pins the id so a freed array's recycled address can
        # never alias a stale entry.
        key = id(array)
        entry = self._published.get(key)
        if entry is not None and entry[1] is array:
            # Reuse only while the slot is comfortably inside the ring:
            # leave a 2*workers margin for publishes that land while
            # the reading worker is still in flight.
            horizon = self._frame_ring.write_cursor - self._frame_ring.capacity
            if entry[0] > horizon + 2 * self.workers:
                METRICS.inc("pool.frame_memo.hit")
                return entry[0]
        from ..core.sma import Frame

        frame = Frame(surface=array, intensity=intensity)
        seq = self._frame_ring.publish_frame(frame)
        if len(self._published) > 8 * self.workers:
            self._published.clear()
        self._published[key] = (seq, array)
        return seq

    def submit(self, task: tuple):
        """Dispatch one `_ladder_pair_task` tuple; returns an AsyncResult."""
        if self.transport == "shm":
            (index, before, after, machine, planned, dt, int_b, int_a, fit) = task
            self._ensure_shm(
                before.shape, int_b is not None or int_a is not None
            )
            seq_b = self._publish_once(before, int_b)
            seq_a = self._publish_once(after, int_a)
            shm_task = (index, seq_b, seq_a, machine, planned, dt, fit)
            return self._pool.apply_async(_ladder_pair_task_shm, (shm_task,))
        return self._pool.apply_async(_ladder_pair_task, (task,))

    def resolve(self, handle):
        """Unwrap one submitted pair: ``(result, steps, wall, payload)``.

        On the shm transport the dense planes are read (and the slot
        released) here, in the main process, rebuilding the same
        :class:`~repro.reliability.degrade.RungResult` the pickle
        transport returns.
        """
        index, result, steps, wall, payload = handle.get()
        if self.transport == "shm" and isinstance(result, tuple) and result[0] == "seq":
            from ..reliability.degrade import RungResult

            _, seq, (rung, segment_rows, ledger, seconds, detail) = result
            ring_index, u, v, error = self._result_ring.read_planes(seq)
            self._result_ring.mark_consumed(seq)
            assert ring_index == index
            result = RungResult(
                u=u, v=v, error=error, rung=rung, segment_rows=segment_rows,
                ledger=ledger, seconds=seconds, detail=detail,
            )
        return index, result, steps, wall, payload

    def close(self) -> None:
        if self._pool is not None:
            self._pool.close()
            self._pool.join()
        self._cleanup_rings()

    def _cleanup_rings(self) -> None:
        for ring in (self._frame_ring, self._result_ring):
            if ring is not None:
                ring.unlink()
                ring.close()
        self._frame_ring = self._result_ring = None

    def __enter__(self) -> "LadderPool":
        return self

    def __exit__(self, *exc) -> None:
        if self._pool is not None:
            self._pool.terminate()
            self._pool.join()
        self._cleanup_rings()
