"""The parallel SMA algorithm on the simulated MasPar MP-2 (Section 4).

:class:`ParallelSMA` executes the same mathematics as the sequential
reference (:mod:`repro.core`) but *as the paper's parallel program*:

* the image is folded onto the PE array with the 2-D hierarchical
  mapping (eq. 12-13) and processed "all pixels in the mem-th memory
  layer in parallel ... for each layer",
* neighborhood data moves through a Section-4.2 read-out scheme
  (raster-scan bounding boxes by default -- the scheme the paper
  adopted),
* template mappings are precomputed per Section 4.1 and segmented by
  hypothesis rows per Section 4.3, with every segment's store charged
  against the 64 KB PE memory (an infeasible configuration raises
  :class:`~repro.maspar.memory.PEMemoryError`, exactly the failure
  that forced segmentation on the real machine),
* every arithmetic/communication operation is charged to a
  :class:`~repro.maspar.cost.CostLedger` under the paper's four phase
  names, so the run produces a Table 2 / Table 4 style timing
  breakdown alongside the motion field.

The produced motion field is **identical** to
:func:`repro.core.matching.track_dense` (the paper validated its
parallel implementation the same way: "the parallel algorithm obtained
the same result as the sequential implementation").
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass

import numpy as np

from ..core.continuous import N_FIELDS, solve_accumulated
from ..core.field import MotionField
from ..core.matching import (
    PreparedFrames,
    _box_sum_stack,
    _CertificateGrid,
    _hypothesis_pointwise,
    _shifted_geometry_stack,
    hypothesis_fields,
    prepare_frames,
    valid_mask,
)
from ..core.prep import FramePreparationCache
from ..core.semifluid import semifluid_displacements
from ..core.sma import Frame
from ..kernels import BITWISE_BACKENDS, resolve_backend
from ..maspar.cost import CostLedger
from ..maspar.machine import MachineConfig, scaled_machine
from ..maspar.mapping import HierarchicalMapping, mapping_for
from ..maspar.memory import PEMemoryError, PEMemoryTracker
from ..maspar.readout import DEFAULT_READOUT, RasterScanReadout, SnakeReadout
from ..obs.tracing import TRACER
from ..params import NeighborhoodConfig
from .memory_plan import max_feasible_segment_rows, plan
from .segmentation import SegmentedSearch

#: Table 2 / Table 4 phase names.
PHASE_SURFACE_FIT = "Surface fit"
PHASE_GEOMETRY = "Compute geometric variables"
PHASE_SEMIFLUID = "Semi-fluid mapping"
PHASE_MATCHING = "Hypothesis matching"

#: Flops per eq. (4)-(5) residual pair evaluation (assemble two rows,
#: weight, square, accumulate 28 field entries).
FLOPS_PER_ERROR_TERM = 80.0

#: Flops per semi-fluid discriminant comparison (difference, square,
#: accumulate, normalize share).
FLOPS_PER_COMPARISON = 3.0


def machine_for_image(
    shape: tuple[int, int], max_grid: int = 128, pe_memory_bytes: int | None = None
) -> MachineConfig:
    """A scaled MP-2 whose PE grid divides the image evenly.

    Picks the largest power-of-two grid (up to ``max_grid``, the MP-2's
    128) dividing both image dimensions.
    """
    h, w = shape
    grid = 1
    g = 2
    while g <= max_grid and h % g == 0 and w % g == 0:
        grid = g
        g *= 2
    return scaled_machine(grid, grid, pe_memory_bytes=pe_memory_bytes)


@dataclass
class ParallelResult:
    """Output of one parallel run: the field plus machine-model artifacts."""

    field: MotionField
    ledger: CostLedger
    mapping: HierarchicalMapping
    segment_rows: int
    segments_processed: int
    peak_memory_bytes: int

    def breakdown(self) -> list[tuple[str, float]]:
        """(phase, modeled seconds) rows in Table 2 order."""
        order = [PHASE_SURFACE_FIT, PHASE_GEOMETRY, PHASE_SEMIFLUID, PHASE_MATCHING]
        return [
            (name, self.ledger.phase_seconds(name))
            for name in order
            if name in self.ledger.phases
        ]

    @property
    def total_seconds(self) -> float:
        return self.ledger.total_seconds()


class ParallelSMA:
    """Parallel SMA on a (simulated) SIMD machine.

    Parameters
    ----------
    machine:
        Machine description; defaults to a grid fitted to the image by
        :func:`machine_for_image` at track time.
    config:
        Neighborhood parameterization.
    readout:
        Section-4.2 neighborhood read-out scheme (raster-scan default).
    segment_rows:
        Template-mapping segment size Z; ``None`` selects the largest
        feasible value (the unsegmented search when memory allows, as
        in the paper's Table 2 run).
    search:
        ``"exhaustive"`` (default) or ``"pruned"`` (certificate-bound
        pruning; bit-identical field, fewer GE charges on the ledger).
        ``"pyramid"`` is deliberately rejected here: the simulated
        machine promises products identical to the sequential
        reference, and the pyramid schedule is approximate.
    backend:
        Kernel backend -- one of the *bit-identical* backends
        (``"auto"``, ``"numpy"``, ``"native"``).  ``"device"`` is
        rejected for the same reason as the pyramid schedule: the
        simulated machine promises products identical to the
        sequential reference.
    """

    def __init__(
        self,
        config: NeighborhoodConfig,
        machine: MachineConfig | None = None,
        readout: RasterScanReadout | SnakeReadout | None = None,
        segment_rows: int | None = None,
        pixel_km: float = 1.0,
        ridge: float = 1e-9,
        search: str = "exhaustive",
        backend: str = "auto",
    ) -> None:
        if search not in ("exhaustive", "pruned"):
            raise ValueError(
                f"ParallelSMA supports search='exhaustive' or 'pruned', got {search!r} "
                "(the parallel run must stay bit-identical to the reference; "
                "the approximate pyramid schedule is track_dense-only)"
            )
        if backend not in BITWISE_BACKENDS:
            raise ValueError(
                f"ParallelSMA supports backend in {BITWISE_BACKENDS}, got {backend!r} "
                "(the parallel run must stay bit-identical to the reference; "
                "the tolerance-equivalent device backend is track_dense-only)"
            )
        self.config = config
        self.machine = machine
        self.readout = readout if readout is not None else DEFAULT_READOUT
        self.segment_rows = segment_rows
        self.pixel_km = pixel_km
        self.ridge = ridge
        self.search = search
        self.backend = backend

    # -- internal helpers ------------------------------------------------------------

    def _resolve_machine(self, shape: tuple[int, int]) -> MachineConfig:
        machine = self.machine or machine_for_image(shape)
        if shape[0] % machine.nyproc or shape[1] % machine.nxproc:
            raise ValueError(
                f"image {shape} does not fold onto the {machine.nyproc}x"
                f"{machine.nxproc} PE grid (dimensions must divide evenly)"
            )
        return machine

    def _charge_surface_fit(
        self, ledger: CostLedger, mapping: HierarchicalMapping, n_images: int
    ) -> None:
        h, w = mapping.height, mapping.width
        pixels = h * w
        stats = self.readout.stats(mapping, self.config.n_w)
        with ledger.phase(PHASE_SURFACE_FIT):
            for _ in range(n_images):
                ledger.charge_xnet(stats.mesh_bytes, shifts=stats.mesh_shifts)
                ledger.charge_memory(stats.mem_bytes)
            # windowed RHS accumulation: (2N_w+1)^2 basis products per pixel
            window = self.config.surface_window**2
            ledger.charge_flops(n_images * pixels * window * 12.0)
            ledger.charge_gaussian_elimination(n_images * pixels, order=6)

    def _charge_geometry(self, ledger: CostLedger, mapping: HierarchicalMapping) -> None:
        pixels = mapping.height * mapping.width
        with ledger.phase(PHASE_GEOMETRY):
            # normals (sqrt ~ 8 flops), E, G, discriminants for 2 surfaces
            # + 2 intensity images
            ledger.charge_flops(pixels * 4 * 30.0)
            ledger.charge_memory(pixels * 8 * 4)

    def _charge_semifluid(self, ledger: CostLedger, mapping: HierarchicalMapping) -> None:
        c = self.config
        pixels = mapping.height * mapping.width
        stats = self.readout.stats(mapping, c.n_zs + c.n_ss + c.n_st)
        with ledger.phase(PHASE_SEMIFLUID):
            ledger.charge_xnet(stats.mesh_bytes * 2, shifts=stats.mesh_shifts * 2)
            ledger.charge_memory(stats.mem_bytes * 2)
            comparisons = pixels * c.precompute_window**2 * c.semifluid_patch_terms
            ledger.charge_flops(comparisons * FLOPS_PER_COMPARISON)

    def _charge_hypothesis(
        self,
        ledger: CostLedger,
        mapping: HierarchicalMapping,
        solves: int | None = None,
    ) -> None:
        c = self.config
        pixels = mapping.height * mapping.width
        stats = self.readout.stats(mapping, c.n_zt)
        with ledger.phase(PHASE_MATCHING):
            # accumulation of the two normal-equation matrices (Section 4.2)
            ledger.charge_xnet(stats.mesh_bytes, shifts=stats.mesh_shifts)
            ledger.charge_memory(stats.mem_bytes)
            ledger.charge_flops(pixels * c.template_pixels * FLOPS_PER_ERROR_TERM)
            # One solve per pixel on the exhaustive schedule; the pruned
            # schedule passes the certificate + survivor count actually
            # performed -- the ledger is how the saving is observed.
            ledger.charge_gaussian_elimination(
                pixels if solves is None else solves, order=6
            )

    # -- the run ----------------------------------------------------------------------

    def track_pair(
        self,
        before: Frame | np.ndarray,
        after: Frame | np.ndarray,
        dt_seconds: float | None = None,
        prep_cache: FramePreparationCache | None = None,
        fit_images: int | None = None,
    ) -> ParallelResult:
        """Run the full parallel algorithm on one frame pair.

        ``prep_cache`` shares per-frame surface fits / discriminants
        across the pairs of a sequence (bit-identical results).
        ``fit_images`` overrides how many image surface fits the ledger
        charges for this pair; sequence drivers pass the *positional*
        count (full price for pair 0, only the newly arrived frame for
        later pairs) so accounting reflects the reuse yet stays
        independent of cache warmth -- a resumed run must reproduce the
        uninterrupted ledger exactly.
        """
        before = before if isinstance(before, Frame) else Frame(np.asarray(before))
        after = after if isinstance(after, Frame) else Frame(np.asarray(after))
        if before.shape != after.shape:
            raise ValueError("frame shapes differ")
        substituted_dt: float | None = None
        if dt_seconds is None:
            dt_seconds = after.time_seconds - before.time_seconds
            if dt_seconds <= 0:
                substituted_dt = float(dt_seconds)
                dt_seconds = 1.0
                warnings.warn(
                    f"frame timestamps are not increasing (dt = {substituted_dt} s); "
                    "substituting dt = 1 s -- derived wind speeds are in "
                    "pixels/frame, not physical units",
                    RuntimeWarning,
                    stacklevel=2,
                )

        shape = before.shape
        resolved = resolve_backend(self.backend)
        machine = self._resolve_machine(shape)
        mapping = mapping_for(machine, *shape)
        ledger = CostLedger(machine)
        memory = PEMemoryTracker(machine.pe_memory_bytes)

        # Resident data: images/surfaces + geometric variables (the
        # non-segmented part of the Section 4.3 budget).
        base_plan = plan(self.config, mapping.layers, segment_rows=1)
        memory.allocate(base_plan.image_bytes, name="images & surfaces")
        memory.allocate(base_plan.geometry_bytes, name="geometric variables")
        memory.allocate(base_plan.best_state_bytes, name="best-correspondence state")
        memory.allocate(base_plan.scratch_bytes, name="scratch")

        segment_rows = self.segment_rows
        if segment_rows is None:
            segment_rows = max_feasible_segment_rows(self.config, mapping.layers, machine)
            if segment_rows == 0:
                smallest = plan(self.config, mapping.layers, segment_rows=1)
                raise PEMemoryError(
                    "no feasible template-mapping segment size: fold the image "
                    "onto more PEs or reduce the search window",
                    requested_bytes=smallest.total_bytes,
                    capacity_bytes=machine.pe_memory_bytes,
                    in_use_bytes=0,
                )

        # Fold the image through the hierarchical mapping (and back) so
        # the data-layout machinery is genuinely in the loop.
        surface_before = np.asarray(before.surface, dtype=np.float64)
        folded = mapping.scatter(surface_before)
        restored = mapping.gather(folded)
        if not np.array_equal(restored, surface_before):  # pragma: no cover
            raise AssertionError("hierarchical mapping round-trip failed")

        # Phase 1-2: surface fits + geometric variables.
        n_images = 4 if self.config.is_semifluid or before.intensity is not None else 2
        if fit_images is not None:
            if not 0 <= fit_images <= n_images:
                raise ValueError(
                    f"fit_images must be in [0, {n_images}], got {fit_images}"
                )
            n_images = fit_images
        self._charge_surface_fit(ledger, mapping, n_images)
        self._charge_geometry(ledger, mapping)
        prepared: PreparedFrames = prepare_frames(
            surface_before,
            np.asarray(after.surface, dtype=np.float64),
            self.config,
            intensity_before=before.intensity,
            intensity_after=after.intensity,
            cache=prep_cache,
        )

        # Phase 3: semi-fluid template-mapping precompute.
        shifted_after = None
        if prepared.volume is not None and self.config.n_ss > 0:
            self._charge_semifluid(ledger, mapping)
            shifted_after = _shifted_geometry_stack(prepared.geo_after, prepared.volume)

        # Phase 4: segmented hypothesis matching.  The pruned schedule
        # keeps its own running best (the elementwise minimum of every
        # error surface handed to the segmented merge, i.e. exactly the
        # evolution of the merge state): a hypothesis whose certificate
        # bound provably exceeds it returns +inf for that pixel, which
        # the strict-less/tie merge can never select -- so the produced
        # field stays bit-identical while the ledger records only the
        # certificate + survivor eliminations actually performed.
        cert_grid = None
        running_best = None
        if self.search == "pruned":
            cert_grid = _CertificateGrid.build(shape, self.config.n_zt)
            running_best = np.full(shape, np.inf)

        def evaluate(dy: int, dx: int):
            deltas = None
            if prepared.volume is not None and self.config.n_ss > 0:
                deltas = semifluid_displacements(
                    prepared.volume, dy, dx, self.config.n_ss
                )
            if cert_grid is not None:
                pw = _hypothesis_pointwise(prepared, dy, dx, shifted_after, deltas)
                if np.isfinite(running_best).any():
                    lb, slack = cert_grid.lower_bounds(
                        pw, self.ridge, prefer_native=resolved.prefer_native
                    )
                    cert_solves = cert_grid.systems
                    survivors = np.flatnonzero(
                        ~((lb - slack) > running_best).ravel()
                    )
                else:
                    # nothing can prune against best = inf: skip the
                    # certificate pass for the first hypothesis
                    cert_solves = 0
                    survivors = np.arange(shape[0] * shape[1])
                error = np.full(shape, np.inf)
                params = np.zeros(shape + (6,), dtype=np.float64)
                if survivors.size:
                    accumulated = _box_sum_stack(pw[None], self.config.n_zt)[0]
                    solution = solve_accumulated(
                        accumulated.reshape(-1, N_FIELDS)[survivors],
                        ridge=self.ridge,
                        prefer_native=resolved.prefer_native,
                    )
                    error.ravel()[survivors] = solution.error
                    params.reshape(-1, 6)[survivors] = solution.params
                np.minimum(running_best, error, out=running_best)
                self._charge_hypothesis(
                    ledger, mapping, solves=cert_solves + int(survivors.size)
                )
            else:
                self._charge_hypothesis(ledger, mapping)
                fields = hypothesis_fields(prepared, dy, dx, shifted_after, deltas)
                solution = solve_accumulated(
                    fields, ridge=self.ridge, prefer_native=resolved.prefer_native
                )
                error, params = solution.error, solution.params
            if deltas is not None:
                u_field = deltas[1].astype(np.float64)
                v_field = deltas[0].astype(np.float64)
            else:
                u_field = np.full(shape, float(dx))
                v_field = np.full(shape, float(dy))
            return error, params, u_field, v_field

        search = SegmentedSearch(
            self.config, evaluate, memory=memory, layers=mapping.layers
        )
        with TRACER.span(
            "hypothesis_search", ledger=ledger, segment_rows=segment_rows
        ):
            state = search.run(shape, segment_rows)

        metadata = {
            "model": "semi-fluid" if self.config.is_semifluid else "continuous",
            "config": self.config.name,
            "machine": f"{machine.nyproc}x{machine.nxproc}",
            "segment_rows": segment_rows,
            "search": self.search,
            "backend": self.backend,
        }
        if substituted_dt is not None:
            metadata["dt_substituted"] = True
            metadata["dt_rejected_seconds"] = substituted_dt
        field = MotionField(
            u=state.u,
            v=state.v,
            valid=valid_mask(shape, self.config),
            error=state.error,
            params=state.params,
            dt_seconds=float(dt_seconds),
            pixel_km=self.pixel_km,
            metadata=metadata,
        )
        return ParallelResult(
            field=field,
            ledger=ledger,
            mapping=mapping,
            segment_rows=segment_rows,
            segments_processed=state.segments_processed,
            peak_memory_bytes=memory.peak_bytes,
        )
