"""Parallel Automatic Stereo Analysis on the simulated MP-2.

Section 2.1: "We have used an existing correlation-based Automatic
Stereo Analysis (ASA) algorithm **that has been parallelized for the
MasPar MP-2** [12]."  The stereo step is therefore part of the paper's
parallel system, and this module reproduces it on the simulator:

* both images are folded with the 2-D hierarchical mapping,
* at every pyramid level each candidate disparity's NCC field is an
  elementwise plural computation over box-summed moment planes, whose
  neighborhood accumulations move through the Section-4.2 raster-scan
  read-out (charged to the ledger),
* the coarse-to-fine warp is a plural gather (router traffic -- warps
  are data-dependent, the one place the mesh cannot serve).

The produced disparity maps are **identical** to the sequential
:func:`repro.stereo.asa.estimate_disparity` (tested), and the run
yields a phase cost breakdown comparable with the motion stages: the
paper's pipeline spends seconds on stereo and hours on hypothesis
matching, which the models reproduce.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..maspar.cost import CostLedger
from ..maspar.machine import MachineConfig
from ..maspar.mapping import HierarchicalMapping
from ..maspar.readout import DEFAULT_READOUT, RasterScanReadout, SnakeReadout
from ..stereo.asa import ASAConfig, ASAResult, estimate_disparity
from ..stereo.geometry import StereoGeometry

PHASE_PYRAMID = "Pyramid construction"
PHASE_CORRELATION = "NCC correlation"
PHASE_WARP = "Coarse-to-fine warp"


@dataclass
class ParallelASAResult:
    """Disparity output plus the machine-model cost ledger."""

    result: ASAResult
    ledger: CostLedger

    @property
    def disparity(self) -> np.ndarray:
        return self.result.disparity

    def breakdown(self) -> list[tuple[str, float]]:
        order = [PHASE_PYRAMID, PHASE_CORRELATION, PHASE_WARP]
        return [
            (name, self.ledger.phase_seconds(name))
            for name in order
            if name in self.ledger.phases
        ]

    @property
    def total_seconds(self) -> float:
        return self.ledger.total_seconds()


class ParallelASA:
    """The stereo substrate as a parallel program with cost accounting."""

    def __init__(
        self,
        machine: MachineConfig,
        config: ASAConfig | None = None,
        readout: RasterScanReadout | SnakeReadout | None = None,
    ) -> None:
        self.machine = machine
        self.config = config or ASAConfig()
        self.readout = readout if readout is not None else DEFAULT_READOUT

    def _level_mapping(self, shape: tuple[int, int]) -> HierarchicalMapping | None:
        """Mapping for a pyramid level; None when the level is smaller
        than the PE grid (the level then runs on a sub-array, modeled as
        one layer at full-array time)."""
        h, w = shape
        if h % self.machine.nyproc or w % self.machine.nxproc:
            return None
        return HierarchicalMapping(
            height=h, width=w, nyproc=self.machine.nyproc, nxproc=self.machine.nxproc
        )

    def _charge_level(
        self, ledger: CostLedger, shape: tuple[int, int], n_disparities: int, coarsest: bool
    ) -> None:
        pixels = shape[0] * shape[1]
        c = self.config
        mapping = self._level_mapping(shape)
        window = (2 * c.template_half_width + 1) ** 2
        with ledger.phase(PHASE_PYRAMID):
            if not coarsest:
                # Gaussian decimation of both images: a small separable
                # stencil per output pixel.
                ledger.charge_flops(2 * pixels * 12.0)
                ledger.charge_memory(2 * pixels * 4)
        with ledger.phase(PHASE_CORRELATION):
            # moment planes: L, L^2 once; R_d, R_d^2, L*R_d per candidate
            ledger.charge_flops(pixels * (2.0 + n_disparities * 3.0))
            # box sums via the read-out scheme: 5 planes per candidate set
            if mapping is not None:
                stats = self.readout.stats(mapping, c.template_half_width)
                ledger.charge_xnet(
                    stats.mesh_bytes * (2 + 3 * n_disparities),
                    shifts=stats.mesh_shifts * (2 + 3 * n_disparities),
                )
                ledger.charge_memory(stats.mem_bytes * (2 + 3 * n_disparities))
            else:
                ledger.charge_memory(pixels * 4 * (2 + 3 * n_disparities) * window / 8)
            # NCC assembly + argmax + parabolic refine
            ledger.charge_flops(pixels * n_disparities * 10.0)
        if not coarsest:
            with ledger.phase(PHASE_WARP):
                # data-dependent gather: router traffic for the whole plane
                ledger.charge_router(pixels * 4, sends=1)
                ledger.charge_flops(pixels * 8.0)

    def estimate(self, left: np.ndarray, right: np.ndarray) -> ParallelASAResult:
        """Run the hierarchical ASA, charging every level's cost.

        Numerics are shared with the sequential implementation, so the
        disparity maps agree exactly; the ledger carries the parallel
        execution model.
        """
        left = np.asarray(left, dtype=np.float64)
        right = np.asarray(right, dtype=np.float64)
        if left.shape != right.shape:
            raise ValueError("stereo images must share a shape")
        ledger = CostLedger(self.machine)
        c = self.config
        shape = left.shape
        # charge per level, coarse to fine
        level_shapes = [shape]
        for _ in range(c.levels - 1):
            h, w = level_shapes[-1]
            level_shapes.append(((h + 1) // 2, (w + 1) // 2))
        for depth, lvl_shape in enumerate(reversed(level_shapes)):
            coarsest = depth == 0
            n_disp = (
                2 * c.coarse_search + 1 if coarsest else 2 * c.refine_search + 1
            )
            self._charge_level(ledger, lvl_shape, n_disp, coarsest)

        result = estimate_disparity(left, right, c)
        return ParallelASAResult(result=result, ledger=ledger)

    def surface_map(
        self, left: np.ndarray, right: np.ndarray, geometry: StereoGeometry
    ) -> tuple[np.ndarray, ParallelASAResult]:
        """Dense cloud-top heights plus the cost model."""
        out = self.estimate(left, right)
        z = np.asarray(geometry.height_from_disparity(out.disparity), dtype=np.float64)
        return z, out
