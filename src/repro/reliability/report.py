"""Structured record of what went wrong and what was done about it.

A 490-frame run that silently "completed" is worthless if nobody can
tell which pairs were estimated by the full SMA and which limped home
on temporal interpolation.  :class:`RunReport` records every fault
(:class:`FaultEvent`) and the method that produced every pair
(:class:`PairOutcome`), survives checkpoints as JSON, and renders the
operational summary the paper's forecaster-facing pipeline would have
shown.
"""

from __future__ import annotations

import json
import time
from collections import Counter
from dataclasses import asdict, dataclass, field

#: Keys dropped by ``to_json(include_timing=False)`` -- the default --
#: so existing report consumers (and byte-equality resume tests) see
#: exactly the pre-timing schema.
_TIMING_KEYS = ("timestamp", "wall_seconds")

#: Degradation-ladder rung names, by rung index.
RUNG_NAMES = ("sma", "sma-replanned", "horn-schunck", "interpolated")


@dataclass
class FaultEvent:
    """One detected fault and the recovery action taken.

    ``pair`` is the frame-pair index being processed (-1 during
    staging); ``frame`` the affected frame index when applicable.
    ``kind`` is a stable tag (``disk-read-error``, ``disk-write-error``,
    ``corrupt-frame``, ``pe-memory``, ``dead-pe-rows``); ``action``
    what the runner did (``retried``, ``recovered``, ``replanned``,
    ``degraded``, ``interpolated``, ``remapped``, ``skipped``).
    """

    pair: int
    kind: str
    detail: str
    action: str
    frame: int | None = None
    #: Monotonic host clock at recording time (None on legacy payloads).
    timestamp: float | None = None


@dataclass
class PairOutcome:
    """How one frame pair's motion field was produced."""

    pair: int
    method: str
    rung: int
    segment_rows: int | None = None
    seconds: float = 0.0
    #: Monotonic host clock at recording time (None on legacy payloads).
    timestamp: float | None = None
    #: Measured host wall-clock seconds spent producing the pair, when
    #: the driver timed it (modeled MasPar time lives in ``seconds``).
    wall_seconds: float | None = None


@dataclass
class RunReport:
    """Everything a streaming run has to confess."""

    events: list[FaultEvent] = field(default_factory=list)
    outcomes: list[PairOutcome] = field(default_factory=list)

    # -- recording ------------------------------------------------------------------

    def record_event(
        self, pair: int, kind: str, detail: str, action: str, frame: int | None = None
    ) -> FaultEvent:
        event = FaultEvent(
            pair=pair, kind=kind, detail=detail, action=action, frame=frame,
            timestamp=time.monotonic(),
        )
        self.events.append(event)
        return event

    def record_outcome(
        self,
        pair: int,
        rung: int,
        segment_rows: int | None = None,
        seconds: float = 0.0,
        wall_seconds: float | None = None,
    ) -> PairOutcome:
        outcome = PairOutcome(
            pair=pair,
            method=RUNG_NAMES[rung],
            rung=rung,
            segment_rows=segment_rows,
            seconds=seconds,
            timestamp=time.monotonic(),
            wall_seconds=wall_seconds,
        )
        self.outcomes.append(outcome)
        return outcome

    # -- queries --------------------------------------------------------------------

    @property
    def fault_counts(self) -> Counter:
        return Counter(event.kind for event in self.events)

    @property
    def method_counts(self) -> Counter:
        return Counter(outcome.method for outcome in self.outcomes)

    @property
    def degraded_pairs(self) -> list[int]:
        """Pairs not produced by the full planned SMA (rung > 0)."""
        return [o.pair for o in self.outcomes if o.rung > 0]

    def events_for_pair(self, pair: int) -> list[FaultEvent]:
        return [e for e in self.events if e.pair == pair]

    # -- serialization ---------------------------------------------------------------

    def to_json(self, include_timing: bool = False) -> str:
        """Serialize; the default drops timing keys for the stable schema.

        Timing (monotonic timestamps, measured wall seconds) is host
        state, not run state: two bit-identical runs record different
        clocks.  Checkpoints therefore persist the timing-free form, and
        consumers that want per-pair durations opt in with
        ``include_timing=True``.
        """

        def row(obj) -> dict:
            d = asdict(obj)
            if not include_timing:
                for key in _TIMING_KEYS:
                    d.pop(key, None)
            return d

        return json.dumps(
            {
                "events": [row(e) for e in self.events],
                "outcomes": [row(o) for o in self.outcomes],
            }
        )

    @classmethod
    def from_json(cls, payload: str) -> "RunReport":
        data = json.loads(payload)
        return cls(
            events=[FaultEvent(**e) for e in data.get("events", [])],
            outcomes=[PairOutcome(**o) for o in data.get("outcomes", [])],
        )

    # -- presentation ----------------------------------------------------------------

    def summary_rows(self) -> list[tuple[str, str]]:
        """(label, value) rows for :func:`repro.analysis.report.format_table`."""
        rows: list[tuple[str, str]] = [("pairs processed", str(len(self.outcomes)))]
        for method, count in sorted(self.method_counts.items()):
            rows.append((f"pairs via {method}", str(count)))
        if self.events:
            for kind, count in sorted(self.fault_counts.items()):
                rows.append((f"faults: {kind}", str(count)))
        else:
            rows.append(("faults", "none"))
        recovery = sum(o.seconds for o in self.outcomes if o.rung > 0)
        rows.append(("degraded pairs", str(len(self.degraded_pairs))))
        rows.append(("modeled seconds in degraded pairs", f"{recovery:.3f}"))
        walls = [o.wall_seconds for o in self.outcomes if o.wall_seconds is not None]
        if walls:
            rows.append(("measured wall seconds (timed pairs)", f"{sum(walls):.3f}"))
        return rows
