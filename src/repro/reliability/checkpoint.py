"""Checkpoint/resume for long streaming runs.

After every completed frame pair the runner persists its entire
mutable state to a single ``.npz``: the accumulated motion-field sums,
the last good per-pair field (the temporal-interpolation fallback
needs it), the run report, the cost-ledger phase buckets, the
retry-jitter RNG state and the fault-injection budgets.  The write is
atomic, so a kill at any instant leaves either the previous or the
next checkpoint -- never a truncated one -- and resuming replays the
remaining pairs to a **bit-identical** final field, ledger and report.

A ``fingerprint`` (config name, shape, pair count, fault-plan digest)
guards against resuming with mismatched inputs.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

import numpy as np

from ..ioutil import atomic_savez
from .report import RunReport

CHECKPOINT_VERSION = 1


class CheckpointError(ValueError):
    """A checkpoint could not be loaded or does not match the run."""


@dataclass
class StreamState:
    """Complete mutable state of a streaming run after ``pairs_done`` pairs."""

    fingerprint: str
    n_pairs: int
    pairs_done: int
    sum_u: np.ndarray
    sum_v: np.ndarray
    sum_error: np.ndarray
    last_u: np.ndarray
    last_v: np.ndarray
    last_error: np.ndarray
    has_last: bool = False
    report: RunReport = field(default_factory=RunReport)
    ledger_state: dict = field(default_factory=dict)
    rng_state: dict | None = None
    fault_state: dict = field(default_factory=dict)

    @classmethod
    def fresh(cls, fingerprint: str, n_pairs: int, shape: tuple[int, int]) -> "StreamState":
        zeros = lambda: np.zeros(shape, dtype=np.float64)  # noqa: E731
        return cls(
            fingerprint=fingerprint,
            n_pairs=n_pairs,
            pairs_done=0,
            sum_u=zeros(),
            sum_v=zeros(),
            sum_error=zeros(),
            last_u=zeros(),
            last_v=zeros(),
            last_error=zeros(),
        )


def save_checkpoint(path: str, state: StreamState) -> str:
    """Atomically persist a :class:`StreamState`; returns the path written."""
    meta = {
        "version": CHECKPOINT_VERSION,
        "fingerprint": state.fingerprint,
        "n_pairs": state.n_pairs,
        "pairs_done": state.pairs_done,
        "has_last": state.has_last,
        "ledger_state": state.ledger_state,
        "rng_state": state.rng_state,
        "fault_state": state.fault_state,
    }
    return atomic_savez(
        path,
        meta_json=np.array(json.dumps(meta)),
        report_json=np.array(state.report.to_json()),
        sum_u=state.sum_u,
        sum_v=state.sum_v,
        sum_error=state.sum_error,
        last_u=state.last_u,
        last_v=state.last_v,
        last_error=state.last_error,
    )


def load_checkpoint(path: str) -> StreamState:
    """Inverse of :func:`save_checkpoint`."""
    try:
        with np.load(path, allow_pickle=False) as data:
            meta = json.loads(str(data["meta_json"]))
            if meta.get("version") != CHECKPOINT_VERSION:
                raise CheckpointError(
                    f"checkpoint version {meta.get('version')} != {CHECKPOINT_VERSION}"
                )
            return StreamState(
                fingerprint=meta["fingerprint"],
                n_pairs=int(meta["n_pairs"]),
                pairs_done=int(meta["pairs_done"]),
                sum_u=data["sum_u"],
                sum_v=data["sum_v"],
                sum_error=data["sum_error"],
                last_u=data["last_u"],
                last_v=data["last_v"],
                last_error=data["last_error"],
                has_last=bool(meta["has_last"]),
                report=RunReport.from_json(str(data["report_json"])),
                ledger_state=meta.get("ledger_state", {}),
                rng_state=meta.get("rng_state"),
                fault_state=meta.get("fault_state", {}),
            )
    except (OSError, KeyError, json.JSONDecodeError, ValueError) as exc:
        if isinstance(exc, CheckpointError):
            raise
        raise CheckpointError(f"cannot load checkpoint {path!r}: {exc}") from exc
