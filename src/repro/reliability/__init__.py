"""Fault tolerance for long-sequence streaming SMA runs.

The paper's operational workload streams 490 GOES-9 frames through the
MPDA; this subsystem makes that survivable: seeded fault injection
(:mod:`.faults`, :mod:`.injection`), ingest-boundary validation
(:mod:`.validation`), ledger-charged retry (:mod:`.retry`), atomic
checkpoint/resume (:mod:`.checkpoint`), a graceful-degradation ladder
(:mod:`.degrade`), structured run reporting (:mod:`.report`) and the
streaming driver tying them together (:mod:`.stream`).
"""

from .checkpoint import (
    CHECKPOINT_VERSION,
    CheckpointError,
    StreamState,
    load_checkpoint,
    save_checkpoint,
)
from .degrade import DegradationLadder, LadderStep, RungResult
from .faults import CORRUPTION_MODES, FaultPlan, corrupt_frame, corruption_seed
from .injection import FaultyDiskArray
from .report import RUNG_NAMES, FaultEvent, PairOutcome, RunReport
from .retry import PHASE_RECOVERY, RetryPolicy
from .stream import PHASE_STREAMING, StreamingRunner, StreamResult
from .validation import (
    DEFAULT_MAX_ABS,
    FrameValidationError,
    is_valid_frame,
    validate_frame,
)

__all__ = [
    "CHECKPOINT_VERSION",
    "CheckpointError",
    "StreamState",
    "load_checkpoint",
    "save_checkpoint",
    "DegradationLadder",
    "LadderStep",
    "RungResult",
    "CORRUPTION_MODES",
    "FaultPlan",
    "corrupt_frame",
    "corruption_seed",
    "FaultyDiskArray",
    "RUNG_NAMES",
    "FaultEvent",
    "PairOutcome",
    "RunReport",
    "PHASE_RECOVERY",
    "RetryPolicy",
    "PHASE_STREAMING",
    "StreamingRunner",
    "StreamResult",
    "DEFAULT_MAX_ABS",
    "FrameValidationError",
    "is_valid_frame",
    "validate_frame",
]
