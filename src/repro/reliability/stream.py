"""Fault-tolerant streaming driver for long frame sequences.

This is the operational shell around the paper's headline workload --
streaming a dense Hurricane-Luis-style sequence through the MPDA --
hardened so that *no single bad frame kills a 490-frame run*:

* frames are staged to the (optionally fault-injecting) disk array and
  read back pair by pair, validated on every read,
* transient disk faults are retried with backoff, charged to the cost
  ledger under ``"Fault recovery"``,
* unproducible pairs walk the :class:`~repro.reliability.degrade.DegradationLadder`
  instead of raising,
* after every pair the full run state is checkpointed atomically, and
  a killed run resumes to a bit-identical final field, ledger and
  report.

The run's product is the time-mean motion field over all pairs (the
sequence-level wind climatology the forecaster actually wants), plus a
:class:`~repro.reliability.report.RunReport` confessing every fault
and every degraded pair.
"""

from __future__ import annotations

import dataclasses
import os
import time

import numpy as np

from ..core.field import MotionField
from ..core.matching import valid_mask
from ..core.prep import FramePreparationCache
from ..core.sma import Frame
from ..data.datasets import frame_key
from ..maspar.cost import CostLedger
from ..maspar.disk import DiskError, DiskWriteError, ParallelDiskArray
from ..maspar.machine import MachineConfig
from ..obs import absorb_payload
from ..obs.metrics import METRICS
from ..obs.tracing import TRACER
from ..params import NeighborhoodConfig
from ..parallel.memory_plan import max_feasible_segment_rows, plan as memory_plan
from ..parallel.parallel_sma import machine_for_image
from .checkpoint import CheckpointError, StreamState, load_checkpoint, save_checkpoint
from .degrade import DegradationLadder
from .faults import FaultPlan
from .injection import FaultyDiskArray
from .report import RUNG_NAMES, RunReport
from .retry import RetryPolicy
from .validation import FrameValidationError, validate_frame

#: Ledger phase for MPDA traffic of the streaming loop.
PHASE_STREAMING = "Disk streaming"


@dataclasses.dataclass
class StreamResult:
    """Outcome of a streaming run (possibly partial, if stopped early)."""

    field: MotionField | None
    report: RunReport
    ledger: CostLedger
    pairs_done: int
    n_pairs: int
    completed: bool
    resumed: bool


class StreamingRunner:
    """Drives a frame sequence through the fault-tolerant streaming path.

    Parameters
    ----------
    config:
        Neighborhood configuration for the SMA rungs.
    machine:
        Healthy machine; defaults to a grid fitted to the image.
    retry:
        Bounds and backoff for transient-fault retries.
    fault_plan:
        Optional injected-fault schedule (None streams cleanly).
    checkpoint_path:
        Where to persist run state after every pair (None disables).
    workers:
        Shard independent pairs over a process pool (``> 1``).  The
        main process still performs every order-sensitive step (disk
        fetches, ledger charges, report events, checkpoints), so the
        run's field, ledger and report stay bit-identical to the
        sequential path.  Incompatible with ``fault_plan``: injected
        faults thread state (retry RNG, fault counters, prior fields)
        between consecutive pairs, which a pool cannot honor.  In
        workers mode checkpoints land at wave boundaries (every
        ``workers`` pairs) instead of after every pair.
    """

    def __init__(
        self,
        config: NeighborhoodConfig,
        machine: MachineConfig | None = None,
        retry: RetryPolicy | None = None,
        fault_plan: FaultPlan | None = None,
        checkpoint_path: str | None = None,
        hs_iterations: int = 60,
        pixel_km: float = 1.0,
        workers: int | None = None,
        search: str = "exhaustive",
        backend: str = "auto",
        transport: str = "pickle",
    ) -> None:
        from ..parallel.pairs import resolve_transport

        if workers is not None and workers < 1:
            raise ValueError("workers must be a positive integer")
        if workers is not None and workers > 1 and fault_plan is not None:
            raise ValueError(
                "workers cannot be combined with fault injection: fault "
                "handling threads state between consecutive pairs"
            )
        self.config = config
        self.machine = machine
        self.retry = retry if retry is not None else RetryPolicy()
        self.fault_plan = fault_plan
        self.checkpoint_path = checkpoint_path
        self.pixel_km = pixel_km
        self.workers = workers
        self.search = search
        # DegradationLadder validates backend against the bit-identical set.
        self.backend = backend
        # Pool frame transport ("pickle" or "shm") -- results are
        # bit-identical either way, so the checkpoint fingerprint does
        # NOT record it: a run may resume under the other transport.
        self.transport = resolve_transport(transport)
        self.ladder = DegradationLadder(
            config, hs_iterations=hs_iterations, search=search, backend=backend
        )

    # -- helpers --------------------------------------------------------------------

    def _fingerprint(self, shape: tuple[int, int], n_pairs: int) -> str:
        plan_digest = self.fault_plan.fingerprint() if self.fault_plan else "no-faults"
        c = self.config
        params = f"w{c.n_w}zs{c.n_zs}zt{c.n_zt}ss{c.n_ss}st{c.n_st}"
        base = f"{c.name}:{params}|{shape[0]}x{shape[1]}|{n_pairs}|{plan_digest}"
        # The default schedule keeps the historical fingerprint so
        # pre-existing checkpoints still resume; pruned produces
        # bit-identical fields, but a checkpoint's ledger/GE counts are
        # schedule-dependent, so the modes must not share checkpoints.
        if self.search != "exhaustive":
            base += f"|search={self.search}"
        # Same reasoning for the kernel backend: "auto", "numpy" and
        # "native" all produce bit-identical products, but the default
        # spelling keeps old checkpoints resumable; a non-default pin is
        # recorded so differently-pinned runs never share a checkpoint.
        if self.backend != "auto":
            base += f"|backend={self.backend}"
        return base

    def _checkpoint_file(self) -> str | None:
        if self.checkpoint_path is None:
            return None
        path = self.checkpoint_path
        return path if path.endswith(".npz") else path + ".npz"

    def _stage(self, frames, disk, ledger, rng, report: RunReport, quiet: bool) -> None:
        """Write the sequence to the disk array, retrying transient faults.

        ``quiet`` suppresses events/charges on resume (the restored
        checkpoint already accounts for the original staging).
        """
        for m, frame in enumerate(frames):
            payloads = [(frame_key(m), np.asarray(frame.surface, dtype=np.float64))]
            if frame.intensity is not None:
                payloads.append(
                    (frame_key(m, "intensity"), np.asarray(frame.intensity, dtype=np.float64))
                )
            for key, payload in payloads:
                for attempt in range(1, self.retry.max_attempts + 1):
                    try:
                        disk.write_frame(key, payload)
                        if attempt > 1 and not quiet:
                            report.record_event(
                                -1, "recovery", f"{key} written on attempt {attempt}",
                                "recovered", frame=m,
                            )
                        break
                    except DiskWriteError as exc:
                        if quiet:
                            continue
                        report.record_event(-1, "disk-write-error", str(exc), "retried", frame=m)
                        if attempt < self.retry.max_attempts:
                            self.retry.charge_backoff(attempt, ledger, rng)
                else:
                    if not quiet:
                        report.record_event(
                            -1, "disk-write-error",
                            f"{key}: write retries exhausted; frame missing on disk",
                            "gave-up", frame=m,
                        )

    def _fetch(
        self,
        disk,
        frame_idx: int,
        expected_shape: tuple[int, int],
        ledger: CostLedger,
        rng,
        report: RunReport,
        pair: int,
        channel: str | None = None,
    ) -> np.ndarray | None:
        """One frame off the disk: read, validate, retry; None if unrecoverable."""
        key = frame_key(frame_idx, channel)
        with TRACER.span("stream.fetch", frame=frame_idx, channel=channel or "surface"):
            return self._fetch_inner(
                disk, key, frame_idx, expected_shape, ledger, rng, report, pair
            )

    def _fetch_inner(
        self, disk, key, frame_idx, expected_shape, ledger, rng, report, pair
    ) -> np.ndarray | None:
        for attempt in range(1, self.retry.max_attempts + 1):
            last = attempt == self.retry.max_attempts
            try:
                with ledger.phase(PHASE_STREAMING):
                    arr = disk.read_frame(key)
            except DiskError as exc:
                report.record_event(
                    pair, "disk-read-error", str(exc),
                    "gave-up" if last else "retried", frame=frame_idx,
                )
                if last:
                    return None
                self.retry.charge_backoff(attempt, ledger, rng)
                continue
            except KeyError as exc:
                report.record_event(
                    pair, "disk-read-error", f"missing frame: {exc}", "gave-up", frame=frame_idx
                )
                return None
            try:
                validate_frame(arr, expected_shape=expected_shape, name=key)
            except FrameValidationError as exc:
                report.record_event(
                    pair, "corrupt-frame", str(exc),
                    "gave-up" if last else "retried", frame=frame_idx,
                )
                if last:
                    return None
                self.retry.charge_backoff(attempt, ledger, rng)
                continue
            if attempt > 1:
                report.record_event(
                    pair, "recovery", f"{key} read cleanly on attempt {attempt}",
                    "recovered", frame=frame_idx,
                )
            return arr
        return None  # pragma: no cover - loop always returns

    def _machine_for_pair(self, pair: int, shape, machine, report: RunReport):
        """Healthy machine, unless dead PE rows force a smaller fold."""
        plan = self.fault_plan
        dead = plan.dead_rows_at(pair) if plan else 0
        if dead <= 0:
            return machine
        reduced = machine_for_image(
            shape,
            max_grid=max(1, machine.nyproc - dead),
            pe_memory_bytes=machine.pe_memory_bytes,
        )
        if plan and pair in plan.dead_pe_rows:
            report.record_event(
                pair, "dead-pe-rows",
                f"{dead} PE row(s) dead; refolded onto "
                f"{reduced.nyproc}x{reduced.nxproc}",
                "remapped",
            )
        return reduced

    def _fetch_pair(self, disk, pair, shape, ledger, rng, report, has_intensity):
        """Both frames of a pair (+ intensity channels) off the disk, in order."""
        before = self._fetch(disk, pair, shape, ledger, rng, report, pair)
        after = self._fetch(disk, pair + 1, shape, ledger, rng, report, pair)
        int_before = int_after = None
        if has_intensity and before is not None and after is not None:
            int_before = self._fetch(
                disk, pair, shape, ledger, rng, report, pair, channel="intensity"
            )
            int_after = self._fetch(
                disk, pair + 1, shape, ledger, rng, report, pair, channel="intensity"
            )
            if int_before is None or int_after is None:
                before = after = None  # the semi-fluid model needs both channels
        return before, after, int_before, int_after

    def _fit_images_for_pair(self, pair: int, int_before) -> int | None:
        """Positional surface-fit charge for the ledger.

        Pair 0 pays full price (both frames); later pairs pay for the
        newly arrived frame only, because the preparation cache already
        holds the shared frame's fit.  Keyed on the pair *index*, not on
        cache warmth, so a resumed run (which restarts with a cold
        cache) reproduces the uninterrupted run's ledger exactly.
        """
        if pair == 0:
            return None
        full = 4 if self.config.is_semifluid or int_before is not None else 2
        return full // 2

    @staticmethod
    def _absorb(pair, result, state, ledger, report, wall_seconds=None) -> None:
        """Merge one pair's result into the running state, in pair order."""
        state.sum_u += result.u
        state.sum_v += result.v
        state.sum_error += result.error
        state.last_u = np.array(result.u, dtype=np.float64, copy=True)
        state.last_v = np.array(result.v, dtype=np.float64, copy=True)
        state.last_error = np.array(result.error, dtype=np.float64, copy=True)
        state.has_last = True
        if result.ledger is not None:
            ledger.merge(result.ledger)
        report.record_outcome(
            pair, result.rung, result.segment_rows, result.seconds,
            wall_seconds=wall_seconds,
        )
        state.pairs_done = pair + 1

    @staticmethod
    def _save_checkpoint(checkpoint_file, state, ledger, report, rng, disk) -> None:
        state.report = report
        state.ledger_state = ledger.snapshot()
        state.rng_state = rng.bit_generator.state
        if isinstance(disk, FaultyDiskArray):
            state.fault_state = disk.fault_state()
        with TRACER.span("checkpoint.write", pairs_done=state.pairs_done):
            save_checkpoint(checkpoint_file, state)
        METRICS.inc("checkpoint.writes")

    def _run_pool(
        self,
        frame_list,
        state,
        n_pairs,
        shape,
        dts,
        machine,
        disk,
        ledger,
        rng,
        report,
        stop_after,
        checkpoint_file,
    ) -> None:
        """Workers mode: shard pairs over a pool, wave by wave.

        Only runs without a fault plan (enforced at construction), so
        every pair is independent: the machine is healthy, retries never
        fire, and the interpolation rung's prior-field dependence is
        unreachable for frames that staged successfully.  The main
        process fetches frames and merges results strictly in pair
        order, so ledger charges and report rows land exactly as the
        sequential path would place them.  Checkpoints are written at
        wave boundaries -- at those points the ledger matches the
        sequential run's checkpoint bit for bit, which keeps resume
        (sequential or pooled) bit-identical.
        """
        from ..parallel.pairs import LadderPool

        processed = 0
        n_procs = min(self.workers, max(1, n_pairs - state.pairs_done))
        with LadderPool(
            self.config,
            self.ladder.hs_iterations,
            n_procs,
            search=self.search,
            backend=self.backend,
            transport=self.transport,
        ) as pool:
            pair = state.pairs_done
            while pair < n_pairs:
                remaining = n_pairs - pair
                if stop_after is not None:
                    remaining = min(remaining, stop_after - processed)
                if remaining <= 0:
                    break
                wave = min(self.workers, remaining)

                pending = []
                for p in range(pair, pair + wave):
                    machine_p = self._machine_for_pair(p, shape, machine, report)
                    layers = machine_p.layers_for_image(*shape)
                    planned = max(
                        1, max_feasible_segment_rows(self.config, layers, machine_p)
                    )
                    has_intensity = frame_list[p].intensity is not None
                    before, after, int_before, int_after = self._fetch_pair(
                        disk, p, shape, ledger, rng, report, has_intensity
                    )
                    if before is None or after is None:
                        pending.append((p, None))
                        continue
                    task = (
                        p, before, after, machine_p, planned, dts[p],
                        int_before, int_after,
                        self._fit_images_for_pair(p, int_before),
                    )
                    pending.append((p, pool.submit(task)))

                for p, handle in pending:
                    wall = None
                    if handle is None:
                        result = DegradationLadder.interpolate(
                            shape, None, None, None
                        )
                        report.record_event(
                            p, "frame-unusable",
                            "frame pair unrecoverable after retries", "interpolated",
                        )
                    else:
                        _, result, steps, wall, payload = pool.resolve(handle)
                        absorb_payload(payload)
                        for step in steps:
                            report.record_event(
                                p, step.kind, step.detail, RUNG_NAMES[result.rung]
                            )
                    self._absorb(p, result, state, ledger, report, wall_seconds=wall)
                    processed += 1

                if checkpoint_file:
                    self._save_checkpoint(
                        checkpoint_file, state, ledger, report, rng, disk
                    )
                pair += wave

    # -- the run --------------------------------------------------------------------

    def run(
        self,
        frames,
        resume: bool = False,
        stop_after: int | None = None,
    ) -> StreamResult:
        """Stream the sequence end to end (or ``stop_after`` pairs of it).

        ``resume=True`` continues from the checkpoint if one exists and
        matches this run's fingerprint; a fresh run otherwise.
        """
        frame_list = [f if isinstance(f, Frame) else Frame(np.asarray(f)) for f in frames]
        if len(frame_list) < 2:
            raise ValueError("a streaming run needs at least two frames")
        shape = frame_list[0].shape
        for m, f in enumerate(frame_list):
            if f.shape != shape:
                raise ValueError(f"frame {m} shape {f.shape} != {shape}")
        n_pairs = len(frame_list) - 1
        dts = []
        for m in range(n_pairs):
            dt = frame_list[m + 1].time_seconds - frame_list[m].time_seconds
            dts.append(dt if dt > 0 else 1.0)

        machine = self.machine or machine_for_image(shape)
        ledger = CostLedger(machine)
        report = RunReport()
        fingerprint = self._fingerprint(shape, n_pairs)
        checkpoint_file = self._checkpoint_file()

        state: StreamState | None = None
        if resume and checkpoint_file and os.path.exists(checkpoint_file):
            state = load_checkpoint(checkpoint_file)
            if state.fingerprint != fingerprint:
                raise CheckpointError(
                    f"checkpoint fingerprint {state.fingerprint!r} does not match "
                    f"this run ({fingerprint!r}); refusing to resume"
                )
            report = state.report
            ledger.restore(state.ledger_state)
        resumed = state is not None
        if state is None:
            state = StreamState.fresh(fingerprint, n_pairs, shape)

        rng = np.random.default_rng(self.fault_plan.seed if self.fault_plan else 0)
        if resumed and state.rng_state is not None:
            rng.bit_generator.state = state.rng_state

        inner = ParallelDiskArray(machine, ledger=None if resumed else ledger)
        disk = FaultyDiskArray(inner, self.fault_plan) if self.fault_plan else inner
        with TRACER.span("stream.stage", frames=len(frame_list), ledger=ledger):
            with ledger.phase(PHASE_STREAMING):
                self._stage(frame_list, disk, ledger, rng, report, quiet=resumed)
        inner.ledger = ledger
        if resumed and isinstance(disk, FaultyDiskArray) and state.fault_state:
            disk.restore_fault_state(state.fault_state)

        prep_cache = FramePreparationCache(max_frames=4)
        if self.workers is not None and self.workers > 1:
            self._run_pool(
                frame_list, state, n_pairs, shape, dts, machine, disk,
                ledger, rng, report, stop_after, checkpoint_file,
            )
        else:
            processed_this_call = 0
            for pair in range(state.pairs_done, n_pairs):
                if stop_after is not None and processed_this_call >= stop_after:
                    break
                machine_p = self._machine_for_pair(pair, shape, machine, report)

                layers = machine_p.layers_for_image(*shape)
                planned = max(
                    1, max_feasible_segment_rows(self.config, layers, machine_p)
                )

                machine_run = machine_p
                if self.fault_plan and pair in self.fault_plan.pe_memory_faults:
                    budget = memory_plan(self.config, layers, planned).total_bytes
                    squeezed = min(machine_p.pe_memory_bytes, budget - 1)
                    machine_run = dataclasses.replace(
                        machine_p, pe_memory_bytes=squeezed
                    )

                has_intensity = frame_list[pair].intensity is not None
                pair_span = TRACER.span("stream.pair", pair=pair, ledger=ledger)
                pair_span.__enter__()
                t0 = time.perf_counter()
                try:
                    before, after, int_before, int_after = self._fetch_pair(
                        disk, pair, shape, ledger, rng, report, has_intensity
                    )

                    last_u = state.last_u if state.has_last else None
                    last_v = state.last_v if state.has_last else None
                    last_err = state.last_error if state.has_last else None
                    if before is None or after is None:
                        result = DegradationLadder.interpolate(
                            shape, last_u, last_v, last_err
                        )
                        report.record_event(
                            pair, "frame-unusable",
                            "frame pair unrecoverable after retries", "interpolated",
                        )
                    else:
                        result, steps = self.ladder.track_pair(
                            before,
                            after,
                            machine_run,
                            planned,
                            dt_seconds=dts[pair],
                            intensity_before=int_before,
                            intensity_after=int_after,
                            last_u=last_u,
                            last_v=last_v,
                            last_error=last_err,
                            prep_cache=prep_cache,
                            fit_images=self._fit_images_for_pair(pair, int_before),
                        )
                        for step in steps:
                            report.record_event(
                                pair, step.kind, step.detail, RUNG_NAMES[result.rung]
                            )
                finally:
                    pair_span.__exit__(None, None, None)

                self._absorb(
                    pair, result, state, ledger, report,
                    wall_seconds=time.perf_counter() - t0,
                )
                processed_this_call += 1

                if checkpoint_file:
                    self._save_checkpoint(
                        checkpoint_file, state, ledger, report, rng, disk
                    )

        field = None
        if state.pairs_done > 0:
            n = state.pairs_done
            field = MotionField(
                u=state.sum_u / n,
                v=state.sum_v / n,
                valid=valid_mask(shape, self.config),
                error=state.sum_error / n,
                dt_seconds=float(np.mean(dts)),
                pixel_km=self.pixel_km,
                metadata={
                    "model": "semi-fluid" if self.config.is_semifluid else "continuous",
                    "config": self.config.name,
                    "pairs": n,
                    "degraded_pairs": len(report.degraded_pairs),
                    "machine": f"{machine.nyproc}x{machine.nxproc}",
                },
            )
        return StreamResult(
            field=field,
            report=report,
            ledger=ledger,
            pairs_done=state.pairs_done,
            n_pairs=n_pairs,
            completed=state.pairs_done == n_pairs,
            resumed=resumed,
        )

    # -- live ingestion -------------------------------------------------------------

    def run_live(self, source, max_pairs: int | None = None) -> StreamResult:
        """Consume frames from a live ring as they arrive (``ring://NAME``).

        ``source`` is a :class:`~repro.bus.source.RingFrameSource`.  The
        per-pair computation is exactly :meth:`run`'s sequential path --
        same ladder, same positional surface-fit charges, same absorb
        order -- so on an identical frame sequence the per-pair fields
        (and the mean field) are bit-identical to a batch run.  What
        differs is the shell: frames stream from shared memory instead
        of being staged to the disk array, there are no checkpoints
        (the ring is the source of truth; a restarted consumer re-reads
        what is still resident), and a frame the publisher overwrote or
        tore before we read it is interpolated over like an
        unrecoverable disk frame, with the gap confessed in the report.
        """
        if self.fault_plan is not None:
            raise ValueError("fault injection applies to staged runs, not live rings")
        if self.workers is not None and self.workers > 1:
            raise ValueError(
                "live consumption is sequential: pairs chain through "
                "last-field state as frames arrive"
            )

        ledger = None
        report = RunReport()
        prep_cache = FramePreparationCache(max_frames=4)
        state = None
        machine = None
        planned = None
        shape = None
        dts: list[float] = []
        prev = None  # previous BusFrame
        pair = 0

        for bus_frame in source.frames():
            frame = bus_frame.frame
            if shape is None:
                shape = frame.shape
                machine = self.machine or machine_for_image(shape)
                ledger = CostLedger(machine)
                layers = machine.layers_for_image(*shape)
                planned = max(
                    1, max_feasible_segment_rows(self.config, layers, machine)
                )
                state = StreamState.fresh(
                    self._fingerprint(shape, 0) + "|live", 0, shape
                )
            elif frame.shape != shape:
                report.record_event(
                    pair, "corrupt-frame",
                    f"live frame shape {frame.shape} != {shape}", "skipped",
                )
                continue
            if bus_frame.preparation is not None:
                prep_cache.seed(bus_frame.preparation)
            if prev is None:
                prev = bus_frame
                continue

            gap = bus_frame.seq - prev.seq - 1
            if gap > 0:
                report.record_event(
                    pair, "frames-missed",
                    f"{gap} frame(s) overwritten or torn before read "
                    f"(seq {prev.seq + 1}..{bus_frame.seq - 1})",
                    "interpolated",
                )
                METRICS.inc("stream.live.gaps")
            dt = frame.time_seconds - prev.frame.time_seconds
            dts.append(dt if dt > 0 else 1.0)

            t0 = time.perf_counter()
            with TRACER.span("stream.pair", pair=pair, ledger=ledger):
                result, steps = self.ladder.track_pair(
                    prev.frame.surface,
                    frame.surface,
                    machine,
                    planned,
                    dt_seconds=dts[-1],
                    intensity_before=prev.frame.intensity,
                    intensity_after=frame.intensity,
                    last_u=state.last_u if state.has_last else None,
                    last_v=state.last_v if state.has_last else None,
                    last_error=state.last_error if state.has_last else None,
                    prep_cache=prep_cache,
                    fit_images=self._fit_images_for_pair(
                        pair, prev.frame.intensity
                    ),
                )
            for step in steps:
                report.record_event(
                    pair, step.kind, step.detail, RUNG_NAMES[result.rung]
                )
            self._absorb(
                pair, result, state, ledger, report,
                wall_seconds=time.perf_counter() - t0,
            )
            METRICS.inc("stream.live.pairs")
            pair += 1
            prev = bus_frame
            if max_pairs is not None and pair >= max_pairs:
                break

        if state is None:
            raise RuntimeError(
                f"ring {source.name!r} closed before yielding a single frame"
            )
        field = None
        if state.pairs_done > 0:
            n = state.pairs_done
            field = MotionField(
                u=state.sum_u / n,
                v=state.sum_v / n,
                valid=valid_mask(shape, self.config),
                error=state.sum_error / n,
                dt_seconds=float(np.mean(dts)),
                pixel_km=self.pixel_km,
                metadata={
                    "model": "semi-fluid" if self.config.is_semifluid else "continuous",
                    "config": self.config.name,
                    "pairs": n,
                    "degraded_pairs": len(report.degraded_pairs),
                    "machine": f"{machine.nyproc}x{machine.nxproc}",
                    "source": f"ring://{source.name}",
                    "frames_missed": source.missed,
                },
            )
        return StreamResult(
            field=field,
            report=report,
            ledger=ledger,
            pairs_done=state.pairs_done,
            n_pairs=pair,
            completed=True,
            resumed=False,
        )
