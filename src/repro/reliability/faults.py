"""Seeded, deterministic fault plans for streaming SMA runs.

Real satellite ingest treats dropped and garbled frames as routine;
reproducing that operationally requires *injecting* such faults on
demand, deterministically, so that a failure observed once can be
replayed exactly.  A :class:`FaultPlan` is a frozen description of
every fault a run will encounter:

* **frame corruption** -- NaN speckle, truncation or bit-noise applied
  to a frame as it is read back from the disk array (a bad stripe:
  the stored data is fine, the read is not),
* **transient disk read/write failures** -- the first ``k`` accesses
  of a frame raise :class:`~repro.maspar.disk.DiskReadError` /
  :class:`~repro.maspar.disk.DiskWriteError` and then succeed,
  modeling a retried MPDA channel glitch,
* **PE-memory squeezes** -- at a given frame pair the per-PE memory
  available to the planned template-mapping segment shrinks, forcing
  the :class:`~repro.maspar.memory.PEMemoryError` re-planning path,
* **dead PE rows** -- from a given pair onward, rows of the PE array
  are marked dead and the image must be refolded onto a smaller grid.

All randomness is derived from ``(seed, frame index)`` pairs, never
from shared mutable state, so the same plan produces bit-identical
faults whether a run is uninterrupted or checkpointed and resumed.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Mapping

import numpy as np

#: Supported frame-corruption modes.
CORRUPTION_MODES = ("nan-speckle", "truncate", "bit-noise")


def corruption_seed(seed: int, index: int) -> int:
    """Deterministic per-frame RNG seed (stateless, resume-safe)."""
    return (seed * 1_000_003 + index * 7919 + 17) % (2**63)


def corrupt_frame(frame: np.ndarray, mode: str, seed: int) -> np.ndarray:
    """Apply one corruption mode to a copy of ``frame``.

    * ``nan-speckle`` -- ~1% of pixels (at least one) become NaN,
    * ``truncate``    -- the lower half of the frame is lost (short
      read), changing the array shape,
    * ``bit-noise``   -- high-order mantissa/exponent bits of ~1% of
      pixels flip, producing absurd magnitudes (and possibly Inf/NaN).
    """
    if mode not in CORRUPTION_MODES:
        raise ValueError(f"unknown corruption mode {mode!r} (choose from {CORRUPTION_MODES})")
    rng = np.random.default_rng(seed)
    out = np.array(frame, dtype=np.float64, copy=True)
    if mode == "truncate":
        return out[: max(1, out.shape[0] // 2), :]
    n_bad = max(1, out.size // 100)
    flat = out.reshape(-1)
    idx = rng.choice(out.size, size=n_bad, replace=False)
    if mode == "nan-speckle":
        flat[idx] = np.nan
    else:  # bit-noise
        bits = flat.view(np.uint64)
        flips = rng.integers(40, 63, size=n_bad, dtype=np.uint64)
        bits[idx] = bits[idx] ^ (np.uint64(1) << flips)
    return out


@dataclass(frozen=True)
class FaultPlan:
    """Deterministic schedule of injected faults for one streaming run.

    Attributes
    ----------
    seed:
        Root seed for all derived randomness (corruption patterns).
    corrupt_frames:
        ``frame index -> corruption mode`` (persistent: every read of
        that frame is corrupted the same way).
    read_failures / write_failures:
        ``frame index -> number of transient failures`` before the
        access succeeds.
    pe_memory_faults:
        Pair indices at which the PE memory is squeezed just below the
        planned segment budget.
    dead_pe_rows:
        ``pair index -> number of PE rows that die at that pair`` (and
        stay dead for the rest of the run).
    """

    seed: int = 0
    corrupt_frames: Mapping[int, str] = field(default_factory=dict)
    read_failures: Mapping[int, int] = field(default_factory=dict)
    write_failures: Mapping[int, int] = field(default_factory=dict)
    pe_memory_faults: tuple[int, ...] = ()
    dead_pe_rows: Mapping[int, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        for index, mode in self.corrupt_frames.items():
            if mode not in CORRUPTION_MODES:
                raise ValueError(f"frame {index}: unknown corruption mode {mode!r}")
        for name in ("read_failures", "write_failures"):
            for index, count in getattr(self, name).items():
                if count < 1:
                    raise ValueError(f"{name}[{index}] must be >= 1, got {count}")
        for pair, rows in self.dead_pe_rows.items():
            if rows < 1:
                raise ValueError(f"dead_pe_rows[{pair}] must be >= 1, got {rows}")

    # -- queries --------------------------------------------------------------------

    @property
    def is_empty(self) -> bool:
        return not (
            self.corrupt_frames
            or self.read_failures
            or self.write_failures
            or self.pe_memory_faults
            or self.dead_pe_rows
        )

    def corruption_for(self, index: int) -> str | None:
        return self.corrupt_frames.get(index)

    def corruption_seed(self, index: int) -> int:
        return corruption_seed(self.seed, index)

    def dead_rows_at(self, pair: int) -> int:
        """Total PE rows dead once pair ``pair`` is reached (cumulative)."""
        return sum(rows for p, rows in self.dead_pe_rows.items() if p <= pair)

    def fingerprint(self) -> str:
        """Stable digest guarding checkpoint/plan consistency on resume."""
        payload = json.dumps(
            {
                "seed": self.seed,
                "corrupt": sorted((int(k), v) for k, v in self.corrupt_frames.items()),
                "read": sorted((int(k), int(v)) for k, v in self.read_failures.items()),
                "write": sorted((int(k), int(v)) for k, v in self.write_failures.items()),
                "mem": sorted(int(p) for p in self.pe_memory_faults),
                "dead": sorted((int(k), int(v)) for k, v in self.dead_pe_rows.items()),
            },
            sort_keys=True,
        )
        return hashlib.sha256(payload.encode()).hexdigest()[:16]

    # -- constructors ----------------------------------------------------------------

    @classmethod
    def random(
        cls,
        seed: int,
        n_frames: int,
        corrupt_rate: float = 0.05,
        read_failure_rate: float = 0.05,
        memory_fault_rate: float = 0.05,
    ) -> "FaultPlan":
        """A deterministic random plan: same seed, same faults, always."""
        if n_frames < 2:
            raise ValueError("need at least two frames")
        rng = np.random.default_rng(seed)
        corrupt: dict[int, str] = {}
        reads: dict[int, int] = {}
        mem: list[int] = []
        for index in range(n_frames):
            if rng.random() < corrupt_rate:
                corrupt[index] = CORRUPTION_MODES[int(rng.integers(len(CORRUPTION_MODES)))]
            if rng.random() < read_failure_rate:
                reads[index] = int(rng.integers(1, 3))
        for pair in range(n_frames - 1):
            if rng.random() < memory_fault_rate:
                mem.append(pair)
        return cls(
            seed=seed,
            corrupt_frames=corrupt,
            read_failures=reads,
            pe_memory_faults=tuple(mem),
        )

    def describe(self) -> list[tuple[str, str]]:
        """Human-readable (fault, target) rows for reporting."""
        rows: list[tuple[str, str]] = []
        for index, mode in sorted(self.corrupt_frames.items()):
            rows.append(("corrupt-frame", f"frame {index} ({mode})"))
        for index, count in sorted(self.read_failures.items()):
            rows.append(("disk-read-failure", f"frame {index} (x{count} transient)"))
        for index, count in sorted(self.write_failures.items()):
            rows.append(("disk-write-failure", f"frame {index} (x{count} transient)"))
        for pair in sorted(self.pe_memory_faults):
            rows.append(("pe-memory-squeeze", f"pair {pair}"))
        for pair, rows_dead in sorted(self.dead_pe_rows.items()):
            rows.append(("dead-pe-rows", f"{rows_dead} row(s) from pair {pair}"))
        return rows
