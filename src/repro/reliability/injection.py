"""Fault-injecting wrapper around the MPDA model.

:class:`FaultyDiskArray` fronts a real
:class:`~repro.maspar.disk.ParallelDiskArray` and consults a
:class:`~repro.reliability.faults.FaultPlan`:

* the first ``k`` reads/writes of a scheduled frame raise
  :class:`~repro.maspar.disk.DiskReadError` /
  :class:`~repro.maspar.disk.DiskWriteError` (transient channel
  faults -- a retry succeeds),
* reads of a corrupted frame return deterministically garbled data
  (persistent media fault -- a retry returns the same garbage),
* everything else passes straight through, including the cost-ledger
  accounting of the wrapped array.

The remaining-failure budgets are the only mutable fault state; they
can be snapshotted into a checkpoint and restored so a resumed run
sees exactly the faults an uninterrupted run would have seen.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from ..data.datasets import frame_index
from ..maspar.disk import DiskReadError, DiskWriteError, ParallelDiskArray
from .faults import FaultPlan, corrupt_frame


class FaultyDiskArray:
    """A :class:`ParallelDiskArray` that fails on schedule.

    Parameters
    ----------
    inner:
        The real frame store (keeps its own ledger accounting).
    plan:
        The fault schedule.
    index_of:
        Maps a disk key to the frame index the plan speaks of;
        defaults to parsing the ``frame-00012`` convention of
        :func:`repro.data.datasets.frame_key`.  Keys that do not map
        (``None``) are never faulted.
    """

    def __init__(
        self,
        inner: ParallelDiskArray,
        plan: FaultPlan,
        index_of: Callable[[str], int | None] = frame_index,
    ) -> None:
        self.inner = inner
        self.plan = plan
        self.index_of = index_of
        self._reads_left = dict(plan.read_failures)
        self._writes_left = dict(plan.write_failures)
        #: (kind, key) log of every fault actually triggered.
        self.triggered: list[tuple[str, str]] = []

    # -- faulted operations ----------------------------------------------------------

    def write_frame(self, key: str, frame: np.ndarray) -> None:
        index = self.index_of(key)
        if index is not None and self._writes_left.get(index, 0) > 0:
            self._writes_left[index] -= 1
            self.triggered.append(("disk-write-error", key))
            raise DiskWriteError(key, f"transient MPDA write failure on {key!r} (injected)")
        self.inner.write_frame(key, frame)

    def read_frame(self, key: str) -> np.ndarray:
        index = self.index_of(key)
        if index is not None and self._reads_left.get(index, 0) > 0:
            self._reads_left[index] -= 1
            self.triggered.append(("disk-read-error", key))
            raise DiskReadError(key, f"transient MPDA read failure on {key!r} (injected)")
        frame = self.inner.read_frame(key)
        mode = self.plan.corruption_for(index) if index is not None else None
        if mode is not None:
            self.triggered.append(("corrupt-frame", key))
            frame = corrupt_frame(frame, mode, self.plan.corruption_seed(index))
        return frame

    # -- fault-state checkpointing ---------------------------------------------------

    def fault_state(self) -> dict:
        """JSON-serializable remaining-failure budgets."""
        return {
            "reads_left": {str(k): v for k, v in self._reads_left.items()},
            "writes_left": {str(k): v for k, v in self._writes_left.items()},
        }

    def restore_fault_state(self, state: dict) -> None:
        """Resume with the budgets an interrupted run left behind."""
        self._reads_left = {int(k): int(v) for k, v in state.get("reads_left", {}).items()}
        self._writes_left = {int(k): int(v) for k, v in state.get("writes_left", {}).items()}

    # -- passthrough -----------------------------------------------------------------

    def __contains__(self, key: str) -> bool:
        return key in self.inner

    def __len__(self) -> int:
        return len(self.inner)

    def keys(self) -> list[str]:
        return self.inner.keys()

    @property
    def ledger(self):
        return self.inner.ledger

    @ledger.setter
    def ledger(self, value) -> None:
        self.inner.ledger = value

    def transfer_seconds(self, byte_count: int) -> float:
        return self.inner.transfer_seconds(byte_count)
