"""Fault injection: the MPDA disk wrapper and serve-mode worker chaos.

:class:`FaultyDiskArray` fronts a real
:class:`~repro.maspar.disk.ParallelDiskArray` and consults a
:class:`~repro.reliability.faults.FaultPlan`:

* the first ``k`` reads/writes of a scheduled frame raise
  :class:`~repro.maspar.disk.DiskReadError` /
  :class:`~repro.maspar.disk.DiskWriteError` (transient channel
  faults -- a retry succeeds),
* reads of a corrupted frame return deterministically garbled data
  (persistent media fault -- a retry returns the same garbage),
* everything else passes straight through, including the cost-ledger
  accounting of the wrapped array.

The remaining-failure budgets are the only mutable fault state; they
can be snapshotted into a checkpoint and restored so a resumed run
sees exactly the faults an uninterrupted run would have seen.

:class:`ServeChaosPlan` is the serving-layer sibling: a seeded schedule
of *worker* faults (thread crashes, stalls, transient compute faults)
that ``repro serve --chaos`` wires into the
:class:`~repro.serve.workers.WorkerPool`.  Chaos strikes **before** any
frame is resolved or any arithmetic runs, so it can only change *when*
a job's product is computed, never *what* is computed -- served fields
stay bit-identical to ``track_dense``.  Every decision is a pure
function of ``(seed, job sequence number, attempt)`` via the same
:func:`~repro.reliability.faults.corruption_seed` derivation the
streaming fault plans use, so a chaotic run's final job states are
deterministic regardless of thread scheduling.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable

import numpy as np

from ..data.datasets import frame_index
from ..maspar.disk import DiskReadError, DiskWriteError, ParallelDiskArray
from .faults import FaultPlan, corrupt_frame, corruption_seed


class FaultyDiskArray:
    """A :class:`ParallelDiskArray` that fails on schedule.

    Parameters
    ----------
    inner:
        The real frame store (keeps its own ledger accounting).
    plan:
        The fault schedule.
    index_of:
        Maps a disk key to the frame index the plan speaks of;
        defaults to parsing the ``frame-00012`` convention of
        :func:`repro.data.datasets.frame_key`.  Keys that do not map
        (``None``) are never faulted.
    """

    def __init__(
        self,
        inner: ParallelDiskArray,
        plan: FaultPlan,
        index_of: Callable[[str], int | None] = frame_index,
    ) -> None:
        self.inner = inner
        self.plan = plan
        self.index_of = index_of
        self._reads_left = dict(plan.read_failures)
        self._writes_left = dict(plan.write_failures)
        #: (kind, key) log of every fault actually triggered.
        self.triggered: list[tuple[str, str]] = []

    # -- faulted operations ----------------------------------------------------------

    def write_frame(self, key: str, frame: np.ndarray) -> None:
        index = self.index_of(key)
        if index is not None and self._writes_left.get(index, 0) > 0:
            self._writes_left[index] -= 1
            self.triggered.append(("disk-write-error", key))
            raise DiskWriteError(key, f"transient MPDA write failure on {key!r} (injected)")
        self.inner.write_frame(key, frame)

    def read_frame(self, key: str) -> np.ndarray:
        index = self.index_of(key)
        if index is not None and self._reads_left.get(index, 0) > 0:
            self._reads_left[index] -= 1
            self.triggered.append(("disk-read-error", key))
            raise DiskReadError(key, f"transient MPDA read failure on {key!r} (injected)")
        frame = self.inner.read_frame(key)
        mode = self.plan.corruption_for(index) if index is not None else None
        if mode is not None:
            self.triggered.append(("corrupt-frame", key))
            frame = corrupt_frame(frame, mode, self.plan.corruption_seed(index))
        return frame

    # -- fault-state checkpointing ---------------------------------------------------

    def fault_state(self) -> dict:
        """JSON-serializable remaining-failure budgets."""
        return {
            "reads_left": {str(k): v for k, v in self._reads_left.items()},
            "writes_left": {str(k): v for k, v in self._writes_left.items()},
        }

    def restore_fault_state(self, state: dict) -> None:
        """Resume with the budgets an interrupted run left behind."""
        self._reads_left = {int(k): int(v) for k, v in state.get("reads_left", {}).items()}
        self._writes_left = {int(k): int(v) for k, v in state.get("writes_left", {}).items()}

    # -- passthrough -----------------------------------------------------------------

    def __contains__(self, key: str) -> bool:
        return key in self.inner

    def __len__(self) -> int:
        return len(self.inner)

    def keys(self) -> list[str]:
        return self.inner.keys()

    @property
    def ledger(self):
        return self.inner.ledger

    @ledger.setter
    def ledger(self, value) -> None:
        self.inner.ledger = value

    def transfer_seconds(self, byte_count: int) -> float:
        return self.inner.transfer_seconds(byte_count)


# -- serve-mode chaos ---------------------------------------------------------------


class ChaosWorkerCrash(Exception):
    """Injected worker-thread death.

    The worker loop catches this *specifically* and lets the thread die
    without completing or failing the job -- exactly what a segfaulting
    worker would do.  Recovery must come from the outside: the lease
    reaper requeues the job and the pool supervisor respawns the
    thread.
    """


class ChaosTransientFault(RuntimeError):
    """Injected transient compute fault (exercises the retry path)."""


@dataclass(frozen=True)
class ServeChaosPlan:
    """Seeded schedule of worker faults for serve-mode chaos testing.

    Each job's fate is decided once from ``(seed, job.seq)``: with
    probability ``crash_rate`` the worker thread dies on the first
    attempt, with ``stall_rate`` it stalls ``stall_seconds`` on the
    first attempt (long stalls exercise lease expiry / wall-clock
    timeout plus stale-completion suppression), with ``flaky_rate`` the
    first ``flaky_attempts`` attempts raise a transient fault.  Later
    attempts of crash/stall jobs run clean, so chaos demonstrates
    *recovery*; set ``flaky_attempts >= max_attempts`` to manufacture
    dead-letter jobs deterministically.
    """

    seed: int = 0
    crash_rate: float = 0.0
    stall_rate: float = 0.0
    stall_seconds: float = 0.5
    flaky_rate: float = 0.0
    flaky_attempts: int = 1

    def __post_init__(self) -> None:
        for name in ("crash_rate", "stall_rate", "flaky_rate"):
            if not 0.0 <= getattr(self, name) <= 1.0:
                raise ValueError(f"{name} must be in [0, 1]")
        if self.crash_rate + self.stall_rate + self.flaky_rate > 1.0:
            raise ValueError("chaos rates must sum to <= 1")
        if self.stall_seconds < 0:
            raise ValueError("stall_seconds must be >= 0")
        if self.flaky_attempts < 1:
            raise ValueError("flaky_attempts must be >= 1")

    @property
    def is_empty(self) -> bool:
        return self.crash_rate == self.stall_rate == self.flaky_rate == 0.0

    def decide(self, seq: int) -> str | None:
        """The fault (if any) scheduled for job sequence number ``seq``.

        Pure function of ``(self.seed, seq)`` -- thread scheduling and
        claim order cannot change a job's fate.
        """
        draw = float(np.random.default_rng(corruption_seed(self.seed, seq)).random())
        if draw < self.crash_rate:
            return "crash"
        if draw < self.crash_rate + self.stall_rate:
            return "stall"
        if draw < self.crash_rate + self.stall_rate + self.flaky_rate:
            return "flaky"
        return None

    def apply(self, seq: int, attempt: int) -> str | None:
        """Inflict the scheduled fault for ``(seq, attempt)``, if any.

        Raises :class:`ChaosWorkerCrash` / :class:`ChaosTransientFault`
        or sleeps in place; returns the fault name it applied (None for
        a clean attempt).  Must be called before any compute touches
        the job so chaos can never alter the served product.
        """
        fault = self.decide(seq)
        if fault == "crash" and attempt <= 1:
            raise ChaosWorkerCrash(f"chaos: worker crash on job seq {seq} attempt {attempt}")
        if fault == "stall" and attempt <= 1:
            time.sleep(self.stall_seconds)
            return "stall"
        if fault == "flaky" and attempt <= self.flaky_attempts:
            raise ChaosTransientFault(
                f"chaos: transient compute fault on job seq {seq} attempt {attempt}"
            )
        return None

    def expected_outcome(self, seq: int, max_attempts: int) -> tuple[str, int]:
        """Predicted terminal ``(state, attempts)`` for a job.

        The ground truth chaos tests assert against: crash/stall jobs
        finish ``done``; flaky jobs finish ``done`` after
        ``flaky_attempts + 1`` attempts unless the budget runs out
        first, in which case they are ``dead`` at ``max_attempts``.
        """
        fault = self.decide(seq)
        if fault == "flaky":
            if self.flaky_attempts >= max_attempts:
                return "dead", max_attempts
            return "done", self.flaky_attempts + 1
        if fault in ("crash", "stall"):
            # Crash: attempt 1 reaped, attempt 2 clean.  Stall: attempt 1
            # either finishes late (stale-dropped if reaped) or survives;
            # at most one extra attempt either way.
            return "done", 2 if fault == "crash" else 1
        return "done", 1

    @classmethod
    def from_spec(cls, spec: str, seed: int = 0) -> "ServeChaosPlan":
        """Parse a CLI spec like ``crash=0.2,stall=0.1,flaky=0.3``.

        Keys: ``crash``, ``stall``, ``flaky`` (rates), ``stall_seconds``,
        ``flaky_attempts``.  An empty spec means the default light mix.
        """
        if not spec or spec == "default":
            return cls(seed=seed, crash_rate=0.1, stall_rate=0.1, flaky_rate=0.2)
        values: dict[str, float] = {}
        for part in spec.split(","):
            part = part.strip()
            if not part:
                continue
            if "=" not in part:
                raise ValueError(f"bad chaos spec fragment {part!r} (want key=value)")
            key, _, raw = part.partition("=")
            key = key.strip()
            aliases = {"crash": "crash_rate", "stall": "stall_rate", "flaky": "flaky_rate"}
            key = aliases.get(key, key)
            if key not in ("crash_rate", "stall_rate", "flaky_rate",
                           "stall_seconds", "flaky_attempts"):
                raise ValueError(f"unknown chaos spec key {key!r}")
            values[key] = float(raw)
        if "flaky_attempts" in values:
            values["flaky_attempts"] = int(values["flaky_attempts"])  # type: ignore[assignment]
        return cls(seed=seed, **values)

    def describe(self) -> list[tuple[str, str]]:
        """Human-readable (fault, rate) rows for startup logging."""
        rows = []
        if self.crash_rate:
            rows.append(("worker-crash", f"{self.crash_rate:.0%} of jobs, attempt 1"))
        if self.stall_rate:
            rows.append(("worker-stall", f"{self.stall_rate:.0%} of jobs, {self.stall_seconds:g} s"))
        if self.flaky_rate:
            rows.append(
                ("transient-fault", f"{self.flaky_rate:.0%} of jobs, first {self.flaky_attempts} attempt(s)")
            )
        return rows
