"""Graceful degradation: the per-pair fallback ladder.

When the planned parallel SMA cannot produce a pair's motion field,
the runner walks down a ladder instead of killing the sequence:

1. **rung 0** -- parallel SMA at the planned segment size,
2. **rung 1** -- re-plan: the largest template-mapping segment that
   *does* fit the (possibly squeezed) PE memory -- segmentation is
   provably result-identical, so this rung loses nothing but time,
3. **rung 2** -- the prior-art parallel Horn-Schunck baseline (no
   template-mapping store at all, so no segment memory to run out of),
4. **rung 3** -- temporal interpolation: persist the last good field
   (clouds advect smoothly at 1.5-minute cadence; the paper's dense
   Luis sequence is exactly the regime where persistence is sane).

Each rung reports the ledger of what it cost, so degraded pairs still
land in the timing rows.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass

import numpy as np

from ..core.sma import Frame
from ..kernels import BITWISE_BACKENDS
from ..maspar.cost import CostLedger
from ..maspar.machine import MachineConfig, scaled_machine
from ..maspar.memory import PEMemoryError
from ..obs.log import get_logger, log_event
from ..obs.metrics import METRICS
from ..params import NeighborhoodConfig
from ..parallel.memory_plan import max_feasible_segment_rows
from ..parallel.parallel_hs import parallel_horn_schunck
from ..parallel.parallel_sma import ParallelSMA

_LOG = get_logger("degrade")


def _record_step(steps: list, rung: int, kind: str, detail: str) -> None:
    """Append a ladder step, counting and logging the rung failure."""
    steps.append(LadderStep(rung=rung, kind=kind, detail=detail))
    METRICS.inc("degrade.ladder_step")
    log_event(_LOG, logging.WARNING, "degrade.step", rung=rung, kind=kind, detail=detail)


@dataclass
class RungResult:
    """One pair's field plus the rung that produced it."""

    u: np.ndarray
    v: np.ndarray
    error: np.ndarray
    rung: int
    segment_rows: int | None
    ledger: CostLedger | None
    seconds: float
    detail: str = ""


@dataclass
class LadderStep:
    """A failure on one rung, recorded on the way down."""

    rung: int
    kind: str
    detail: str


class DegradationLadder:
    """Walks a frame pair down the fallback rungs until one succeeds.

    Parameters
    ----------
    config:
        Neighborhood configuration of the run.
    hs_iterations / hs_alpha / hs_tolerance:
        Horn-Schunck fallback parameters (rung 2).
    search:
        Hypothesis schedule for the SMA rungs: ``"exhaustive"`` or
        ``"pruned"`` (bit-identical results, fewer GE charges).
    backend:
        Kernel backend for the SMA rungs; restricted to the
        bit-identical set (``"auto"``, ``"numpy"``, ``"native"``) for
        the same reason as ``search``.
    """

    def __init__(
        self,
        config: NeighborhoodConfig,
        hs_iterations: int = 60,
        hs_alpha: float = 1.0,
        hs_tolerance: float = 1e-4,
        search: str = "exhaustive",
        backend: str = "auto",
    ) -> None:
        if search not in ("exhaustive", "pruned"):
            raise ValueError(
                f"DegradationLadder supports search='exhaustive' or 'pruned', "
                f"got {search!r} (streamed products must stay bit-identical)"
            )
        if backend not in BITWISE_BACKENDS:
            raise ValueError(
                f"DegradationLadder supports backend in {BITWISE_BACKENDS}, "
                f"got {backend!r} (streamed products must stay bit-identical)"
            )
        self.config = config
        self.hs_iterations = hs_iterations
        self.hs_alpha = hs_alpha
        self.hs_tolerance = hs_tolerance
        self.search = search
        self.backend = backend

    # -- rungs ----------------------------------------------------------------------

    def _sma(
        self,
        before: np.ndarray,
        after: np.ndarray,
        machine: MachineConfig,
        segment_rows: int,
        dt_seconds: float,
        rung: int,
        intensity_before: np.ndarray | None = None,
        intensity_after: np.ndarray | None = None,
        prep_cache=None,
        fit_images: int | None = None,
    ) -> RungResult:
        driver = ParallelSMA(
            self.config,
            machine=machine,
            segment_rows=segment_rows,
            search=self.search,
            backend=self.backend,
        )
        result = driver.track_pair(
            Frame(before, intensity=intensity_before),
            Frame(after, intensity=intensity_after),
            dt_seconds=dt_seconds,
            prep_cache=prep_cache,
            fit_images=fit_images,
        )
        return RungResult(
            u=result.field.u,
            v=result.field.v,
            error=result.field.error,
            rung=rung,
            segment_rows=result.segment_rows,
            ledger=result.ledger,
            seconds=result.total_seconds,
            detail=f"Z={result.segment_rows}, {result.segments_processed} segment(s)",
        )

    def _horn_schunck(
        self, before: np.ndarray, after: np.ndarray, shape: tuple[int, int]
    ) -> RungResult:
        result = parallel_horn_schunck(
            before,
            after,
            machine=scaled_machine(*shape),
            alpha=self.hs_alpha,
            iterations=self.hs_iterations,
            tolerance=self.hs_tolerance,
        )
        return RungResult(
            u=result.u,
            v=result.v,
            error=np.zeros(shape, dtype=np.float64),
            rung=2,
            segment_rows=None,
            ledger=result.ledger,
            seconds=result.ledger.total_seconds(),
            detail=f"{result.iterations} Jacobi iteration(s)",
        )

    @staticmethod
    def interpolate(
        shape: tuple[int, int],
        last_u: np.ndarray | None,
        last_v: np.ndarray | None,
        last_error: np.ndarray | None,
    ) -> RungResult:
        """Rung 3: persist the last good field (zero motion if none)."""
        if last_u is None or last_v is None:
            u = np.zeros(shape, dtype=np.float64)
            v = np.zeros(shape, dtype=np.float64)
            error = np.zeros(shape, dtype=np.float64)
            detail = "no prior field; zero-motion fill"
        else:
            u = np.array(last_u, dtype=np.float64, copy=True)
            v = np.array(last_v, dtype=np.float64, copy=True)
            error = (
                np.zeros(shape, dtype=np.float64)
                if last_error is None
                else np.array(last_error, dtype=np.float64, copy=True)
            )
            detail = "temporal interpolation of the previous field"
        return RungResult(
            u=u, v=v, error=error, rung=3, segment_rows=None, ledger=None,
            seconds=0.0, detail=detail,
        )

    # -- the walk -------------------------------------------------------------------

    def track_pair(
        self,
        before: np.ndarray,
        after: np.ndarray,
        machine: MachineConfig,
        planned_rows: int,
        dt_seconds: float = 1.0,
        intensity_before: np.ndarray | None = None,
        intensity_after: np.ndarray | None = None,
        last_u: np.ndarray | None = None,
        last_v: np.ndarray | None = None,
        last_error: np.ndarray | None = None,
        prep_cache=None,
        fit_images: int | None = None,
    ) -> tuple[RungResult, list[LadderStep]]:
        """Produce a field for one pair, degrading as needed.

        Returns the first rung that succeeded plus the steps that
        failed on the way down.  ``machine`` may be memory-squeezed or
        grid-reduced by the caller's fault handling; ``planned_rows``
        is the segment size the healthy plan called for.
        ``prep_cache``/``fit_images`` forward to
        :meth:`ParallelSMA.track_pair` (per-frame preparation reuse and
        positional surface-fit accounting).
        """
        shape = np.asarray(before).shape
        steps: list[LadderStep] = []

        try:
            return (
                self._sma(
                    before, after, machine, planned_rows, dt_seconds, rung=0,
                    intensity_before=intensity_before, intensity_after=intensity_after,
                    prep_cache=prep_cache, fit_images=fit_images,
                ),
                steps,
            )
        except PEMemoryError as exc:
            over = exc.shortfall_bytes
            detail = f"planned Z={planned_rows} infeasible"
            if over is not None:
                detail += f" ({over} B/PE over)"
            _record_step(steps, rung=0, kind="pe-memory", detail=detail)

        layers = machine.layers_for_image(*shape)
        feasible = max_feasible_segment_rows(self.config, layers, machine)
        if feasible >= 1:
            try:
                return (
                    self._sma(
                        before, after, machine, feasible, dt_seconds, rung=1,
                        intensity_before=intensity_before, intensity_after=intensity_after,
                        prep_cache=prep_cache, fit_images=fit_images,
                    ),
                    steps,
                )
            except PEMemoryError as exc:
                _record_step(
                    steps, rung=1, kind="pe-memory", detail=f"re-planned Z={feasible}: {exc}"
                )
        else:
            _record_step(
                steps, rung=1, kind="pe-memory", detail="no feasible segment size at all"
            )

        try:
            return self._horn_schunck(before, after, shape), steps
        except (ValueError, MemoryError) as exc:
            _record_step(steps, rung=2, kind="horn-schunck", detail=str(exc))

        return self.interpolate(shape, last_u, last_v, last_error), steps
