"""Frame validation for the streaming path.

Every frame that crosses the disk boundary is checked before it can
reach the 6x6 solves: shape, dtype, finiteness and dynamic range.  A
frame that fails validation is *detected* at the boundary (and retried
or degraded around) instead of propagating garbage into the motion
estimates -- the distinction between a bad pixel and a bad wind field.
"""

from __future__ import annotations

import numpy as np


class FrameValidationError(ValueError):
    """A frame failed an ingest-boundary check.

    ``reason`` is a stable machine-readable tag (``shape``, ``dtype``,
    ``non-finite``, ``dynamic-range``, ``empty``) used by the run
    report; the message carries the human detail.
    """

    def __init__(self, message: str, *, reason: str, name: str = "frame") -> None:
        super().__init__(message)
        self.reason = reason
        self.name = name


#: Magnitudes beyond this are treated as corruption (bit-noise makes
#: float64 pixels explode to ~1e300; real GOES radiances never do).
DEFAULT_MAX_ABS = 1e12


def validate_frame(
    array: np.ndarray,
    expected_shape: tuple[int, int] | None = None,
    name: str = "frame",
    max_abs: float = DEFAULT_MAX_ABS,
) -> np.ndarray:
    """Validate one frame; returns it unchanged or raises.

    Raises
    ------
    FrameValidationError
        With a tagged ``reason`` describing the first failed check.
    """
    arr = np.asarray(array)
    if not np.issubdtype(arr.dtype, np.number) or np.issubdtype(arr.dtype, np.complexfloating):
        raise FrameValidationError(
            f"{name}: dtype {arr.dtype} is not real-numeric", reason="dtype", name=name
        )
    if arr.ndim != 2:
        raise FrameValidationError(
            f"{name}: expected a 2-D image, got shape {arr.shape}", reason="shape", name=name
        )
    if arr.size == 0:
        raise FrameValidationError(f"{name}: empty image", reason="empty", name=name)
    if expected_shape is not None and tuple(arr.shape) != tuple(expected_shape):
        raise FrameValidationError(
            f"{name}: shape {arr.shape} != expected {tuple(expected_shape)} "
            "(truncated or mis-striped read)",
            reason="shape",
            name=name,
        )
    as_float = arr.astype(np.float64, copy=False)
    finite = np.isfinite(as_float)
    if not finite.all():
        n_bad = int((~finite).sum())
        raise FrameValidationError(
            f"{name}: {n_bad} non-finite pixel(s)", reason="non-finite", name=name
        )
    peak = float(np.abs(as_float).max())
    if peak > max_abs:
        raise FrameValidationError(
            f"{name}: |pixel| up to {peak:.3g} exceeds the plausible dynamic "
            f"range ({max_abs:.3g})",
            reason="dynamic-range",
            name=name,
        )
    return array


def is_valid_frame(
    array: np.ndarray,
    expected_shape: tuple[int, int] | None = None,
    max_abs: float = DEFAULT_MAX_ABS,
) -> bool:
    """Boolean form of :func:`validate_frame`."""
    try:
        validate_frame(array, expected_shape=expected_shape, max_abs=max_abs)
    except FrameValidationError:
        return False
    return True
