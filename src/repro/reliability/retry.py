"""Bounded retry-with-backoff, charged to the cost ledger.

A transient MPDA fault costs the run wall-clock time, not operations:
the channel is re-armed, the read re-issued.  :class:`RetryPolicy`
bounds the attempts and models the backoff; the modeled seconds are
charged to the :class:`~repro.maspar.cost.CostLedger` under the
``"Fault recovery"`` phase so recovery appears in the Table 2 / 4
style timing rows next to the compute phases it delayed.

The serving layer reuses the same policy for job-level retries: the
:class:`~repro.serve.queue.JobQueue` schedules a failed or reaped job's
next attempt ``backoff_for(attempt)`` seconds out (``jitter=0`` there,
so chaos-test outcomes are deterministic) and charges the backoff to
the serving ledger under the same phase.  One retry vocabulary, MPDA
channel to HTTP job.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..maspar.cost import CostLedger
from ..obs.metrics import METRICS
from ..obs.tracing import TRACER

#: Ledger phase that accumulates all recovery overhead.
PHASE_RECOVERY = "Fault recovery"


@dataclass(frozen=True)
class RetryPolicy:
    """Exponential-backoff retry bounds.

    ``max_attempts`` counts the first try: 3 means one try plus two
    retries.  Backoff for retry ``k`` (1-based) is ``backoff_seconds *
    backoff_factor**(k-1)``, jittered by ``+/- jitter`` fraction when
    an RNG is supplied (the jitter draw is what makes the runner's RNG
    state part of a checkpoint).
    """

    max_attempts: int = 3
    backoff_seconds: float = 0.05
    backoff_factor: float = 2.0
    jitter: float = 0.1

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.backoff_seconds < 0 or self.backoff_factor < 1 or not 0 <= self.jitter < 1:
            raise ValueError("invalid backoff parameters")

    def backoff_for(self, retry: int, rng: np.random.Generator | None = None) -> float:
        """Modeled seconds to wait before 1-based retry number ``retry``."""
        if retry < 1:
            raise ValueError("retry number is 1-based")
        base = self.backoff_seconds * self.backoff_factor ** (retry - 1)
        if rng is not None and self.jitter > 0:
            base *= 1.0 + self.jitter * float(rng.uniform(-1.0, 1.0))
        return base

    def charge_backoff(
        self,
        retry: int,
        ledger: CostLedger | None = None,
        rng: np.random.Generator | None = None,
    ) -> float:
        """Compute, charge (under ``Fault recovery``) and return a backoff."""
        seconds = self.backoff_for(retry, rng)
        METRICS.inc("retry.backoffs")
        METRICS.observe("retry.backoff_seconds", seconds)
        if ledger is not None:
            with TRACER.span("retry.backoff", retry=retry, ledger=ledger):
                with ledger.phase(PHASE_RECOVERY):
                    ledger.charge_stall(seconds)
        return seconds
