"""Named shared-memory rings for frames and motion fields.

:class:`FrameRing` is the publisher->consumer half of the bus: a
publisher (the ``repro ingest`` daemon, or a pool dispatcher staging a
batch) writes each prepared frame **once** into a slot; any number of
consumers attach by name and map the same planes zero-copy.
:class:`ResultRing` carries dense :class:`~repro.core.field.MotionField`
outputs the opposite direction, with a consumed-cursor handshake so a
fast worker cannot overwrite a field the dispatcher has not collected.

Both are thin layers over :class:`ShmRing`, which owns the segment
lifecycle (create/attach/close/unlink), the seqlock write/read protocol
described in :mod:`repro.bus.layout`, and the stale-segment GC that
reclaims rings whose owning process died without unlinking.

Lifecycle rules:

* exactly one process *owns* a ring (normally its creator) and is
  responsible for :meth:`ShmRing.unlink`;
* every attach deregisters the segment from CPython's
  ``resource_tracker`` so a departing reader can never unlink a ring
  out from under the publisher (the tracker registers unconditionally
  on POSIX before 3.13) -- cleanup is explicit or via
  :func:`gc_stale_segments`, never interpreter-exit magic;
* :func:`gc_stale_segments` scans ``/dev/shm`` for ``repro-bus-*``
  segments whose recorded ``owner_pid`` is no longer alive and unlinks
  them, so a SIGKILLed publisher leaks nothing past the next sweep.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from multiprocessing import resource_tracker, shared_memory

import numpy as np

from ..core.prep import FramePreparation
from ..core.surface import SurfaceGeometry
from ..obs.metrics import METRICS
from . import layout
from .layout import (
    FLAG_INTENSITY,
    FLAG_PARAMS,
    FLAG_PREP,
    FP_BYTES,
    H_CAPACITY,
    H_CHANNELS,
    H_CLOSED,
    H_FLAGS,
    H_HEIGHT,
    H_MAGIC,
    H_OWNER_PID,
    H_VERSION,
    H_WIDTH,
    H_WRITE_CURSOR,
    HEADER_WORDS,
    MAGIC,
    META_COLS,
    SEGMENT_PREFIX,
    VERSION,
)


class RingError(RuntimeError):
    """Base class for bus failures."""


class RingNotFound(RingError):
    """No segment with the requested name exists (never created, or unlinked)."""


class TornSlot(RingError):
    """The slot was mid-write (odd generation) or rewritten during the read."""


class SlotMissed(RingError):
    """The requested sequence number is no longer (or not yet) resident."""


def _unregister(shm: shared_memory.SharedMemory) -> None:
    """Drop ``shm`` from the resource tracker (explicit lifecycle instead).

    CPython < 3.13 registers every ``SharedMemory`` with the tracker,
    including plain attaches, so an exiting reader would unlink the
    publisher's segment.  The bus manages unlink explicitly.
    """
    try:  # pragma: no branch - trivial
        resource_tracker.unregister(shm._name, "shared_memory")
    except Exception:  # pragma: no cover - tracker absent on some platforms
        pass


@dataclass
class SlotRead:
    """One successfully validated slot read.

    ``planes`` is ``(channels, H, W)`` float64 -- a copy by default, or
    a live view into the segment when the caller asked for zero-copy
    (safe only while the slot's generation is unchanged; re-check with
    the owning ring's :meth:`ShmRing.slot_stable`).
    """

    seq: int
    slot: int
    generation: int
    planes: np.ndarray
    meta: np.ndarray
    fingerprint: str


class ShmRing:
    """Fixed-geometry seqlock ring over one shared-memory segment."""

    def __init__(self, shm: shared_memory.SharedMemory, name: str, owner: bool):
        self._shm = shm
        self.name = name
        self.owner = owner
        header = np.ndarray((HEADER_WORDS,), dtype=np.int64, buffer=shm.buf)
        if int(header[H_MAGIC]) != MAGIC:
            raise RingError(f"segment {name!r} is not a repro bus ring")
        if int(header[H_VERSION]) != VERSION:
            raise RingError(
                f"ring {name!r} layout v{int(header[H_VERSION])} != v{VERSION}"
            )
        self.capacity = int(header[H_CAPACITY])
        self.height = int(header[H_HEIGHT])
        self.width = int(header[H_WIDTH])
        self.channels = int(header[H_CHANNELS])
        self.flags = int(header[H_FLAGS])
        off = layout.region_offsets(self.capacity, self.height, self.width, self.channels)
        buf = shm.buf
        self._header = header
        self._generation = np.ndarray(
            (self.capacity,), dtype=np.int64, buffer=buf, offset=off["generation"]
        )
        self._seq = np.ndarray(
            (self.capacity,), dtype=np.int64, buffer=buf, offset=off["seq"]
        )
        self._consumed = np.ndarray(
            (self.capacity,), dtype=np.int64, buffer=buf, offset=off["consumed"]
        )
        self._meta = np.ndarray(
            (self.capacity, META_COLS), dtype=np.float64, buffer=buf, offset=off["meta"]
        )
        self._fp = np.ndarray(
            (self.capacity, FP_BYTES), dtype=np.uint8, buffer=buf, offset=off["fingerprint"]
        )
        self._payload = np.ndarray(
            (self.capacity, self.channels, self.height, self.width),
            dtype=np.float64,
            buffer=buf,
            offset=off["payload"],
        )

    # -- lifecycle ----------------------------------------------------------------

    @classmethod
    def create(
        cls,
        name: str,
        capacity: int,
        height: int,
        width: int,
        channels: int,
        flags: int = 0,
    ) -> "ShmRing":
        """Create, zero and own a new named ring."""
        if capacity < 1:
            raise ValueError("ring capacity must be >= 1")
        size = layout.segment_size(capacity, height, width, channels)
        try:
            shm = shared_memory.SharedMemory(
                name=SEGMENT_PREFIX + name, create=True, size=size
            )
        except FileExistsError:
            raise RingError(f"ring {name!r} already exists (unlink it first)") from None
        _unregister(shm)
        header = np.ndarray((HEADER_WORDS,), dtype=np.int64, buffer=shm.buf)
        header[:] = 0
        header[H_CAPACITY] = capacity
        header[H_HEIGHT] = height
        header[H_WIDTH] = width
        header[H_CHANNELS] = channels
        header[H_FLAGS] = flags
        header[H_OWNER_PID] = os.getpid()
        header[H_VERSION] = VERSION
        header[H_MAGIC] = MAGIC  # magic last: attachers see a valid header or none
        ring = cls(shm, name=name, owner=True)
        ring._seq[:] = -1
        ring._consumed[:] = -1
        return ring

    @classmethod
    def attach(cls, name: str, timeout: float = 0.0, poll: float = 0.02) -> "ShmRing":
        """Attach to an existing ring, optionally waiting for it to appear.

        A segment that exists but fails header validation is retried
        within the timeout too: the creator stamps the magic word last,
        so an attacher racing :meth:`create` can map the segment a beat
        before the header is ready.
        """
        deadline = time.monotonic() + timeout
        t0 = time.perf_counter()
        while True:
            try:
                shm = shared_memory.SharedMemory(name=SEGMENT_PREFIX + name)
            except FileNotFoundError:
                if time.monotonic() >= deadline:
                    raise RingNotFound(f"no ring named {name!r}") from None
                time.sleep(poll)
                continue
            _unregister(shm)
            try:
                ring = cls(shm, name=name, owner=False)
                break
            except RingError:
                shm.close()
                if time.monotonic() >= deadline:
                    raise
                time.sleep(poll)
        METRICS.observe("bus.attach.seconds", time.perf_counter() - t0)
        METRICS.inc("bus.attaches")
        return ring

    def close(self) -> None:
        """Unmap this process's view (does not destroy the segment)."""
        try:
            self._header = self._generation = self._seq = None
            self._consumed = self._meta = self._fp = self._payload = None
            self._shm.close()
        except BufferError:  # pragma: no cover - outstanding zero-copy views
            pass

    def unlink(self) -> None:
        """Destroy the segment.  Idempotent; racing unlinks are benign."""
        try:
            # SharedMemory.unlink() sends its own tracker unregister;
            # re-register first so the messages balance (we already
            # deregistered at create/attach time).
            resource_tracker.register(self._shm._name, "shared_memory")
            self._shm.unlink()
        except FileNotFoundError:
            pass

    def mark_closed(self) -> None:
        """Publisher's end-of-stream signal: consumers drain then detach."""
        self._header[H_CLOSED] = 1

    @property
    def closed(self) -> bool:
        return bool(self._header[H_CLOSED])

    @property
    def owner_pid(self) -> int:
        return int(self._header[H_OWNER_PID])

    @property
    def write_cursor(self) -> int:
        """Next sequence number to be written (== frames published so far)."""
        return int(self._header[H_WRITE_CURSOR])

    @property
    def nbytes(self) -> int:
        return self._shm.size

    @property
    def slot_bytes(self) -> int:
        """Payload bytes per slot -- the pickle bytes one zero-copy read avoids."""
        return self.channels * self.height * self.width * np.dtype(np.float64).itemsize

    def occupancy(self) -> int:
        """Resident, unconsumed slots (for the occupancy gauge)."""
        cursor = self.write_cursor
        low = max(0, cursor - self.capacity)
        return int(
            sum(
                1
                for s in range(low, cursor)
                if self._seq[s % self.capacity] == s
                and self._consumed[s % self.capacity] < s
            )
        )

    # -- seqlock write ------------------------------------------------------------

    def publish(
        self,
        planes,
        meta: list[float],
        fingerprint: str = "",
        wait_consumed: bool = False,
        timeout: float = 30.0,
        seq: int | None = None,
    ) -> int:
        """Write one slot and return its sequence number.

        ``planes`` is an iterable of ``channels`` arrays of shape
        ``(H, W)`` (``None`` entries zero-fill their plane).  With
        ``wait_consumed`` the writer blocks until the slot's current
        occupant was acknowledged via :meth:`mark_consumed` -- the
        result-ring backpressure that keeps fields from being
        overwritten before collection.

        Without ``seq`` the next cursor value is claimed -- a
        read-modify-write that is safe only for a **single** publishing
        process (the frame-ring shape: one ingest daemon or one pool
        dispatcher).  Concurrent publishers -- pool workers returning
        results -- must pass an explicit, externally unique ``seq``
        (the pair index): each writer then owns slot ``seq % capacity``
        outright and no cursor is raced, so two workers can never
        interleave seqlock writes on the same slot.
        """
        if seq is None:
            seq = self.write_cursor
        slot = seq % self.capacity
        if wait_consumed:
            deadline = time.monotonic() + timeout
            while True:
                resident = int(self._seq[slot])
                if resident < 0 or int(self._consumed[slot]) >= resident:
                    break
                if time.monotonic() >= deadline:
                    raise RingError(
                        f"ring {self.name!r} slot {slot} not consumed after {timeout}s"
                    )
                time.sleep(0.001)
        self._generation[slot] += 1  # odd: write in progress
        try:
            for c, plane in enumerate(planes):
                if plane is None:
                    self._payload[slot, c] = 0.0
                else:
                    self._payload[slot, c] = plane
            row = self._meta[slot]
            row[:] = 0.0
            row[: len(meta)] = meta
            fp = fingerprint.encode("ascii")[:FP_BYTES]
            self._fp[slot, : len(fp)] = np.frombuffer(fp, dtype=np.uint8)
            self._fp[slot, len(fp):] = 0
            self._seq[slot] = seq
        finally:
            self._generation[slot] += 1  # even: slot complete
        # Monotonic advance.  Concurrent explicit-seq writers can race
        # the store and briefly understate the cursor; it is advisory on
        # result rings (consumers are handed exact seqs), so the gauge
        # self-heals on the next publish.
        if seq >= self.write_cursor:
            self._header[H_WRITE_CURSOR] = seq + 1
        METRICS.inc("bus.frames.published")
        METRICS.set_gauge("bus.ring.occupancy", float(self.occupancy()))
        return seq

    # -- seqlock read -------------------------------------------------------------

    def read(self, seq: int, copy: bool = True) -> SlotRead:
        """Validated read of sequence number ``seq``.

        Raises :class:`SlotMissed` when the slot no longer (or not yet)
        holds ``seq``, and :class:`TornSlot` when a write was in
        progress or landed mid-read.  With ``copy=False`` the returned
        planes alias the segment; call :meth:`slot_stable` after use.
        """
        slot = seq % self.capacity
        gen0 = int(self._generation[slot])
        if gen0 % 2 == 1:
            METRICS.inc("bus.torn_reads")
            raise TornSlot(f"ring {self.name!r} slot {slot} is mid-write")
        if int(self._seq[slot]) != seq:
            raise SlotMissed(f"seq {seq} not resident in ring {self.name!r}")
        planes = self._payload[slot]
        meta = np.array(self._meta[slot])
        fp = bytes(self._fp[slot]).rstrip(b"\x00").decode("ascii")
        if copy:
            planes = np.array(planes)
        gen1 = int(self._generation[slot])
        if gen1 != gen0:
            METRICS.inc("bus.torn_reads")
            raise TornSlot(f"ring {self.name!r} slot {slot} rewritten during read")
        return SlotRead(
            seq=seq, slot=slot, generation=gen0, planes=planes, meta=meta, fingerprint=fp
        )

    def slot_stable(self, read: SlotRead) -> bool:
        """True while a zero-copy :class:`SlotRead` still maps valid data."""
        return int(self._generation[read.slot]) == read.generation

    def mark_consumed(self, seq: int) -> None:
        """Acknowledge ``seq`` so the writer may reuse its slot."""
        slot = seq % self.capacity
        if int(self._consumed[slot]) < seq:
            self._consumed[slot] = seq
        METRICS.set_gauge("bus.ring.occupancy", float(self.occupancy()))

    def wait_for(self, seq: int, timeout: float = 10.0, poll: float = 0.002) -> None:
        """Block until ``seq`` has been published (or the ring closes)."""
        deadline = time.monotonic() + timeout
        while self.write_cursor <= seq:
            if self.closed:
                raise RingError(f"ring {self.name!r} closed before seq {seq}")
            if time.monotonic() >= deadline:
                raise RingError(f"timed out waiting for seq {seq} on {self.name!r}")
            time.sleep(poll)


#: FrameRing prep planes, in payload order after surface/intensity.
#: The first eight rebuild :class:`~repro.core.surface.SurfaceGeometry`;
#: ``disc_field`` is the intensity discriminant of the semi-fluid
#: mapping (``FramePreparation.discriminant``).
PREP_PLANES = (
    "p", "q", "normal_i", "normal_j", "normal_k", "e", "g", "discriminant",
)

# Frame meta columns.
FM_TIME = 0
FM_PIXEL_KM = 1
FM_HAS_INTENSITY = 2
FM_HAS_DISC = 3


@dataclass
class BusFrame:
    """One frame consumed from a :class:`FrameRing`."""

    seq: int
    frame: object  # repro.core.sma.Frame
    preparation: FramePreparation | None
    pixel_km: float
    fingerprint: str


class FrameRing(ShmRing):
    """Ring of prepared-frame stacks: intensity + fitted geometry planes."""

    @classmethod
    def create_frames(
        cls,
        name: str,
        capacity: int,
        height: int,
        width: int,
        intensity: bool = False,
        prep: bool = True,
    ) -> "FrameRing":
        channels = 1 + (1 if intensity else 0) + ((len(PREP_PLANES) + 1) if prep else 0)
        flags = (FLAG_INTENSITY if intensity else 0) | (FLAG_PREP if prep else 0)
        return cls.create(name, capacity, height, width, channels, flags=flags)

    @property
    def has_intensity(self) -> bool:
        return bool(self.flags & FLAG_INTENSITY)

    @property
    def has_prep(self) -> bool:
        return bool(self.flags & FLAG_PREP)

    def publish_frame(
        self,
        frame,
        preparation: FramePreparation | None = None,
        pixel_km: float = 1.0,
        wait_consumed: bool = False,
    ) -> int:
        """Write one :class:`~repro.core.sma.Frame` (plus optional prep)."""
        planes: list = [frame.surface]
        has_int = frame.intensity is not None
        if self.has_intensity:
            planes.append(frame.intensity)
        elif has_int:
            raise RingError("ring was created without an intensity channel")
        fingerprint = ""
        has_disc = False
        if self.has_prep:
            if preparation is None:
                raise RingError("prep-carrying ring needs a FramePreparation")
            geo = preparation.geometry
            planes.extend(getattr(geo, plane) for plane in PREP_PLANES)
            planes.append(preparation.discriminant)
            has_disc = preparation.discriminant is not None
            fingerprint = preparation.fingerprint
        meta = [0.0] * 4
        meta[FM_TIME] = float(frame.time_seconds)
        meta[FM_PIXEL_KM] = float(pixel_km)
        meta[FM_HAS_INTENSITY] = 1.0 if has_int else 0.0
        meta[FM_HAS_DISC] = 1.0 if has_disc else 0.0
        seq = self.publish(planes, meta, fingerprint, wait_consumed=wait_consumed)
        METRICS.inc("bus.bytes.published", self.slot_bytes)
        return seq

    def read_frame(self, seq: int, copy: bool = True) -> BusFrame:
        """Reconstruct the frame (and prep, if carried) from slot ``seq``."""
        from ..core.sma import Frame  # local: avoid a cycle at import time

        r = self.read(seq, copy=copy)
        cursor = 1
        intensity = None
        if self.has_intensity:
            if r.meta[FM_HAS_INTENSITY] > 0:
                intensity = r.planes[cursor]
            cursor += 1
        frame = Frame(
            surface=r.planes[0],
            intensity=intensity,
            time_seconds=float(r.meta[FM_TIME]),
        )
        preparation = None
        if self.has_prep:
            geo = SurfaceGeometry(
                **{
                    plane: r.planes[cursor + i]
                    for i, plane in enumerate(PREP_PLANES)
                }
            )
            disc = r.planes[cursor + len(PREP_PLANES)]
            preparation = FramePreparation(
                geometry=geo,
                discriminant=disc if r.meta[FM_HAS_DISC] > 0 else None,
                fingerprint=r.fingerprint,
            )
        if not copy and not self.slot_stable(r):
            METRICS.inc("bus.torn_reads")
            raise TornSlot(f"ring {self.name!r} slot {r.slot} rewritten during read")
        return BusFrame(
            seq=seq,
            frame=frame,
            preparation=preparation,
            pixel_km=float(r.meta[FM_PIXEL_KM]),
            fingerprint=r.fingerprint,
        )


# Result meta columns.
RM_DT = 0
RM_PIXEL_KM = 1
RM_HAS_PARAMS = 2
RM_INDEX = 3

#: Motion-parameter planes carried when FLAG_PARAMS is set
#: (``MotionField.params`` has shape (H, W, 6)).
N_PARAM_PLANES = 6


class ResultRing(ShmRing):
    """Ring of dense motion-field outputs flowing workers -> dispatcher."""

    @classmethod
    def create_results(
        cls,
        name: str,
        capacity: int,
        height: int,
        width: int,
        params: bool = True,
    ) -> "ResultRing":
        channels = 4 + (N_PARAM_PLANES if params else 0)
        return cls.create(
            name, capacity, height, width, channels,
            flags=FLAG_PARAMS if params else 0,
        )

    @property
    def has_params(self) -> bool:
        return bool(self.flags & FLAG_PARAMS)

    def publish_field(
        self, index: int, field, wait_consumed: bool = True, timeout: float = 30.0
    ) -> int:
        """Write one pair's :class:`~repro.core.field.MotionField`.

        ``index`` (the pair number, unique per task) doubles as the
        explicit sequence number: result rings have many concurrent
        writers, so slots are pre-assigned instead of cursor-claimed.
        """
        planes = [field.u, field.v, field.error, field.valid.astype(np.float64)]
        has_params = field.params is not None
        if self.has_params:
            if has_params:
                planes.extend(field.params[..., k] for k in range(N_PARAM_PLANES))
            else:
                planes.extend([None] * N_PARAM_PLANES)
        elif has_params:
            raise RingError("ring was created without parameter channels")
        meta = [0.0] * 4
        meta[RM_DT] = float(field.dt_seconds)
        meta[RM_PIXEL_KM] = float(field.pixel_km)
        meta[RM_HAS_PARAMS] = 1.0 if has_params else 0.0
        meta[RM_INDEX] = float(index)
        seq = self.publish(
            planes, meta, wait_consumed=wait_consumed, timeout=timeout, seq=index
        )
        METRICS.inc("bus.bytes.published", self.slot_bytes)
        return seq

    def read_field(self, seq: int, metadata: dict | None = None):
        """Rebuild the :class:`~repro.core.field.MotionField` at ``seq``.

        Always copies: the dispatcher immediately releases the slot via
        :meth:`mark_consumed`, so views would go stale.  Returns
        ``(pair_index, field)``.
        """
        from ..core.field import MotionField

        r = self.read(seq, copy=True)
        params = None
        if self.has_params and r.meta[RM_HAS_PARAMS] > 0:
            params = np.ascontiguousarray(np.moveaxis(r.planes[4 : 4 + N_PARAM_PLANES], 0, -1))
        field = MotionField(
            u=r.planes[0],
            v=r.planes[1],
            valid=r.planes[3] > 0.5,
            error=r.planes[2],
            params=params,
            dt_seconds=float(r.meta[RM_DT]),
            pixel_km=float(r.meta[RM_PIXEL_KM]),
            metadata=dict(metadata or {}),
        )
        return int(r.meta[RM_INDEX]), field

    def publish_planes(
        self,
        index: int,
        u: np.ndarray,
        v: np.ndarray,
        error: np.ndarray,
        wait_consumed: bool = True,
        timeout: float = 30.0,
    ) -> int:
        """Write bare (u, v, error) planes -- the ladder-rung result shape.

        As in :meth:`publish_field`, ``index`` is the explicit sequence
        number so concurrent workers never race the write cursor.
        """
        planes: list = [u, v, error, None]
        if self.has_params:
            planes.extend([None] * N_PARAM_PLANES)
        meta = [0.0] * 4
        meta[RM_INDEX] = float(index)
        seq = self.publish(
            planes, meta, wait_consumed=wait_consumed, timeout=timeout, seq=index
        )
        METRICS.inc("bus.bytes.published", self.slot_bytes)
        return seq

    def read_planes(self, seq: int):
        """Inverse of :meth:`publish_planes`: ``(index, u, v, error)``."""
        r = self.read(seq, copy=True)
        return int(r.meta[RM_INDEX]), r.planes[0], r.planes[1], r.planes[2]


# -- stale-segment GC -------------------------------------------------------------

_SHM_DIR = "/dev/shm"


def _pid_alive(pid: int) -> bool:
    if pid <= 0:
        return False
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:  # pragma: no cover - pid exists, other user
        return True
    return True


def list_segments(prefix: str = SEGMENT_PREFIX) -> list[str]:
    """Ring names currently resident in ``/dev/shm``."""
    try:
        entries = os.listdir(_SHM_DIR)
    except OSError:  # pragma: no cover - non-Linux
        return []
    return sorted(e[len(prefix):] for e in entries if e.startswith(prefix))


def gc_stale_segments(prefix: str = SEGMENT_PREFIX) -> list[str]:
    """Unlink every ring whose owning process is dead.  Returns the names.

    The sweep is safe to run from any process at any time: a live
    owner's segment is never touched, and racing sweeps at worst both
    try the unlink (the loser's ``FileNotFoundError`` is swallowed).
    """
    removed: list[str] = []
    for name in list_segments(prefix):
        try:
            shm = shared_memory.SharedMemory(name=prefix + name)
        except FileNotFoundError:
            continue
        _unregister(shm)
        try:
            header = np.ndarray((HEADER_WORDS,), dtype=np.int64, buffer=shm.buf)
            magic_ok = int(header[H_MAGIC]) == MAGIC
            pid = int(header[H_OWNER_PID])
            del header
        finally:
            shm.close()
        if not magic_ok:
            # Half-initialized segment: creator died before stamping the
            # magic.  No owner recorded -> reclaim it.
            pid = -1
        if not _pid_alive(pid):
            try:
                # The attach registers with the tracker and unlink()
                # deregisters -- balanced, no explicit bookkeeping.
                stale = shared_memory.SharedMemory(name=prefix + name)
                stale.unlink()
                stale.close()
            except FileNotFoundError:
                continue
            removed.append(name)
            METRICS.inc("bus.gc.unlinked")
    return removed
