"""The ``repro ingest`` daemon: feed a frame ring at a configurable cadence.

The publisher side of the live workload.  A :class:`FrameSource`
produces raw :class:`~repro.core.sma.Frame` objects -- from the
synthetic GOES storm-vortex generators, by tailing a directory for
``.npy``/``.npz`` drops, or by reading length-prefixed ``.npz`` messages
off a TCP socket -- and :class:`IngestDaemon` prepares each frame once
(surface fit + discriminant, memoized by content fingerprint) and
publishes the prepared stack into a named :class:`FrameRing`.

The daemon owns its ring: on a clean stop it marks the ring closed,
lingers so attached consumers can drain, then unlinks the segment.  A
SIGKILLed daemon leaves the segment for :func:`gc_stale_segments`.
"""

from __future__ import annotations

import json
import os
import socket
import struct
import time
from dataclasses import dataclass, field
from io import BytesIO

import numpy as np

from ..core.prep import FramePreparationCache
from ..core.sma import Frame
from ..obs.metrics import METRICS
from ..params import LUIS_CONFIG, NeighborhoodConfig
from .ring import FrameRing


class FrameSource:
    """Iterable of (index, Frame); concrete sources override ``frames``."""

    #: Model configuration the frames should be prepared under (sources
    #: that know their dataset override this).
    config: NeighborhoodConfig = LUIS_CONFIG
    pixel_km: float = 1.0
    dt_seconds: float = 90.0

    def frames(self):  # pragma: no cover - interface
        raise NotImplementedError

    def describe(self) -> str:  # pragma: no cover - trivial
        return type(self).__name__


@dataclass
class SyntheticSource(FrameSource):
    """Frames from the synthetic storm/vortex dataset factories.

    ``max_frames`` beyond the dataset length loops the sequence (the
    flows are steady, so re-advecting from frame 0 keeps a plausible
    endless stream for soak testing).
    """

    dataset: str = "luis"
    size: int = 64
    n_frames: int = 8
    seed: int = 1995_09
    max_frames: int | None = None
    _frames: list = field(default_factory=list, repr=False)

    def __post_init__(self) -> None:
        from ..data import florida_thunderstorm, hurricane_frederic, hurricane_luis

        factories = {
            "frederic": hurricane_frederic,
            "florida": florida_thunderstorm,
            "luis": hurricane_luis,
        }
        if self.dataset not in factories:
            raise ValueError(
                f"unknown synthetic dataset {self.dataset!r} "
                f"(choose from {sorted(factories)})"
            )
        ds = factories[self.dataset](
            size=self.size, n_frames=self.n_frames, seed=self.seed
        )
        self._frames = ds.frames
        self.config = ds.config
        self.pixel_km = ds.pixel_km
        self.dt_seconds = ds.dt_seconds

    def frames(self):
        total = self.max_frames if self.max_frames is not None else len(self._frames)
        for i in range(total):
            base = self._frames[i % len(self._frames)]
            yield i, Frame(
                surface=base.surface,
                intensity=base.intensity,
                time_seconds=i * self.dt_seconds,
            )

    def describe(self) -> str:
        return f"synthetic:{self.dataset}(size={self.size}, frames={self.n_frames})"


@dataclass
class DirectorySource(FrameSource):
    """Tail a directory for ``.npy``/``.npz`` frame drops, in name order.

    ``.npy`` files are bare surfaces; ``.npz`` archives may carry
    ``surface`` (required), ``intensity`` and ``time_seconds``.  A file
    named ``STOP`` ends the stream.  Files are only consumed once; the
    source keeps polling for new names until stopped.
    """

    path: str = "."
    poll_seconds: float = 0.2
    idle_timeout: float = 60.0
    config: NeighborhoodConfig = LUIS_CONFIG
    pixel_km: float = 1.0
    dt_seconds: float = 90.0

    def frames(self):
        seen: set[str] = set()
        index = 0
        last_new = time.monotonic()
        while True:
            listing = os.listdir(self.path)
            names = sorted(
                n
                for n in listing
                if n not in seen and n.endswith((".npy", ".npz"))
            )
            if not names:
                if "STOP" in listing:
                    return
                if time.monotonic() - last_new > self.idle_timeout:
                    return
                time.sleep(self.poll_seconds)
                continue
            for name in names:
                seen.add(name)
                full = os.path.join(self.path, name)
                frame = self._load(full, default_time=index * self.dt_seconds)
                if frame is None:
                    continue
                yield index, frame
                index += 1
                last_new = time.monotonic()
            # STOP ends the stream only after every drop already in the
            # directory has been consumed (a late-starting consumer must
            # not discard data that arrived before the sentinel).
            if "STOP" in listing:
                return

    def _load(self, path: str, default_time: float) -> Frame | None:
        try:
            if path.endswith(".npy"):
                return Frame(surface=np.load(path), time_seconds=default_time)
            with np.load(path) as data:
                return Frame(
                    surface=data["surface"],
                    intensity=data["intensity"] if "intensity" in data else None,
                    time_seconds=(
                        float(data["time_seconds"])
                        if "time_seconds" in data
                        else default_time
                    ),
                )
        except (OSError, KeyError, ValueError):
            # Partially written drop; the writer should stage-and-rename,
            # but skipping beats crashing the daemon.
            METRICS.inc("bus.ingest.bad_drops")
            return None

    def describe(self) -> str:
        return f"dir:{self.path}"


@dataclass
class SocketSource(FrameSource):
    """Read length-prefixed ``.npz`` frame messages off one TCP connection.

    Wire format per frame: an 8-byte big-endian length, then that many
    bytes of an ``.npz`` archive with the same keys
    :class:`DirectorySource` accepts.  A zero length ends the stream.
    """

    host: str = "127.0.0.1"
    port: int = 0
    accept_timeout: float = 30.0
    config: NeighborhoodConfig = LUIS_CONFIG
    pixel_km: float = 1.0
    dt_seconds: float = 90.0
    _server: socket.socket | None = field(default=None, repr=False)

    def bind(self) -> int:
        """Bind and listen; returns the bound port (useful with port 0)."""
        if self._server is None:
            self._server = socket.create_server((self.host, self.port))
            self.port = self._server.getsockname()[1]
        return self.port

    def frames(self):
        self.bind()
        assert self._server is not None
        self._server.settimeout(self.accept_timeout)
        conn, _ = self._server.accept()
        index = 0
        try:
            with conn:
                while True:
                    header = self._read_exact(conn, 8)
                    if header is None:
                        return
                    (length,) = struct.unpack(">Q", header)
                    if length == 0:
                        return
                    body = self._read_exact(conn, length)
                    if body is None:
                        return
                    with np.load(BytesIO(body)) as data:
                        yield index, Frame(
                            surface=data["surface"],
                            intensity=(
                                data["intensity"] if "intensity" in data else None
                            ),
                            time_seconds=(
                                float(data["time_seconds"])
                                if "time_seconds" in data
                                else index * self.dt_seconds
                            ),
                        )
                    index += 1
        finally:
            self._server.close()
            self._server = None

    @staticmethod
    def _read_exact(conn: socket.socket, n: int) -> bytes | None:
        chunks = []
        while n > 0:
            chunk = conn.recv(min(n, 1 << 20))
            if not chunk:
                return None
            chunks.append(chunk)
            n -= len(chunk)
        return b"".join(chunks)

    def describe(self) -> str:
        return f"tcp://{self.host}:{self.port}"


def send_frames(host: str, port: int, frames) -> None:
    """Client half of :class:`SocketSource`'s wire protocol (for tests)."""
    with socket.create_connection((host, port)) as conn:
        for frame in frames:
            buf = BytesIO()
            arrays = {"surface": frame.surface, "time_seconds": np.float64(frame.time_seconds)}
            if frame.intensity is not None:
                arrays["intensity"] = frame.intensity
            np.savez(buf, **arrays)
            payload = buf.getvalue()
            conn.sendall(struct.pack(">Q", len(payload)) + payload)
        conn.sendall(struct.pack(">Q", 0))


def parse_source(spec: str, size: int = 64, n_frames: int = 8, seed: int | None = None,
                 max_frames: int | None = None) -> FrameSource:
    """Build a :class:`FrameSource` from a CLI source spec.

    ``synthetic:NAME`` (frederic/florida/luis), ``dir:PATH`` (or a bare
    path to an existing directory), ``tcp://HOST:PORT``.
    """
    if spec.startswith("synthetic:"):
        name = spec.split(":", 1)[1]
        kwargs: dict = {"dataset": name, "size": size, "n_frames": n_frames,
                        "max_frames": max_frames}
        if seed is not None:
            kwargs["seed"] = seed
        return SyntheticSource(**kwargs)
    if spec.startswith("dir:"):
        return DirectorySource(path=spec.split(":", 1)[1])
    if spec.startswith("tcp://"):
        hostport = spec[len("tcp://"):]
        host, _, port = hostport.rpartition(":")
        return SocketSource(host=host or "127.0.0.1", port=int(port))
    if os.path.isdir(spec):
        return DirectorySource(path=spec)
    raise ValueError(
        f"unrecognized source {spec!r} (use synthetic:NAME, dir:PATH or tcp://HOST:PORT)"
    )


class IngestDaemon:
    """Prepare and publish a source's frames into an owned ring."""

    def __init__(
        self,
        ring_name: str,
        source: FrameSource,
        capacity: int = 16,
        cadence_seconds: float = 0.0,
        linger_seconds: float = 0.0,
        prep: bool = True,
        shape: tuple[int, int] | None = None,
        log=None,
    ) -> None:
        self.ring_name = ring_name
        self.source = source
        self.capacity = capacity
        self.cadence_seconds = cadence_seconds
        self.linger_seconds = linger_seconds
        self.prep = prep
        self.shape = shape
        self._log = log or (lambda msg: None)
        self._stop = False
        self.published = 0
        self.ring: FrameRing | None = None
        self._cache = FramePreparationCache(max_frames=4)

    def stop(self) -> None:
        """Request a clean shutdown (signal-handler safe)."""
        self._stop = True

    def _ensure_ring(self, frame: Frame) -> FrameRing:
        if self.ring is None:
            h, w = self.shape if self.shape is not None else frame.shape
            self.ring = FrameRing.create_frames(
                self.ring_name,
                capacity=self.capacity,
                height=h,
                width=w,
                intensity=frame.intensity is not None,
                prep=self.prep,
            )
            self._log(
                f"ingest: ring {self.ring_name!r} created "
                f"capacity={self.capacity} shape={h}x{w} "
                f"prep={self.prep} bytes={self.ring.nbytes}"
            )
        return self.ring

    def run(self) -> int:
        """Publish until the source ends or :meth:`stop`; returns the count."""
        self._log(f"ingest: source {self.source.describe()} -> ring://{self.ring_name}")
        next_due = time.monotonic()
        try:
            for index, frame in self.source.frames():
                if self._stop:
                    break
                ring = self._ensure_ring(frame)
                preparation = None
                if self.prep:
                    # Same call prepare_frames() makes: intensity stays
                    # None in monocular mode so the content fingerprint
                    # (and thus worker cache hits) line up exactly.
                    preparation = self._cache.get(
                        frame.surface, frame.intensity, self.source.config
                    )
                if self.cadence_seconds > 0:
                    now = time.monotonic()
                    if now < next_due:
                        time.sleep(next_due - now)
                    next_due = max(next_due + self.cadence_seconds, time.monotonic())
                seq = ring.publish_frame(
                    frame, preparation=preparation, pixel_km=self.source.pixel_km
                )
                self.published += 1
                METRICS.inc("bus.ingest.frames")
                if self.published == 1 or self.published % 25 == 0:
                    self._log(f"ingest: published seq={seq} (total {self.published})")
        finally:
            self._finish()
        return self.published

    def _finish(self) -> None:
        if self.ring is None:
            return
        self.ring.mark_closed()
        if self.linger_seconds > 0 and not self._stop:
            deadline = time.monotonic() + self.linger_seconds
            while time.monotonic() < deadline and not self._stop:
                time.sleep(0.05)
        self._log(
            f"ingest: closing ring://{self.ring_name} after {self.published} frame(s)"
        )
        self.ring.unlink()
        self.ring.close()
        self.ring = None

    def state(self) -> dict:
        return {
            "ring": self.ring_name,
            "published": self.published,
            "source": self.source.describe(),
        }


def state_json(daemon: IngestDaemon) -> str:
    return json.dumps(daemon.state(), sort_keys=True)
