"""Ring-consumer frame source: the ``--source ring://NAME`` adapter.

:class:`RingFrameSource` turns a live :class:`~repro.bus.ring.FrameRing`
into the iterator shape the batch layers already consume: it attaches
(with retry, so a consumer may start before the publisher), then yields
:class:`~repro.bus.ring.BusFrame` objects in sequence order, skipping --
and counting -- frames that were overwritten or torn before this
consumer got to them.  Reads are copies: a streaming consumer holds each
frame across at least two pairs, longer than any live-ring slot is
guaranteed stable.
"""

from __future__ import annotations

import time

from ..obs.metrics import METRICS
from .ring import FrameRing, RingNotFound, SlotMissed, TornSlot


def parse_ring_url(spec: str) -> str:
    """``ring://NAME`` -> ``NAME`` (raises on anything else)."""
    if not spec.startswith("ring://"):
        raise ValueError(f"not a ring URL: {spec!r}")
    name = spec[len("ring://"):].strip("/")
    if not name:
        raise ValueError("ring URL needs a name: ring://NAME")
    return name


class RingFrameSource:
    """Iterate frames arriving on a named ring, in publish order.

    Parameters
    ----------
    name:
        Ring name (the ``NAME`` of ``ring://NAME``).
    attach_timeout:
        How long to wait for the publisher to create the ring.
    idle_timeout:
        Give up when no new frame lands for this long and the
        publisher has not marked the ring closed.
    from_seq:
        First sequence number to yield; defaults to the oldest frame
        still guaranteed resident at attach time.
    stop_event:
        Optional :class:`threading.Event`; setting it makes
        :meth:`frames` return cleanly at the next poll (how a
        background serve consumer gets interrupted while idle).
    """

    def __init__(
        self,
        name: str,
        attach_timeout: float = 10.0,
        idle_timeout: float = 30.0,
        poll_seconds: float = 0.01,
        from_seq: int | None = None,
        stop_event=None,
    ) -> None:
        self.name = name
        self.idle_timeout = idle_timeout
        self.poll_seconds = poll_seconds
        self._stop_event = stop_event
        self.ring = FrameRing.attach(name, timeout=attach_timeout)
        if from_seq is None:
            # Start at the oldest slot still resident; if the publisher
            # laps us before we get there, the SlotMissed handler in
            # :meth:`frames` jumps forward and counts the gap.
            from_seq = max(0, self.ring.write_cursor - self.ring.capacity)
        self.next_seq = from_seq
        self.missed = 0
        self.torn = 0
        self.yielded = 0
        self._final_state: dict | None = None

    def state(self) -> dict:
        """Attach/progress snapshot for ``/healthz`` and startup logs.

        Safe to call from another thread even while (or after) the
        consumer closes the source: a read racing :meth:`close` falls
        back to the last snapshot taken before detach.
        """
        final = self._final_state
        if final is not None:
            return dict(final)
        try:
            return {
                "attached": True,
                "ring": self.name,
                "capacity": self.ring.capacity,
                "write_cursor": self.ring.write_cursor,
                "next_seq": self.next_seq,
                "yielded": self.yielded,
                "missed": self.missed,
                "torn": self.torn,
                "closed": self.ring.closed,
            }
        except (TypeError, AttributeError):
            # The ring views were nulled by a racing close(); its final
            # snapshot is (or is about to be) in place.
            final = self._final_state
            if final is not None:
                return dict(final)
            return {
                "attached": False,
                "ring": self.name,
                "yielded": self.yielded,
                "missed": self.missed,
                "torn": self.torn,
            }

    def frames(self, max_frames: int | None = None):
        """Yield :class:`~repro.bus.ring.BusFrame` until closed/idle/limit."""
        produced = 0
        last_progress = time.monotonic()
        while max_frames is None or produced < max_frames:
            if self._stop_event is not None and self._stop_event.is_set():
                return
            if self.ring.write_cursor <= self.next_seq:
                if self.ring.closed:
                    return
                if time.monotonic() - last_progress > self.idle_timeout:
                    raise TimeoutError(
                        f"ring {self.name!r}: no frame for {self.idle_timeout}s"
                    )
                time.sleep(self.poll_seconds)
                continue
            try:
                bus_frame = self.ring.read_frame(self.next_seq, copy=True)
            except SlotMissed:
                # Publisher lapped us; jump to the oldest resident slot.
                oldest = max(0, self.ring.write_cursor - self.ring.capacity)
                skipped = max(1, oldest - self.next_seq)
                self.missed += skipped
                METRICS.inc("bus.frames.missed", skipped)
                self.next_seq += skipped
                last_progress = time.monotonic()
                continue
            except TornSlot:
                # Mid-write (or a crashed publisher's permanently odd
                # generation): skip this slot, counting it.
                self.torn += 1
                self.next_seq += 1
                last_progress = time.monotonic()
                continue
            self.next_seq += 1
            self.yielded += 1
            produced += 1
            last_progress = time.monotonic()
            METRICS.inc("bus.bytes_avoided", self.ring.slot_bytes)
            yield bus_frame

    def close(self) -> None:
        if self._final_state is None:
            try:
                final = self.state()
            except Exception:
                final = {"attached": False, "ring": self.name}
            final["attached"] = False
            self._final_state = final
        self.ring.close()

    def __enter__(self) -> "RingFrameSource":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


__all__ = ["RingFrameSource", "RingNotFound", "parse_ring_url"]
