"""Shared-memory ring segment layout.

One POSIX shared-memory segment per ring, named ``repro-bus-<name>``
(visible as ``/dev/shm/repro-bus-<name>`` on Linux).  The segment is a
fixed-size arena carved into five regions, all mapped as numpy views so
both sides of the bus address the same bytes without copying:

::

    +-----------------------------+  offset 0
    | header        int64[16]     |  magic, version, geometry, cursors
    +-----------------------------+
    | generation    int64[cap]    |  per-slot seqlock counters
    | seq           int64[cap]    |  sequence number held by each slot
    | consumed      int64[cap]    |  reader acknowledgements (backpressure)
    +-----------------------------+
    | meta          f64[cap, 8]   |  per-slot scalars (dt, pixel_km, ...)
    | fingerprint   u8[cap, 48]   |  ascii content digest, zero padded
    +-----------------------------+
    | payload  f64[cap, C, H, W]  |  the frame / field planes themselves
    +-----------------------------+

The **seqlock protocol** lives in the ``generation`` array.  A writer
claiming slot ``s`` increments ``generation[s]`` to an odd value, writes
the payload, meta, fingerprint and ``seq[s]``, then increments
``generation[s]`` again (even) and finally advances the header's
``write_cursor``.  Readers never block: they sample ``generation[s]``
before and after touching the slot and discard the read if the counter
was odd (write in progress) or changed (slot overwritten underneath
them).  A publisher killed mid-write leaves the counter odd forever,
which every reader interprets as a permanently torn slot.

Aligned 8-byte loads/stores are atomic on every platform CPython's
``multiprocessing.shared_memory`` supports, which is all the protocol
needs: torn detection is per-slot and monotonic, not a general fence.
"""

from __future__ import annotations

import numpy as np

#: ``/dev/shm`` prefix every ring segment shares; the stale-segment GC
#: scans for it.
SEGMENT_PREFIX = "repro-bus-"

#: "SMAB" -- semifluid-motion-analysis bus.
MAGIC = 0x534D4142

VERSION = 1

#: int64 header words (16 gives room to grow without a version bump).
HEADER_WORDS = 16

# Header word indices.
H_MAGIC = 0
H_VERSION = 1
H_CAPACITY = 2
H_HEIGHT = 3
H_WIDTH = 4
H_CHANNELS = 5
H_FLAGS = 6
H_WRITE_CURSOR = 7
H_OWNER_PID = 8
H_CLOSED = 9

# Ring-level flag bits (header word H_FLAGS).
FLAG_INTENSITY = 1  #: payload includes an intensity plane per frame
FLAG_PREP = 2  #: payload includes fitted-geometry/certificate planes
FLAG_PARAMS = 4  #: payload includes per-pixel motion-parameter planes

#: Per-slot scalar columns.  Frame rings use
#: ``[time_seconds, pixel_km, has_intensity, has_discriminant]``;
#: result rings use ``[dt_seconds, pixel_km, has_params, pair_index]``.
META_COLS = 8

#: Fingerprint field width: frame fingerprints are 40 hex chars
#: (blake2b-20), field digests 32 (blake2b-16); both fit zero padded.
FP_BYTES = 48

_I8 = np.dtype(np.int64).itemsize
_F8 = np.dtype(np.float64).itemsize


def segment_size(capacity: int, height: int, width: int, channels: int) -> int:
    """Total byte size of a ring segment with the given geometry."""
    return (
        HEADER_WORDS * _I8
        + 3 * capacity * _I8  # generation, seq, consumed
        + capacity * META_COLS * _F8
        + capacity * FP_BYTES
        + capacity * channels * height * width * _F8
    )


def region_offsets(capacity: int, height: int, width: int, channels: int) -> dict:
    """Byte offset of each region, keyed by region name."""
    offsets = {}
    cursor = 0
    for name, nbytes in (
        ("header", HEADER_WORDS * _I8),
        ("generation", capacity * _I8),
        ("seq", capacity * _I8),
        ("consumed", capacity * _I8),
        ("meta", capacity * META_COLS * _F8),
        ("fingerprint", capacity * FP_BYTES),
        ("payload", capacity * channels * height * width * _F8),
    ):
        offsets[name] = cursor
        cursor += nbytes
    offsets["total"] = cursor
    return offsets
