"""Zero-copy shared-memory frame/result bus (the live MPDA analogue).

The paper's machine holds every frame once in parallel memory and lets
all PEs read it in place; this package is that idea for the pool and
serve layers: named shared-memory rings carrying prepared-frame stacks
(:class:`FrameRing`) and dense motion fields (:class:`ResultRing`),
with a lock-free seqlock header so readers attach zero-copy and detect
torn or overwritten slots, plus the ``repro ingest`` daemon and the
``ring://NAME`` consumer that turn the batch pipeline into a
continuously ingesting service.  See ``docs/ingestion.md``.
"""

from .ingest import (
    DirectorySource,
    FrameSource,
    IngestDaemon,
    SocketSource,
    SyntheticSource,
    parse_source,
    send_frames,
)
from .ring import (
    BusFrame,
    FrameRing,
    ResultRing,
    RingError,
    RingNotFound,
    ShmRing,
    SlotMissed,
    TornSlot,
    gc_stale_segments,
    list_segments,
)
from .source import RingFrameSource, parse_ring_url

__all__ = [
    "BusFrame",
    "DirectorySource",
    "FrameRing",
    "FrameSource",
    "IngestDaemon",
    "ResultRing",
    "RingError",
    "RingFrameSource",
    "RingNotFound",
    "ShmRing",
    "SlotMissed",
    "SocketSource",
    "SyntheticSource",
    "TornSlot",
    "gc_stale_segments",
    "list_segments",
    "parse_ring_url",
    "parse_source",
    "send_frames",
]
