"""The bit-identity NumPy reference kernels of the hypothesis chain.

Every backend of :mod:`repro.kernels` answers to the functions in this
module.  They are the exact arithmetic the rest of the codebase has
always run -- moved here verbatim from :mod:`repro.core.continuous`
(residual rows, packed normal-equation fields), :mod:`repro.core.semifluid`
(template box sums), :mod:`repro.core.linalg` (the batched Gaussian
elimination) and :mod:`repro.core.matching` (the stacked box sum and the
certificate-grid window sums of the pruned schedule) -- so "reference"
means *the* bits, not merely close ones:

* the native C kernel (:mod:`repro.native`) replays these IEEE-754
  operations element for element and is bitwise cross-checked on load;
* the pruned search schedule uses :func:`strided_window_sums` only to
  form *bounds*, never field values, so its different summation order is
  covered by an explicit slack;
* the opt-in device backend (:mod:`repro.kernels.device`) is the single
  tolerance-contract exception, and its tolerance is measured against
  this module by the digest harness in :mod:`repro.kernels.digest`.

The public wrappers in ``repro.core`` re-export these names, so existing
import sites keep working; new code should import from
:mod:`repro.kernels`.
"""

from __future__ import annotations

import numpy as np
from scipy import ndimage

#: Parameter order used throughout: theta = (a_i, b_i, a_j, b_j, a_k, b_k).
PARAM_NAMES: tuple[str, ...] = ("a_i", "b_i", "a_j", "b_j", "a_k", "b_k")

N_PARAMS = 6

#: Upper-triangle index pairs of the symmetric 6x6 normal matrix, in the
#: packed order used by the dense field representation (21 entries).
TRIU_INDICES: tuple[tuple[int, int], ...] = tuple(
    (i, j) for i in range(N_PARAMS) for j in range(i, N_PARAMS)
)

N_TRIU = len(TRIU_INDICES)  # 21

#: Packed field layout: 21 H entries + 6 gradient entries + 1 constant.
N_FIELDS = N_TRIU + N_PARAMS + 1  # 28

#: Structurally-zero design columns implied by :func:`residual_rows`:
#: ``a1`` never touches (b_i, b_k) and ``a2`` never touches (a_j, a_k).
#: :func:`pointwise_fields` skips the vanished products; the derivation
#: is pinned by a test that recovers these sets from ``residual_rows``
#: output, so a row-layout change cannot silently corrupt the skip
#: logic.
A1_ZERO_COLUMNS: tuple[int, ...] = (1, 5)
A2_ZERO_COLUMNS: tuple[int, ...] = (2, 4)

#: Pivot magnitudes below this are treated as singular.
SINGULAR_TOLERANCE = 1e-12


def residual_rows(p, q, p_after, q_after):
    """Design rows and constants of eps_1, eps_2 (unweighted).

    Given before-motion gradients ``(p, q)`` and observed after-motion
    gradients ``(p_after, q_after)`` -- any broadcastable shapes --
    returns ``(a1, r1, a2, r2)`` where ``a1``/``a2`` have a trailing
    axis of length 6 such that ``eps_m = a_m . theta + r_m``.
    """
    p, q, p_after, q_after = np.broadcast_arrays(
        np.asarray(p, dtype=np.float64),
        np.asarray(q, dtype=np.float64),
        np.asarray(p_after, dtype=np.float64),
        np.asarray(q_after, dtype=np.float64),
    )
    zero = np.zeros_like(p)
    minus_one = -np.ones_like(p)
    dp = p_after - p
    dq = q_after - q
    a1 = np.stack([p_after, zero, q, dp, minus_one, zero], axis=-1)
    a2 = np.stack([dq, p, zero, q_after, zero, minus_one], axis=-1)
    return a1, dp, a2, dq


def pointwise_fields(p, q, p_after, q_after, e, g) -> np.ndarray:
    """Per-sample normal-equation contributions, packed into 28 fields.

    For each sample the weighted error contribution is
    ``w1 (a1.theta + r1)^2 + w2 (a2.theta + r2)^2`` with quadratic
    weights ``w1 = 1/E^2`` and ``w2 = 1/G^2`` (the residuals carry 1/E,
    1/G).  Expanding gives a 6x6 matrix ``H`` (21 packed upper-triangle
    entries), a gradient vector ``grad`` (6) and a constant ``c`` (1):

        E(theta) = c + 2 theta . grad + theta^T H theta

    Summing the packed fields over a template window and solving
    ``H theta = -grad`` minimizes eq. (3) over that window.  Output
    shape is ``broadcast_shape + (28,)``.
    """
    a1, r1, a2, r2 = residual_rows(p, q, p_after, q_after)
    e = np.asarray(e, dtype=np.float64)
    g = np.asarray(g, dtype=np.float64)
    w1 = 1.0 / (e * e)
    w2 = 1.0 / (g * g)
    out_shape = a1.shape[:-1]
    # Hoist the weight products out of the 28-field loop.  Python's *
    # is left-associative, so ``w1 * a1_i * a1_j == (w1 * a1_i) * a1_j``
    # exactly: precomputing ``w1 * a1`` (and ``w1 * r1``) reuses the
    # identical first product and keeps every output bit unchanged.
    wa1 = w1[..., None] * a1
    wa2 = w2[..., None] * a2
    w1r1 = w1 * r1
    w2r2 = w2 * r2
    fields = np.empty(out_shape + (N_FIELDS,), dtype=np.float64)
    # Structural zeros: a1 columns 1 and 5 and a2 columns 2 and 4 are
    # identically zero (residual_rows), and the weights are finite and
    # strictly positive (E, G >= 1), so each vanished product is an
    # exact IEEE zero.  Skipping those products leaves every template
    # accumulation and solver input bit-for-bit unchanged (a +-0 term
    # never moves a running sum); only the sign of a structurally-zero
    # raw entry can differ, which no consumer observes.  Two reusable
    # scratch buffers replace the three fresh temporaries per field.
    a1_zero = A1_ZERO_COLUMNS
    a2_zero = A2_ZERO_COLUMNS
    buf_a = np.empty(out_shape, dtype=np.float64)
    buf_b = np.empty(out_shape, dtype=np.float64)
    for idx, (i, j) in enumerate(TRIU_INDICES):
        keep1 = i not in a1_zero and j not in a1_zero
        keep2 = i not in a2_zero and j not in a2_zero
        if keep1 and keep2:
            np.multiply(wa1[..., i], a1[..., j], out=buf_a)
            np.multiply(wa2[..., i], a2[..., j], out=buf_b)
            np.add(buf_a, buf_b, out=buf_a)
            fields[..., idx] = buf_a
        elif keep1:
            np.multiply(wa1[..., i], a1[..., j], out=buf_a)
            fields[..., idx] = buf_a
        elif keep2:
            np.multiply(wa2[..., i], a2[..., j], out=buf_a)
            fields[..., idx] = buf_a
        else:
            fields[..., idx] = 0.0
    for k in range(N_PARAMS):
        if k not in a1_zero and k not in a2_zero:
            np.multiply(w1r1, a1[..., k], out=buf_a)
            np.multiply(w2r2, a2[..., k], out=buf_b)
            np.add(buf_a, buf_b, out=buf_a)
            fields[..., N_TRIU + k] = buf_a
        elif k not in a1_zero:
            np.multiply(w1r1, a1[..., k], out=buf_a)
            fields[..., N_TRIU + k] = buf_a
        else:
            np.multiply(w2r2, a2[..., k], out=buf_a)
            fields[..., N_TRIU + k] = buf_a
    fields[..., N_TRIU + N_PARAMS] = w1r1 * r1 + w2r2 * r2
    return fields


def box_sum_rect(field: np.ndarray, half_y: int, half_x: int) -> np.ndarray:
    """Box sum over a rectangular ``(2half_y+1) x (2half_x+1)`` window.

    Out-of-bounds contributions are zero (``mode='constant'``), which
    only affects the masked border margin.  This is THE constant-padding
    box sum of the codebase: :func:`box_sum` (square windows) and the
    rectangular-template extension both delegate here, pinned by a
    regression test.
    """
    if half_y < 0 or half_x < 0:
        raise ValueError("half-widths must be >= 0")
    field = np.asarray(field, dtype=np.float64)
    if half_y == 0 and half_x == 0:
        return field.copy()
    side_y, side_x = 2 * half_y + 1, 2 * half_x + 1
    return ndimage.uniform_filter(
        field, size=(side_y, side_x), mode="constant", cval=0.0
    ) * float(side_y * side_x)


def box_sum(field: np.ndarray, half_width: int) -> np.ndarray:
    """Sum of ``field`` over the ``(2N+1)^2`` window centered per pixel."""
    return box_sum_rect(field, half_width, half_width)


def box_sum_stack(fields: np.ndarray, half_width: int) -> np.ndarray:
    """Box sum over the image axes of a ``(n, H, W, 28)`` stack.

    One separable uniform-filter sweep (a cumulative sliding sum per
    axis in the scipy implementation) shared by every hypothesis and
    every packed field -- arithmetic per (n, k) slice identical to
    :func:`box_sum` on that slice, hence bit-identical to summing the
    slices one at a time.
    """
    if half_width == 0:
        return fields.astype(np.float64, copy=True)
    side = 2 * half_width + 1
    # Filter a channels-first copy: scipy's 1-d kernel walks each image
    # line with the identical running-sum arithmetic regardless of
    # memory layout (same axis order: rows then columns), so the result
    # is bit-for-bit the same while the inner loop becomes contiguous.
    stacked = np.ascontiguousarray(np.moveaxis(fields.astype(np.float64), 3, 1))
    summed = ndimage.uniform_filter(
        stacked, size=(1, 1, side, side), mode="constant", cval=0.0
    ) * float(side * side)
    return np.ascontiguousarray(np.moveaxis(summed, 1, 3))


def strided_window_sums(
    arr: np.ndarray, axis: int, grid_size: int, stride: int, half_width: int
) -> np.ndarray:
    """Sum ``arr`` over every certificate window along ``axis``.

    Windows are ``2 * half_width + 1`` wide and start every ``stride``
    elements, so whole stride-width bins can be pre-summed once with
    one contiguous reshape-sum; each window is then ``side // stride``
    contiguous bin adds plus at most ``stride - 1`` strided adds for
    the leftover columns, instead of ``side`` strided adds.  The
    grouping changes the floating-point summation order, which only
    perturbs the pruned schedule's *bound* within the certificate
    slack -- the field itself never flows through this path.
    """
    side = 2 * half_width + 1
    whole, rest = divmod(side, stride)
    n_bins = grid_size - 1 + whole

    index: list = [slice(None)] * arr.ndim
    index[axis] = slice(0, stride * n_bins)
    shape = list(arr.shape)
    shape[axis : axis + 1] = [n_bins, stride]
    bins = arr[tuple(index)].reshape(shape).sum(axis=axis + 1)

    def bin_run(start: int) -> np.ndarray:
        ix: list = [slice(None)] * bins.ndim
        ix[axis] = slice(start, start + grid_size)
        return bins[tuple(ix)]

    out = bin_run(0).copy()
    for j in range(1, whole):
        out += bin_run(j)
    for k in range(rest):
        ix = [slice(None)] * arr.ndim
        first = stride * whole + k
        ix[axis] = slice(first, first + stride * (grid_size - 1) + 1, stride)
        out += arr[tuple(ix)]
    return out


def eliminate(matrices: np.ndarray, rhs: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Batched partial-pivot Gaussian elimination, NumPy reference path.

    Solves ``A x = b`` for a batch of dense systems; the SIMD-lockstep
    rendering of the paper's per-PE 6x6 elimination.  Inputs are copied
    and validated here, so the function stands alone;
    :func:`repro.core.linalg.gaussian_eliminate` wraps it with native
    dispatch.

    Returns ``(solutions, singular)``: rows flagged singular (a pivot
    below :data:`SINGULAR_TOLERANCE`) contain zeros.
    """
    a = np.array(matrices, dtype=np.float64, copy=True)
    b = np.array(rhs, dtype=np.float64, copy=True)
    if a.ndim < 2 or a.shape[-1] != a.shape[-2]:
        raise ValueError(f"matrices must be (..., n, n), got {a.shape}")
    n = a.shape[-1]
    if b.shape != a.shape[:-1]:
        raise ValueError(f"rhs shape {b.shape} does not match matrices {a.shape}")

    batch_shape = a.shape[:-2]
    a = a.reshape((-1, n, n))
    b = b.reshape((-1, n))
    m = a.shape[0]
    singular = np.zeros(m, dtype=bool)
    rows = np.arange(m)

    # Forward elimination with per-system partial pivoting.
    for k in range(n):
        pivot_rel = np.argmax(np.abs(a[:, k:, k]), axis=1)
        pivot = k + pivot_rel
        swap = pivot != k
        if swap.any():
            idx = rows[swap]
            a[idx, k, :], a[idx, pivot[swap], :] = (
                a[idx, pivot[swap], :].copy(),
                a[idx, k, :].copy(),
            )
            b[idx, k], b[idx, pivot[swap]] = b[idx, pivot[swap]].copy(), b[idx, k].copy()
        pivots = a[:, k, k]
        bad = np.abs(pivots) < SINGULAR_TOLERANCE
        singular |= bad
        safe = np.where(bad, 1.0, pivots)
        if k + 1 < n:
            factors = a[:, k + 1 :, k] / safe[:, None]
            factors[bad] = 0.0
            a[:, k + 1 :, :] -= factors[:, :, None] * a[:, k, None, :]
            b[:, k + 1 :] -= factors * b[:, k, None]

    # Back substitution.
    x = np.zeros_like(b)
    for k in range(n - 1, -1, -1):
        acc = b[:, k] - np.einsum("ij,ij->i", a[:, k, k + 1 :], x[:, k + 1 :])
        pivots = a[:, k, k]
        safe = np.where(np.abs(pivots) < SINGULAR_TOLERANCE, 1.0, pivots)
        x[:, k] = acc / safe
    x[singular] = 0.0

    return x.reshape(batch_shape + (n,)), singular.reshape(batch_shape)
