"""Opt-in array-API device backend for the hypothesis chain.

The per-hypothesis ``pointwise_fields -> box-sum -> 6x6 eliminate``
chain is pure elementwise + separable-filter + tiny-batched-solve work,
exactly the shape GPU block matchers run device-side.  This module
renders the whole chain -- including the pruned schedule's
certificate-grid sums -- in portable array operations against whichever
array library is importable:

* ``torch`` (CUDA when available, else CPU tensors),
* ``cupy`` (always GPU),
* ``numpy`` as the universal fallback, so the code path is exercised
  (and its tolerance measured) even on machines with no device library.

``REPRO_DEVICE_LIB`` forces a specific library (``torch``/``cupy``/
``numpy``) for tests and benchmarking.

The backend is **approximate by contract**, like ``search="pyramid"``:
box sums use cumulative-sum sliding windows and the elimination is a
functional (gather-based) rewrite, so results match the NumPy reference
only within the documented tolerance of :mod:`repro.kernels.digest`
(:data:`~repro.kernels.digest.DEVICE_RTOL` /
:data:`~repro.kernels.digest.DEVICE_ATOL`), never bit-for-bit.  That is
why ``backend="device"`` is opt-in everywhere and refused by layers
that promise bit-identical products (serve, streaming, the parallel
ladder).

Observability: every staged chunk increments ``kernel.device.chunks``
and runs under ``device_h2d`` / ``device_compute`` / ``device_d2h``
tracing spans, with transferred byte counts in the
``kernel.device.h2d_bytes`` / ``kernel.device.d2h_bytes`` histograms.
"""

from __future__ import annotations

import os

import numpy as np

from ..obs.metrics import METRICS
from ..obs.tracing import TRACER
from .reference import N_FIELDS, N_PARAMS, N_TRIU, SINGULAR_TOLERANCE, TRIU_INDICES

__all__ = [
    "DeviceBackend",
    "available_library",
    "get_device_backend",
    "reset_device_backend",
]

#: packed index of H entry (i, j): symmetric completion of TRIU_INDICES.
_PACKED_INDEX: dict[tuple[int, int], int] = {}
for _idx, (_i, _j) in enumerate(TRIU_INDICES):
    _PACKED_INDEX[(_i, _j)] = _idx
    _PACKED_INDEX[(_j, _i)] = _idx


def available_library() -> str:
    """Name of the array library the device backend will use.

    Honors ``REPRO_DEVICE_LIB`` when set; otherwise prefers ``torch``,
    then ``cupy``, then falls back to ``numpy``.
    """
    forced = os.environ.get("REPRO_DEVICE_LIB", "").strip().lower()
    if forced:
        if forced not in ("torch", "cupy", "numpy"):
            raise ValueError(
                f"REPRO_DEVICE_LIB={forced!r} is not one of torch, cupy, numpy"
            )
        return forced
    for name in ("torch", "cupy"):
        try:
            __import__(name)
            return name
        except ImportError:
            continue
    return "numpy"


class _ArrayOps:
    """Minimal array-namespace adapter over numpy / torch / cupy.

    Only the handful of operations the device chain needs, with the
    numpy calling convention; basic slicing and arithmetic operators are
    shared by all three libraries and used directly on the arrays.
    """

    def __init__(self, library: str) -> None:
        self.library = library
        if library == "torch":
            import torch

            self._torch = torch
            self.device = "cuda" if torch.cuda.is_available() else "cpu"
        elif library == "cupy":
            import cupy

            self._cupy = cupy
            self.device = "cuda"
        elif library == "numpy":
            self.device = "cpu"
        else:
            raise ValueError(f"unknown device library {library!r}")

    # -- transfers --------------------------------------------------------------

    def asarray(self, arr: np.ndarray, dtype=np.float64):
        if self.library == "torch":
            t = self._torch
            dt = t.float64 if dtype == np.float64 else t.int64
            return t.as_tensor(np.ascontiguousarray(arr), dtype=dt, device=self.device)
        if self.library == "cupy":
            return self._cupy.asarray(arr, dtype=dtype)
        return np.asarray(arr, dtype=dtype)

    def to_numpy(self, arr) -> np.ndarray:
        if self.library == "torch":
            return arr.detach().cpu().numpy()
        if self.library == "cupy":
            return self._cupy.asnumpy(arr)
        return np.asarray(arr)

    # -- construction -----------------------------------------------------------

    def zeros(self, shape, dtype=np.float64):
        if self.library == "torch":
            t = self._torch
            dt = {np.float64: t.float64, np.int64: t.int64, bool: t.bool}[dtype]
            return t.zeros(shape, dtype=dt, device=self.device)
        xp = self._cupy if self.library == "cupy" else np
        return xp.zeros(shape, dtype=dtype)

    def arange(self, n: int):
        if self.library == "torch":
            return self._torch.arange(n, device=self.device)
        xp = self._cupy if self.library == "cupy" else np
        return xp.arange(n)

    def eye(self, n: int):
        if self.library == "torch":
            return self._torch.eye(n, dtype=self._torch.float64, device=self.device)
        xp = self._cupy if self.library == "cupy" else np
        return xp.eye(n, dtype=np.float64)

    # -- elementwise / reductions -----------------------------------------------

    def where(self, cond, a, b):
        if self.library == "torch":
            return self._torch.where(cond, a, b)
        xp = self._cupy if self.library == "cupy" else np
        return xp.where(cond, a, b)

    def abs(self, x):
        return x.abs() if self.library == "torch" else abs(x)

    def maximum(self, x, floor: float):
        if self.library == "torch":
            return self._torch.clamp(x, min=floor)
        xp = self._cupy if self.library == "cupy" else np
        return xp.maximum(x, floor)

    def argmax(self, x, axis: int):
        if self.library == "torch":
            return self._torch.argmax(x, dim=axis)
        return x.argmax(axis=axis)

    def cumsum(self, x, axis: int):
        if self.library == "torch":
            return self._torch.cumsum(x, dim=axis)
        return x.cumsum(axis=axis)

    def stack(self, arrays, axis: int):
        if self.library == "torch":
            return self._torch.stack(arrays, dim=axis)
        xp = self._cupy if self.library == "cupy" else np
        return xp.stack(arrays, axis=axis)

    def concat(self, arrays, axis: int):
        if self.library == "torch":
            return self._torch.cat(arrays, dim=axis)
        xp = self._cupy if self.library == "cupy" else np
        return xp.concatenate(arrays, axis=axis)

    def take_along_axis(self, x, idx, axis: int):
        if self.library == "torch":
            t = self._torch
            shape = list(x.shape)
            shape[axis] = idx.shape[axis]
            return t.gather(x, axis, idx.broadcast_to(shape))
        xp = self._cupy if self.library == "cupy" else np
        return xp.take_along_axis(x, idx, axis=axis)

    def nbytes(self, arr) -> int:
        if self.library == "torch":
            return arr.element_size() * arr.nelement()
        return int(arr.nbytes)


class DeviceBackend:
    """Whole-hypothesis-chunk evaluation on an array-API device."""

    def __init__(self, library: str | None = None) -> None:
        self.ops = _ArrayOps(library or available_library())
        self.library = self.ops.library
        self.device = self.ops.device

    # -- staging ----------------------------------------------------------------

    def stage_chunk(self, p, q, e, g, p_after, q_after):
        """Transfer one hypothesis chunk and build its pointwise fields.

        ``p``/``q``/``e``/``g`` are the before-frame geometry ``(H, W)``;
        ``p_after``/``q_after`` are the gathered after-motion gradients
        ``(n, H, W)`` for the chunk's n hypotheses.  Returns the device
        pointwise-field stack of shape ``(n, H, W, 28)``.
        """
        METRICS.inc("kernel.device.chunks")
        with TRACER.span("device_h2d", library=self.library):
            arrays = [self.ops.asarray(a) for a in (p, q, e, g, p_after, q_after)]
            METRICS.observe(
                "kernel.device.h2d_bytes", sum(self.ops.nbytes(a) for a in arrays)
            )
        p_d, q_d, e_d, g_d, pa_d, qa_d = arrays
        with TRACER.span("device_compute", stage="pointwise"):
            return self._pointwise_fields(
                p_d[None], q_d[None], pa_d, qa_d, e_d[None], g_d[None]
            )

    def _pointwise_fields(self, p, q, p_after, q_after, e, g):
        """Device rendering of :func:`repro.kernels.reference.pointwise_fields`.

        Same packed layout and structural-zero skips; columns holding
        constants (-1) or zeros are handled symbolically so no constant
        planes are materialized.
        """
        dp = p_after - p
        dq = q_after - q
        w1 = 1.0 / (e * e)
        w2 = 1.0 / (g * g)
        # Column k of a1 / a2 as a device array, scalar, or None (zero).
        cols1 = [p_after, None, q + 0.0 * p_after, dp, -1.0, None]
        cols2 = [dq, p + 0.0 * p_after, None, q_after, None, -1.0]

        def product(w, cols, i, j):
            ci, cj = cols[i], cols[j]
            if ci is None or cj is None:
                return None
            return w * ci * cj

        zero = 0.0 * dp

        def full_shape(t):
            # Entries built only from constants and (1, H, W) weights
            # (e.g. the (-1, -1) product) broadcast up before stacking.
            return t if tuple(t.shape) == tuple(zero.shape) else t + zero

        entries = []
        for i, j in TRIU_INDICES:
            t1 = product(w1, cols1, i, j)
            t2 = product(w2, cols2, i, j)
            if t1 is not None and t2 is not None:
                entries.append(full_shape(t1 + t2))
            elif t1 is not None:
                entries.append(full_shape(t1))
            elif t2 is not None:
                entries.append(full_shape(t2))
            else:
                entries.append(zero)
        w1r1 = w1 * dp
        w2r2 = w2 * dq
        for k in range(N_PARAMS):
            t1 = None if cols1[k] is None else w1r1 * cols1[k]
            t2 = None if cols2[k] is None else w2r2 * cols2[k]
            if t1 is not None and t2 is not None:
                entries.append(t1 + t2)
            else:
                entries.append(t1 if t1 is not None else t2)
        entries.append(w1r1 * dp + w2r2 * dq)
        return self.ops.stack(entries, axis=-1)

    # -- box sums ---------------------------------------------------------------

    def _sliding_sum(self, x, axis: int, half_width: int):
        """Constant-padded sliding-window sum via cumulative sums."""
        ops = self.ops
        pad_shape = list(x.shape)
        pad_shape[axis] = half_width
        pad = ops.zeros(tuple(pad_shape))
        padded = ops.concat([pad, x, pad], axis=axis)
        c = ops.cumsum(padded, axis=axis)
        one_shape = list(x.shape)
        one_shape[axis] = 1
        c = ops.concat([ops.zeros(tuple(one_shape)), c], axis=axis)
        side = 2 * half_width + 1
        n = x.shape[axis]
        hi = [slice(None)] * x.ndim
        hi[axis] = slice(side, side + n)
        lo = [slice(None)] * x.ndim
        lo[axis] = slice(0, n)
        return c[tuple(hi)] - c[tuple(lo)]

    def box_sum(self, fields, half_width: int):
        """Box sum over the image axes of a device ``(n, H, W, 28)`` stack."""
        if half_width == 0:
            return fields
        with TRACER.span("device_compute", stage="box_sum", half_width=half_width):
            out = self._sliding_sum(fields, 1, half_width)
            return self._sliding_sum(out, 2, half_width)

    # -- batched solve ----------------------------------------------------------

    def _eliminate(self, a, b):
        """Functional batched partial-pivot GE (no in-place row swaps).

        Same schedule as the reference, rendered with gathers so it runs
        on libraries without numpy's fancy setitem.  ``a`` is (M, n, n),
        ``b`` is (M, n).
        """
        ops = self.ops
        m, n = a.shape[0], a.shape[-1]
        singular = ops.zeros((m,), dtype=bool)
        row_idx = ops.arange(n)
        for k in range(n):
            col = ops.abs(a[:, :, k])
            col = ops.where(row_idx[None, :] >= k, col, -1.0)
            pivot = ops.argmax(col, axis=1)
            j = row_idx[None, :]
            pv = pivot[:, None]
            perm = ops.where(j == k, pv, ops.where(j == pv, k + 0 * pv, j))
            a = ops.take_along_axis(a, perm[:, :, None], axis=1)
            b = ops.take_along_axis(b, perm, axis=1)
            pivots = a[:, k, k]
            bad = ops.abs(pivots) < SINGULAR_TOLERANCE
            singular = singular | bad
            safe = ops.where(bad, 1.0 + 0.0 * pivots, pivots)
            factors = a[:, :, k] / safe[:, None]
            keep = (row_idx[None, :] > k) & ~bad[:, None]
            factors = ops.where(keep, factors, 0.0 * factors)
            a = a - factors[:, :, None] * a[:, k, :][:, None, :]
            b = b - factors * b[:, k][:, None]
        xs: list = [None] * n
        for k in range(n - 1, -1, -1):
            acc = b[:, k]
            for j in range(k + 1, n):
                acc = acc - a[:, k, j] * xs[j]
            pivots = a[:, k, k]
            safe = ops.where(
                ops.abs(pivots) < SINGULAR_TOLERANCE, 1.0 + 0.0 * pivots, pivots
            )
            xs[k] = acc / safe
        x = ops.stack(xs, axis=1)
        x = ops.where(singular[:, None], 0.0 * x, x)
        return x, singular

    def solve_accumulated(self, acc_flat, ridge: float):
        """Device rendering of :func:`repro.core.continuous.solve_accumulated`.

        ``acc_flat`` is a device ``(M, 28)`` batch of template-summed
        packed fields; returns device ``(params, error, singular)``.
        """
        ops = self.ops
        h = ops.stack(
            [
                ops.stack(
                    [acc_flat[:, _PACKED_INDEX[(i, j)]] for j in range(N_PARAMS)],
                    axis=-1,
                )
                for i in range(N_PARAMS)
            ],
            axis=-2,
        )
        grad = acc_flat[:, N_TRIU : N_TRIU + N_PARAMS]
        c = acc_flat[:, N_TRIU + N_PARAMS]
        if ridge:
            h = h + ridge * ops.eye(N_PARAMS)[None]
        theta, singular = self._eliminate(h, -grad)
        error = ops.maximum(c + (theta * grad).sum(axis=-1), 0.0)
        return theta, error, singular

    # -- chunk-level entry points -----------------------------------------------

    def solve_template(self, pw, n_zt: int, ridge: float, survivors=None):
        """Template box sum + batched solve for a staged chunk.

        ``pw`` is the staged device ``(n, H, W, 28)`` pointwise stack.
        With ``survivors=None`` solves every pixel and returns numpy
        ``(error, params)`` of shapes ``(n, H, W)`` / ``(n, H, W, 6)``.
        With ``survivors`` (flat pixel indices into H*W, one hypothesis
        staged) solves only those systems and returns ``(error, params)``
        of shapes ``(s,)`` / ``(s, 6)``.
        """
        ops = self.ops
        acc = self.box_sum(pw, n_zt)
        with TRACER.span("device_compute", stage="solve"):
            n, h, w = acc.shape[0], acc.shape[1], acc.shape[2]
            flat = acc.reshape(n * h * w, N_FIELDS)
            if survivors is not None:
                flat = flat[ops.asarray(np.asarray(survivors), dtype=np.int64)]
            theta, error, _ = self.solve_accumulated(flat, ridge)
        with TRACER.span("device_d2h"):
            METRICS.observe(
                "kernel.device.d2h_bytes",
                self.ops.nbytes(error) + self.ops.nbytes(theta),
            )
            error_np = ops.to_numpy(error)
            theta_np = ops.to_numpy(theta)
        if survivors is not None:
            return error_np, theta_np
        return (
            error_np.reshape(n, h, w),
            theta_np.reshape(n, h, w, N_PARAMS),
        )

    def certificate_bounds(self, pw, m: int, gy: np.ndarray, gx: np.ndarray, ridge: float):
        """Certificate-grid lower bounds for one staged hypothesis.

        ``pw`` is the staged device ``(1, H, W, 28)`` stack; the
        certificate window sum of half-width ``m`` centered at grid
        point ``(gy[i], gx[j])`` is exactly the device box sum evaluated
        there, so the grid systems are a gather of the box-summed stack.
        Returns numpy ``(lb_grid, c_grid)`` of shape ``(len(gy),
        len(gx))``: the minimized certificate errors (zero where the
        certificate system was singular -- never prune) and the |c|
        entries the caller turns into fp slack.
        """
        ops = self.ops
        acc = self.box_sum(pw, m)
        with TRACER.span("device_compute", stage="certificates"):
            gy_d = ops.asarray(gy, dtype=np.int64)
            gx_d = ops.asarray(gx, dtype=np.int64)
            grid = acc[0][gy_d][:, gx_d]  # (len(gy), len(gx), 28)
            flat = grid.reshape(len(gy) * len(gx), N_FIELDS)
            theta, error, singular = self.solve_accumulated(flat, ridge)
            lb = ops.where(singular, 0.0 * error, error)
            c_abs = ops.abs(flat[:, N_FIELDS - 1])
        with TRACER.span("device_d2h"):
            METRICS.observe(
                "kernel.device.d2h_bytes", self.ops.nbytes(lb) + self.ops.nbytes(c_abs)
            )
            lb_np = ops.to_numpy(lb).reshape(len(gy), len(gx))
            c_np = ops.to_numpy(c_abs).reshape(len(gy), len(gx))
        return lb_np, c_np


_backend: DeviceBackend | None = None


def get_device_backend() -> DeviceBackend:
    """The process-wide device backend (created on first use)."""
    global _backend
    if _backend is None:
        _backend = DeviceBackend()
    return _backend


def reset_device_backend() -> None:
    """Drop the cached backend (tests flip ``REPRO_DEVICE_LIB``)."""
    global _backend
    _backend = None
