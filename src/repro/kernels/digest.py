"""Digest + tolerance harness for comparing kernel backends.

Two contracts coexist in :mod:`repro.kernels`:

* **bit-identity** -- the ``numpy`` and ``native`` backends (and the
  ``auto`` resolution between them) must produce byte-for-byte equal
  products.  :func:`field_digest` collapses a dense match result into a
  short stable digest so a single string equality check enforces it
  (the same digest is used by serve's result cache keys and the search
  benchmark).
* **documented tolerance** -- the opt-in ``device`` backend runs a
  different operation schedule (cumulative-sum box windows, functional
  elimination), so its floats may differ in the last ulps and an error
  near-tie may flip a pixel's winning integer displacement.
  :func:`compare_results` measures exactly that: elementwise error /
  parameter deviations against :data:`DEVICE_RTOL` / :data:`DEVICE_ATOL`
  plus the fraction of displacement flips, each of which must be an
  error tie within tolerance.

CI's backend-matrix job runs both checks: digests for the bitwise
backends, :func:`compare_results` for the device path.
"""

from __future__ import annotations

import hashlib

import numpy as np

#: Documented tolerance of the device backend relative to the NumPy
#: reference: per-pixel template errors and motion parameters agree to
#: ``atol + rtol * |reference|``.  Integer displacements may differ only
#: at pixels whose competing hypothesis errors tie within the same
#: tolerance.
DEVICE_RTOL = 1e-6
DEVICE_ATOL = 1e-9

#: Maximum fraction of pixels whose winning displacement may flip at
#: near-ties before :func:`compare_results` reports failure.
DEVICE_MAX_FLIP_FRACTION = 0.01


def field_digest(u, v, params, error) -> str:
    """Short stable digest of a dense match product's exact bytes."""
    h = hashlib.blake2b(digest_size=16)
    for arr in (u, v, params, error):
        arr = np.ascontiguousarray(np.asarray(arr, dtype=np.float64))
        h.update(str(arr.shape).encode())
        h.update(arr.tobytes())
    return h.hexdigest()


def result_digest(result) -> str:
    """Digest of any object with ``u``/``v``/``params``/``error`` arrays."""
    return field_digest(result.u, result.v, result.params, result.error)


def compare_results(
    reference,
    candidate,
    rtol: float = DEVICE_RTOL,
    atol: float = DEVICE_ATOL,
    max_flip_fraction: float = DEVICE_MAX_FLIP_FRACTION,
) -> dict:
    """Measure a candidate backend's deviation from the reference result.

    Both arguments expose ``u``/``v``/``params``/``error`` arrays (and
    optionally ``valid``; deviations are measured on valid pixels when
    present).  Returns a JSON-ready report whose ``within_tolerance``
    bool is the pass/fail verdict of the documented device contract:

    * ``error`` and, at agreeing pixels, ``params`` within
      ``atol + rtol * |reference|``;
    * displacement flips confined to error near-ties, and rarer than
      ``max_flip_fraction``.
    """
    ref_err = np.asarray(reference.error, dtype=np.float64)
    cand_err = np.asarray(candidate.error, dtype=np.float64)
    if ref_err.shape != cand_err.shape:
        raise ValueError(f"shape mismatch: {ref_err.shape} vs {cand_err.shape}")
    valid = getattr(reference, "valid", None)
    mask = (
        np.ones(ref_err.shape, dtype=bool)
        if valid is None
        else np.asarray(valid, dtype=bool)
    )

    tol = atol + rtol * np.abs(ref_err)
    err_dev = np.abs(cand_err - ref_err)
    error_ok = bool(np.all(err_dev[mask] <= tol[mask]))

    same_uv = (np.asarray(reference.u) == np.asarray(candidate.u)) & (
        np.asarray(reference.v) == np.asarray(candidate.v)
    )
    flips = mask & ~same_uv
    n_valid = int(mask.sum())
    flip_fraction = float(flips.sum()) / n_valid if n_valid else 0.0
    # A flip is benign when the two backends picked hypotheses whose
    # errors tie within tolerance -- both are legitimate minima.
    flips_are_ties = bool(np.all(err_dev[flips] <= tol[flips]))

    agree = mask & same_uv
    ref_params = np.asarray(reference.params, dtype=np.float64)
    cand_params = np.asarray(candidate.params, dtype=np.float64)
    params_dev = np.abs(cand_params - ref_params)
    params_tol = atol + rtol * np.abs(ref_params)
    params_ok = bool(np.all(params_dev[agree] <= params_tol[agree]))

    bitwise = result_digest(reference) == result_digest(candidate)
    return {
        "bitwise_equal": bitwise,
        "error_max_abs_dev": float(err_dev[mask].max()) if n_valid else 0.0,
        "params_max_abs_dev": float(params_dev[agree].max()) if agree.any() else 0.0,
        "flip_fraction": flip_fraction,
        "flips_are_ties": flips_are_ties,
        "within_tolerance": bool(
            error_ok
            and params_ok
            and flips_are_ties
            and flip_fraction <= max_flip_fraction
        ),
        "rtol": rtol,
        "atol": atol,
    }
