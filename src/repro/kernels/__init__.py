"""Backend-neutral hypothesis kernels and their orchestration layer.

The SMA hypothesis-evaluation chain -- residual rows, packed
normal-equation fields, template box sums, certificate-grid window sums
and the batched 6x6 Gaussian elimination -- lives here, decoupled from
the search orchestration in :mod:`repro.core.matching`.  Three
executions plug into the same chain:

* :mod:`repro.kernels.reference` -- the serial NumPy path; THE
  bit-identity reference every other backend answers to.
* :mod:`repro.native` -- the C kernel for the batched eliminate,
  bitwise-equal by construction and cross-checked on load.
* :mod:`repro.kernels.device` -- the opt-in array-API path (torch /
  cupy / numpy fallback) that runs whole hypothesis chunks on device
  under the documented tolerance of :mod:`repro.kernels.digest`.

:func:`resolve_backend` is the single selection point.  Backend names:

* ``"auto"`` (default) -- exactly the historical behavior: the native
  eliminate when it is available and passes its self-check, the NumPy
  reference otherwise.  Bit-identical either way.
* ``"numpy"`` -- pin the pure NumPy reference (benchmarks use this to
  time the pre-native behavior honestly).
* ``"native"`` -- require the native eliminate; raises with the
  :func:`repro.native.native_status` reason when it is unavailable
  instead of silently degrading.
* ``"device"`` -- the array-API chunk path.  Approximate by contract
  (like ``search="pyramid"``), therefore opt-in everywhere and refused
  by the layers that promise bit-identical products (serve, streaming,
  the degradation ladder).

Every resolution increments the ``kernel.backend.<resolved>`` metric so
runs record which kernels actually executed.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..obs.metrics import METRICS
from .digest import (
    DEVICE_ATOL,
    DEVICE_RTOL,
    compare_results,
    field_digest,
    result_digest,
)
from .reference import (
    A1_ZERO_COLUMNS,
    A2_ZERO_COLUMNS,
    N_FIELDS,
    N_PARAMS,
    N_TRIU,
    PARAM_NAMES,
    SINGULAR_TOLERANCE,
    TRIU_INDICES,
    box_sum,
    box_sum_rect,
    box_sum_stack,
    eliminate,
    pointwise_fields,
    residual_rows,
    strided_window_sums,
)

__all__ = [
    "A1_ZERO_COLUMNS",
    "A2_ZERO_COLUMNS",
    "DEVICE_ATOL",
    "DEVICE_RTOL",
    "KERNEL_BACKENDS",
    "N_FIELDS",
    "N_PARAMS",
    "N_TRIU",
    "PARAM_NAMES",
    "SINGULAR_TOLERANCE",
    "TRIU_INDICES",
    "ResolvedBackend",
    "box_sum",
    "box_sum_rect",
    "box_sum_stack",
    "compare_results",
    "eliminate",
    "field_digest",
    "pointwise_fields",
    "residual_rows",
    "resolve_backend",
    "result_digest",
    "strided_window_sums",
]

#: Backend names accepted by ``track_dense``-level entry points.
KERNEL_BACKENDS = ("auto", "numpy", "native", "device")

#: The subset guaranteed bit-identical to the NumPy reference -- the
#: only backends accepted where products promise bit-identity (serve,
#: streaming, the parallel ladder).
BITWISE_BACKENDS = ("auto", "numpy", "native")


@dataclass(frozen=True)
class ResolvedBackend:
    """Outcome of one :func:`resolve_backend` call.

    ``requested`` is the caller's name; ``resolved`` is the execution
    path actually taken (``"numpy"``, ``"native"`` or ``"device"``).
    ``prefer_native`` feeds :func:`repro.core.linalg.gaussian_eliminate`
    dispatch on the host paths; ``device`` carries the live
    :class:`repro.kernels.device.DeviceBackend` on the device path.
    """

    requested: str
    resolved: str
    prefer_native: bool
    device: object | None = None

    @property
    def is_device(self) -> bool:
        return self.device is not None


def resolve_backend(name: str = "auto") -> ResolvedBackend:
    """Validate a backend name and bind it to an execution path."""
    if name not in KERNEL_BACKENDS:
        raise ValueError(
            f"unknown kernel backend {name!r} (choose from {', '.join(KERNEL_BACKENDS)})"
        )
    if name == "device":
        from .device import get_device_backend

        backend = ResolvedBackend(
            requested=name, resolved="device", prefer_native=False,
            device=get_device_backend(),
        )
    elif name == "native":
        from ..native import native_available, native_status

        if not native_available():
            raise RuntimeError(
                f"backend='native' requested but the native kernel is "
                f"unavailable: {native_status()}"
            )
        backend = ResolvedBackend(requested=name, resolved="native", prefer_native=True)
    elif name == "numpy":
        backend = ResolvedBackend(requested=name, resolved="numpy", prefer_native=False)
    else:  # auto: historical dispatch, native when usable
        from ..native import native_available

        resolved = "native" if native_available() else "numpy"
        backend = ResolvedBackend(requested=name, resolved=resolved, prefer_native=True)
    METRICS.inc(f"kernel.backend.{backend.resolved}")
    return backend
