"""Neighborhood parameter sets for the SMA algorithm.

The paper parameterizes every stage of the Semi-fluid Motion Analysis
(SMA) algorithm by half-widths of square pixel neighborhoods.  A
half-width ``N`` always denotes a ``(2N + 1) x (2N + 1)`` window
centered on the pixel of interest:

* ``N_w``   -- surface-patch fitting window (quadratic least squares),
* ``N_zs``  -- z-search (hypothesis) neighborhood in the *after* frame,
* ``N_zT``  -- z-template neighborhood in the *before* frame,
* ``N_ss``  -- semi-fluid search neighborhood (per template pixel),
* ``N_sT``  -- semi-fluid template neighborhood.

Table 1 of the paper gives the values used for the Hurricane Frederic
stereo sequence and Table 3 the values used for the GOES-9 Florida
thunderstorm rapid-scan sequence; Section 5 gives the Hurricane Luis
values in the running text.  :data:`FREDERIC_CONFIG`,
:data:`GOES9_CONFIG` and :data:`LUIS_CONFIG` reproduce them exactly.

Setting ``N_ss = 0`` collapses the semi-fluid template mapping
``F_semi`` onto the continuous mapping ``F_cont`` (Section 2.3), which
is how the continuous model is selected in this implementation.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass


def window_size(half_width: int) -> int:
    """Return the full window side length ``2 * half_width + 1``.

    Raises
    ------
    ValueError
        If ``half_width`` is negative.
    """
    if half_width < 0:
        raise ValueError(f"neighborhood half-width must be >= 0, got {half_width}")
    return 2 * half_width + 1


def window_pixels(half_width: int) -> int:
    """Return the number of pixels in the square ``(2N+1)^2`` window."""
    side = window_size(half_width)
    return side * side


@dataclass(frozen=True)
class NeighborhoodConfig:
    """Complete neighborhood parameterization of one SMA run.

    Attributes
    ----------
    n_w:
        Surface-patch fitting half-width (paper: ``N_w``; Table 1 row
        "Surface-fitting", 5x5 -> ``n_w = 2``).
    n_zs:
        Hypothesis / z-search half-width (Table 1: 13x13 -> 6).
    n_zt:
        z-template half-width (Table 1: 121x121 -> 60).
    n_ss:
        Semi-fluid search half-width; 0 selects the continuous model
        ``F_cont`` (Table 1: 3x3 -> 1).
    n_st:
        Semi-fluid template half-width (Table 1: 5x5 -> 2).  The paper
        chooses ``N_sT = N_w`` ("we have chosen the same size for the
        fluid-template and surface-patch neighborhood", Section 4.3).
    name:
        Human-readable label used in reports.
    """

    n_w: int
    n_zs: int
    n_zt: int
    n_ss: int = 0
    n_st: int = 2
    name: str = "custom"

    def __post_init__(self) -> None:
        for field in ("n_w", "n_zs", "n_zt", "n_ss", "n_st"):
            value = getattr(self, field)
            if not isinstance(value, int):
                raise TypeError(f"{field} must be an int, got {type(value).__name__}")
            if value < 0:
                raise ValueError(f"{field} must be >= 0, got {value}")
        if self.n_zt < self.n_st:
            raise ValueError(
                "the z-template must contain the semi-fluid template: "
                f"n_zt={self.n_zt} < n_st={self.n_st}"
            )

    # -- derived window geometry -------------------------------------------------

    @property
    def surface_window(self) -> int:
        """Side length of the surface-patch fitting window."""
        return window_size(self.n_w)

    @property
    def search_window(self) -> int:
        """Side length of the z-search (hypothesis) window."""
        return window_size(self.n_zs)

    @property
    def template_window(self) -> int:
        """Side length of the z-template window."""
        return window_size(self.n_zt)

    @property
    def semifluid_search_window(self) -> int:
        """Side length of the semi-fluid search window."""
        return window_size(self.n_ss)

    @property
    def semifluid_template_window(self) -> int:
        """Side length of the semi-fluid template window."""
        return window_size(self.n_st)

    @property
    def hypotheses_per_pixel(self) -> int:
        """Number of motion hypotheses evaluated per tracked pixel.

        Table 1 scale: 13 x 13 = 169 Gaussian eliminations per pixel.
        """
        return window_pixels(self.n_zs)

    @property
    def template_pixels(self) -> int:
        """Number of error terms per hypothesis (121 x 121 = 14641)."""
        return window_pixels(self.n_zt)

    @property
    def semifluid_candidates(self) -> int:
        """Error terms per semi-fluid template mapping (3 x 3 = 9)."""
        return window_pixels(self.n_ss)

    @property
    def semifluid_patch_terms(self) -> int:
        """Discriminant comparisons per semi-fluid error term (5 x 5 = 25)."""
        return window_pixels(self.n_st)

    @property
    def is_semifluid(self) -> bool:
        """True when the semi-fluid model (``N_ss > 0``) is active."""
        return self.n_ss > 0

    @property
    def precompute_window(self) -> int:
        """Side of the enlarged precompute neighborhood of Section 4.1.

        The optimized implementation first computes the semi-fluid error
        term for all pixels in a ``(2N_zs + 2N_ss + 1)^2`` neighborhood
        and then applies a ``(2N_ss + 1)^2`` minimizing window.
        """
        return 2 * self.n_zs + 2 * self.n_ss + 1

    def margin(self) -> int:
        """Pixels of border margin needed so every window stays in-bounds.

        The worst-case reach from a tracked pixel is the template
        half-width plus the hypothesis displacement plus the semi-fluid
        search, plus the wider of the surface-fit and semi-fluid-patch
        half-widths needed to evaluate patches at the farthest sampled
        pixel.
        """
        return self.n_zt + self.n_zs + self.n_ss + max(self.n_w, self.n_st)

    def replace(self, **kwargs: object) -> "NeighborhoodConfig":
        """Return a copy with the given fields replaced."""
        return dataclasses.replace(self, **kwargs)

    def table_rows(self) -> list[tuple[str, str, str]]:
        """Render the config as (neighborhood type, variable, window) rows.

        Mirrors the layout of Tables 1 and 3 of the paper.
        """
        rows = [
            ("Surface-fitting", f"N_w = {self.n_w}", f"{self.surface_window} x {self.surface_window}"),
            ("z-Search area", f"N_zs = {self.n_zs}", f"{self.search_window} x {self.search_window}"),
            ("z-Template", f"N_zT = {self.n_zt}", f"{self.template_window} x {self.template_window}"),
        ]
        if self.is_semifluid:
            rows.append(
                (
                    "Semi-fluid search",
                    f"N_ss = {self.n_ss}",
                    f"{self.semifluid_search_window} x {self.semifluid_search_window}",
                )
            )
            rows.append(
                (
                    "Semi-fluid template",
                    f"N_sT = {self.n_st}",
                    f"{self.semifluid_template_window} x {self.semifluid_template_window}",
                )
            )
        return rows


#: Table 1 -- Hurricane Frederic stereo time sequence (512 x 512 images).
#: Surface-fitting 5x5, z-search 13x13, z-template 121x121, semi-fluid
#: search 3x3, semi-fluid template 5x5.
FREDERIC_CONFIG = NeighborhoodConfig(
    n_w=2, n_zs=6, n_zt=60, n_ss=1, n_st=2, name="hurricane-frederic"
)

#: Table 3 -- GOES-9 Florida thunderstorm rapid scan (512 x 512 images),
#: continuous model: search 15x15, template 15x15, surface patch 5x5.
GOES9_CONFIG = NeighborhoodConfig(
    n_w=2, n_zs=7, n_zt=7, n_ss=0, n_st=2, name="goes9-florida"
)

#: Section 5 -- Hurricane Luis dense 490-frame sequence, continuous
#: model with an 11x11 z-template and a 9x9 z-search.
LUIS_CONFIG = NeighborhoodConfig(
    n_w=2, n_zs=4, n_zt=5, n_ss=0, n_st=2, name="hurricane-luis"
)

#: Image geometry used throughout the paper's evaluation.
PAPER_IMAGE_SIZE = 512

#: A small configuration convenient for tests and examples; exercises the
#: semi-fluid path with every window >= the minimum meaningful size.
SMALL_CONFIG = NeighborhoodConfig(
    n_w=2, n_zs=2, n_zt=3, n_ss=1, n_st=2, name="small-test"
)
