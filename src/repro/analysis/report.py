"""Report rendering: text tables, CSV, PGM/PPM images, ASCII quiver.

The benchmark harness regenerates the paper's tables and figures as
terminal output and plain files (no plotting dependencies are
available offline): aligned text tables for Tables 1-4, CSV series for
Fig. 4, binary PGM/PPM writers for image panels, and an ASCII quiver
renderer for the Fig. 6 style vector-field panels.
"""

from __future__ import annotations

import csv
import io
import math
from pathlib import Path
from typing import Sequence

import numpy as np


def format_table(
    rows: Sequence[Sequence[object]],
    headers: Sequence[str] | None = None,
    title: str | None = None,
    float_format: str = "{:.6g}",
) -> str:
    """Render rows as an aligned monospace table."""
    rendered: list[list[str]] = []
    if headers is not None:
        rendered.append([str(h) for h in headers])
    for row in rows:
        cells = []
        for cell in row:
            if isinstance(cell, float):
                cells.append(float_format.format(cell))
            else:
                cells.append(str(cell))
        rendered.append(cells)
    if not rendered:
        return (title + "\n") if title else ""
    width = max(len(r) for r in rendered)
    for r in rendered:
        r.extend([""] * (width - len(r)))
    col_widths = [max(len(r[c]) for r in rendered) for c in range(width)]
    lines = []
    if title:
        lines.append(title)
        lines.append("=" * max(len(title), sum(col_widths) + 2 * (width - 1)))
    start = 0
    if headers is not None:
        lines.append("  ".join(c.ljust(w) for c, w in zip(rendered[0], col_widths)))
        lines.append("  ".join("-" * w for w in col_widths))
        start = 1
    for r in rendered[start:]:
        lines.append("  ".join(c.ljust(w) for c, w in zip(r, col_widths)))
    return "\n".join(lines) + "\n"


def write_csv(path: str | Path, rows: Sequence[Sequence[object]], headers: Sequence[str] | None = None) -> None:
    """Write rows (optionally with a header) to a CSV file."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        if headers is not None:
            writer.writerow(headers)
        writer.writerows(rows)


def to_gray_bytes(image: np.ndarray) -> np.ndarray:
    """Normalize a float image to uint8 [0, 255]."""
    image = np.asarray(image, dtype=np.float64)
    low, high = float(image.min()), float(image.max())
    if high - low < np.finfo(np.float64).eps:
        return np.zeros(image.shape, dtype=np.uint8)
    return np.round(255.0 * (image - low) / (high - low)).astype(np.uint8)


def write_pgm(path: str | Path, image: np.ndarray) -> None:
    """Write a 2-D array as a binary PGM (P5) image."""
    data = to_gray_bytes(image)
    if data.ndim != 2:
        raise ValueError("PGM needs a 2-D array")
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("wb") as handle:
        handle.write(f"P5\n{data.shape[1]} {data.shape[0]}\n255\n".encode())
        handle.write(data.tobytes())


def write_ppm(path: str | Path, rgb: np.ndarray) -> None:
    """Write an (H, W, 3) uint8 array as a binary PPM (P6) image."""
    rgb = np.asarray(rgb)
    if rgb.ndim != 3 or rgb.shape[2] != 3:
        raise ValueError("PPM needs an (H, W, 3) array")
    data = rgb.astype(np.uint8)
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("wb") as handle:
        handle.write(f"P6\n{data.shape[1]} {data.shape[0]}\n255\n".encode())
        handle.write(data.tobytes())


#: Eight-direction arrow glyphs indexed by rounded flow direction.
ARROWS = "→↗↑↖←↙↓↘"


def ascii_quiver(
    u: np.ndarray,
    v: np.ndarray,
    mask: np.ndarray | None = None,
    stride: int = 4,
    magnitude_floor: float = 0.25,
) -> str:
    """Render a vector field as a character grid (Fig. 6 style).

    One glyph per ``stride x stride`` block: an arrow for the dominant
    direction, ``.`` for near-zero flow, space outside the mask.
    Image +y is down, so "up" arrows mean negative v.
    """
    u = np.asarray(u, dtype=np.float64)
    v = np.asarray(v, dtype=np.float64)
    if u.shape != v.shape:
        raise ValueError("u and v must share a shape")
    if stride < 1:
        raise ValueError("stride must be >= 1")
    if mask is None:
        mask = np.ones(u.shape, dtype=bool)
    lines = []
    h, w = u.shape
    for y in range(0, h, stride):
        row = io.StringIO()
        for x in range(0, w, stride):
            if not mask[y, x]:
                row.write(" ")
                continue
            uu, vv = u[y, x], v[y, x]
            mag = math.hypot(uu, vv)
            if mag < magnitude_floor:
                row.write(".")
                continue
            # screen direction: +x right, +y down -> angle in standard
            # orientation uses -v for "up is positive"
            angle = math.atan2(-vv, uu)
            index = int(round(angle / (math.pi / 4))) % 8
            row.write(ARROWS[index])
        lines.append(row.getvalue().rstrip())
    return "\n".join(lines) + "\n"


def quiver_panel(
    intensity: np.ndarray,
    u: np.ndarray,
    v: np.ndarray,
    mask: np.ndarray,
    stride: int = 10,
    scale: float = 3.0,
) -> np.ndarray:
    """Render motion vectors over an intensity image as an RGB panel.

    Vectors are drawn (Bresenham-ish) in red with a 3x3 cross at the
    base -- the paper's Fig. 6 presentation ("marked by 3 x 3 crosses")
    -- one per ``stride`` pixels over the masked region.
    """
    base = to_gray_bytes(intensity)
    rgb = np.stack([base, base, base], axis=-1).astype(np.int64)
    h, w = base.shape
    ys, xs = np.nonzero(np.asarray(mask, dtype=bool))
    sel = (ys % stride == 0) & (xs % stride == 0)
    for y, x in zip(ys[sel], xs[sel]):
        # 3x3 cross at the base
        for dy, dx in ((0, 0), (0, 1), (0, -1), (1, 0), (-1, 0)):
            yy, xx = y + dy, x + dx
            if 0 <= yy < h and 0 <= xx < w:
                rgb[yy, xx] = (255, 220, 0)
        # vector ray
        steps = max(int(scale * max(abs(u[y, x]), abs(v[y, x]))), 1)
        for s in range(steps + 1):
            t = s / steps
            yy = int(round(y + t * scale * v[y, x]))
            xx = int(round(x + t * scale * u[y, x]))
            if 0 <= yy < h and 0 <= xx < w:
                rgb[yy, xx] = (255, 60, 60)
    return np.clip(rgb, 0, 255).astype(np.uint8)
