"""Motion-field accuracy metrics.

The paper's accuracy statements are pixel-RMSE against reference
vectors ("a root-mean-squared error of less than one pixel with respect
to the manual estimates") and qualitative wind-field agreement.  This
module provides those plus the standard optical-flow metrics used to
compare models in the ablation benches: endpoint error, angular error
(Barron et al. convention with the space-time unit extension), and
field-vs-field summaries restricted to a validity mask.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


def endpoint_error(
    u_est: np.ndarray, v_est: np.ndarray, u_ref: np.ndarray, v_ref: np.ndarray
) -> np.ndarray:
    """Per-pixel Euclidean endpoint error (pixels)."""
    u_est, v_est, u_ref, v_ref = map(np.asarray, (u_est, v_est, u_ref, v_ref))
    return np.hypot(u_est - u_ref, v_est - v_ref)


def rmse(
    u_est: np.ndarray,
    v_est: np.ndarray,
    u_ref: np.ndarray,
    v_ref: np.ndarray,
    mask: np.ndarray | None = None,
) -> float:
    """Root-mean-squared endpoint error over an optional mask."""
    err = endpoint_error(u_est, v_est, u_ref, v_ref)
    if mask is not None:
        mask = np.asarray(mask, dtype=bool)
        if mask.shape != err.shape:
            raise ValueError("mask shape mismatch")
        err = err[mask]
    if err.size == 0:
        raise ValueError("no pixels to compare")
    return float(np.sqrt(np.mean(err * err)))


def angular_error_deg(
    u_est: np.ndarray, v_est: np.ndarray, u_ref: np.ndarray, v_ref: np.ndarray
) -> np.ndarray:
    """Barron angular error (degrees) between space-time direction vectors.

    Vectors (u, v, 1) are compared on the unit sphere; this de-weights
    direction noise on near-zero flows, the standard optical-flow
    convention.
    """
    u_est, v_est, u_ref, v_ref = map(
        lambda a: np.asarray(a, dtype=np.float64), (u_est, v_est, u_ref, v_ref)
    )
    num = u_est * u_ref + v_est * v_ref + 1.0
    den = np.sqrt(u_est**2 + v_est**2 + 1.0) * np.sqrt(u_ref**2 + v_ref**2 + 1.0)
    cos = np.clip(num / den, -1.0, 1.0)
    return np.degrees(np.arccos(cos))


@dataclass(frozen=True)
class FieldComparison:
    """Summary statistics of an estimated field vs a reference field."""

    rmse_px: float
    mean_endpoint_px: float
    p90_endpoint_px: float
    max_endpoint_px: float
    mean_angular_deg: float
    pixels: int

    def rows(self) -> list[tuple[str, float]]:
        return [
            ("RMSE (px)", self.rmse_px),
            ("mean EPE (px)", self.mean_endpoint_px),
            ("p90 EPE (px)", self.p90_endpoint_px),
            ("max EPE (px)", self.max_endpoint_px),
            ("mean angular err (deg)", self.mean_angular_deg),
            ("pixels compared", float(self.pixels)),
        ]


def compare_fields(
    u_est: np.ndarray,
    v_est: np.ndarray,
    u_ref: np.ndarray,
    v_ref: np.ndarray,
    mask: np.ndarray | None = None,
) -> FieldComparison:
    """Full accuracy summary over a validity mask."""
    err = endpoint_error(u_est, v_est, u_ref, v_ref)
    ang = angular_error_deg(u_est, v_est, u_ref, v_ref)
    if mask is not None:
        mask = np.asarray(mask, dtype=bool)
        if mask.shape != err.shape:
            raise ValueError("mask shape mismatch")
        err = err[mask]
        ang = ang[mask]
    if err.size == 0:
        raise ValueError("no pixels to compare")
    return FieldComparison(
        rmse_px=float(np.sqrt(np.mean(err * err))),
        mean_endpoint_px=float(err.mean()),
        p90_endpoint_px=float(np.quantile(err, 0.9)),
        max_endpoint_px=float(err.max()),
        mean_angular_deg=float(ang.mean()),
        pixels=int(err.size),
    )


def fields_identical(
    u_a: np.ndarray,
    v_a: np.ndarray,
    u_b: np.ndarray,
    v_b: np.ndarray,
    mask: np.ndarray | None = None,
    atol: float = 0.0,
) -> bool:
    """Exact (or atol-bounded) agreement check between two fields.

    This is the paper's parallel-vs-sequential validation predicate
    ("the parallel algorithm obtained the same result as the sequential
    implementation").
    """
    du = np.abs(np.asarray(u_a) - np.asarray(u_b))
    dv = np.abs(np.asarray(v_a) - np.asarray(v_b))
    if mask is not None:
        mask = np.asarray(mask, dtype=bool)
        du = du[mask]
        dv = dv[mask]
    return bool((du <= atol).all() and (dv <= atol).all())
