"""Matching diagnostics: confidence and ambiguity of the hypothesis search.

The SMA reports the error-minimizing hypothesis, but operational wind
production needs to know *how decisively* it won: a flat error surface
means the template was ambiguous (periodic cloud streets, bland anvil
tops) and the vector should be down-weighted or rejected.  Standard
diagnostics from the matching literature, computed from the hypothesis
error volume that :func:`repro.extensions.subpixel.track_dense_with_volume`
retains:

* :func:`peak_ratio` -- best error / second-best error outside the
  winner's immediate neighborhood (near 0 = decisive, near 1 =
  ambiguous),
* :func:`error_margin` -- absolute gap to the runner-up,
* :func:`ambiguity_mask` -- pixels whose ratio exceeds a threshold,
* :func:`confidence_weights` -- a [0, 1] weight map for downstream
  fusion (used by the coupled stereo-motion extension's fusion step and
  by confidence-weighted relaxation).
"""

from __future__ import annotations

import numpy as np


def _flatten_volume(volume: np.ndarray) -> np.ndarray:
    """(side, side, H, W) -> (side*side, H, W) with validation."""
    volume = np.asarray(volume, dtype=np.float64)
    if volume.ndim != 4 or volume.shape[0] != volume.shape[1]:
        raise ValueError(f"expected a (side, side, H, W) error volume, got {volume.shape}")
    side = volume.shape[0]
    return volume.reshape(side * side, *volume.shape[2:])


def second_minimum_outside_neighborhood(
    volume: np.ndarray, exclusion_radius: int = 1
) -> np.ndarray:
    """Per-pixel runner-up error, excluding the winner's neighborhood.

    The immediate lattice neighbors of the winner share its match (the
    error surface is smooth), so the informative runner-up is the best
    error at Chebyshev distance > ``exclusion_radius`` from the argmin.
    Pixels whose entire volume lies within the exclusion zone get +inf.
    """
    if exclusion_radius < 0:
        raise ValueError("exclusion_radius must be >= 0")
    vol = np.asarray(volume, dtype=np.float64)
    flat = _flatten_volume(vol)
    side = vol.shape[0]
    best_idx = np.argmin(flat, axis=0)
    best_iy, best_ix = best_idx // side, best_idx % side
    iy = np.arange(side)[:, None, None, None]
    ix = np.arange(side)[None, :, None, None]
    dist = np.maximum(np.abs(iy - best_iy[None, None]), np.abs(ix - best_ix[None, None]))
    masked = np.where(dist > exclusion_radius, vol, np.inf)
    return masked.min(axis=(0, 1))


def peak_ratio(volume: np.ndarray, exclusion_radius: int = 1) -> np.ndarray:
    """Best/runner-up error ratio in [0, 1]; small = decisive match.

    Ratio 0 means a perfect winner against imperfect alternatives;
    ratio 1 means the runner-up matched equally well (total ambiguity).
    Pixels with no admissible runner-up get ratio 0 (trivially decisive).
    """
    flat = _flatten_volume(np.asarray(volume))
    best = flat.min(axis=0)
    second = second_minimum_outside_neighborhood(volume, exclusion_radius)
    with np.errstate(divide="ignore", invalid="ignore"):
        ratio = best / second
    ratio = np.where(np.isfinite(second) & (second > 0), ratio, 0.0)
    return np.clip(ratio, 0.0, 1.0)


def error_margin(volume: np.ndarray, exclusion_radius: int = 1) -> np.ndarray:
    """Absolute runner-up gap (second - best); large = decisive."""
    flat = _flatten_volume(np.asarray(volume))
    best = flat.min(axis=0)
    second = second_minimum_outside_neighborhood(volume, exclusion_radius)
    margin = second - best
    return np.where(np.isfinite(margin), margin, np.inf)


def ambiguity_mask(
    volume: np.ndarray, threshold: float = 0.8, exclusion_radius: int = 1
) -> np.ndarray:
    """True where the match is ambiguous (peak ratio above threshold)."""
    if not 0.0 < threshold <= 1.0:
        raise ValueError("threshold must be in (0, 1]")
    return peak_ratio(volume, exclusion_radius) >= threshold


def confidence_weights(
    volume: np.ndarray, exclusion_radius: int = 1, sharpness: float = 4.0
) -> np.ndarray:
    """[0, 1] weights: `(1 - ratio)^sharpness`, 1 = fully trusted.

    A smooth monotone map of the peak ratio suitable for weighted
    fusion/relaxation; ``sharpness`` controls how quickly trust decays
    as the runner-up closes in.
    """
    if sharpness <= 0:
        raise ValueError("sharpness must be positive")
    return (1.0 - peak_ratio(volume, exclusion_radius)) ** sharpness
