"""Evaluation harness: metrics, timing models, baselines, reporting.

Accuracy metrics and the parallel-vs-sequential identity predicate
(:mod:`.metrics`), the MP-2 / SGI timing models regenerating Tables 2
and 4 and Figure 4 (:mod:`.costmodel`), the Horn-Schunck prior-art
baseline (:mod:`.baselines`) and table/figure renderers
(:mod:`.report`).
"""

from .baselines import AVERAGE_KERNEL, HornSchunckResult, horn_schunck, hs_derivatives
from .diagnostics import (
    ambiguity_mask,
    confidence_weights,
    error_margin,
    peak_ratio,
    second_minimum_outside_neighborhood,
)
from .trajectories import Trajectory, integrate, sample_bilinear, trajectory_speeds
from .costmodel import (
    FREDERIC_FIG4_ESTIMATE_DAYS,
    FREDERIC_PARALLEL_SECONDS,
    FREDERIC_SEQUENTIAL_DAYS,
    FREDERIC_SPEEDUP,
    GOES9_PARALLEL_SECONDS,
    GOES9_SEQUENTIAL_HOURS,
    GOES9_SPEEDUP,
    LUIS_PARALLEL_MINUTES_PER_PAIR,
    LUIS_SPEEDUP_FLOOR,
    TABLE2_PAPER_ROWS,
    TABLE4_PAPER_ROWS,
    SGISequentialModel,
    predict_parallel,
    speedup,
    table2_model_rows,
    table4_model_rows,
)
from .metrics import (
    FieldComparison,
    angular_error_deg,
    compare_fields,
    endpoint_error,
    fields_identical,
    rmse,
)
from .report import (
    ascii_quiver,
    format_table,
    quiver_panel,
    to_gray_bytes,
    write_csv,
    write_pgm,
    write_ppm,
)

__all__ = [
    "AVERAGE_KERNEL",
    "ambiguity_mask",
    "confidence_weights",
    "error_margin",
    "peak_ratio",
    "second_minimum_outside_neighborhood",
    "Trajectory",
    "integrate",
    "sample_bilinear",
    "trajectory_speeds",
    "HornSchunckResult",
    "horn_schunck",
    "hs_derivatives",
    "FREDERIC_FIG4_ESTIMATE_DAYS",
    "FREDERIC_PARALLEL_SECONDS",
    "FREDERIC_SEQUENTIAL_DAYS",
    "FREDERIC_SPEEDUP",
    "GOES9_PARALLEL_SECONDS",
    "GOES9_SEQUENTIAL_HOURS",
    "GOES9_SPEEDUP",
    "LUIS_PARALLEL_MINUTES_PER_PAIR",
    "LUIS_SPEEDUP_FLOOR",
    "TABLE2_PAPER_ROWS",
    "TABLE4_PAPER_ROWS",
    "SGISequentialModel",
    "predict_parallel",
    "speedup",
    "table2_model_rows",
    "table4_model_rows",
    "FieldComparison",
    "angular_error_deg",
    "compare_fields",
    "endpoint_error",
    "fields_identical",
    "rmse",
    "ascii_quiver",
    "format_table",
    "quiver_panel",
    "to_gray_bytes",
    "write_csv",
    "write_pgm",
    "write_ppm",
]
