"""Horn & Schunck optical flow: the prior-art baseline.

The paper positions the SMA against classical optical flow: "estimation
and segmentation of optical flow fields for multiple moving objects
under the rigid motion assumption have been well studied and a parallel
implementation, on the MasPar MP-2, of the Horn and Schunck algorithm
for estimating optical flow is described in [2]".  Horn-Schunck imposes
the global smoothness/continuity constraint that the semi-fluid model
deliberately relaxes, so it is the natural comparison point for the
"which model wins on which motion class" ablations.

Implementation follows Horn & Schunck (1981): brightness-constancy data
term plus quadratic smoothness, solved by Jacobi iteration

    u <- u_bar - Ix (Ix u_bar + Iy v_bar + It) / (alpha^2 + Ix^2 + Iy^2)
    v <- v_bar - Iy (Ix u_bar + Iy v_bar + It) / (alpha^2 + Ix^2 + Iy^2)

with the standard Horn-Schunck derivative and neighborhood-average
stencils.  The SIMD-parallel rendering of the same iteration lives in
:mod:`repro.parallel.parallel_hs` and is tested for exact agreement.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import ndimage

#: Horn-Schunck neighborhood-average stencil (their eq. for u_bar).
AVERAGE_KERNEL = np.array(
    [
        [1.0 / 12.0, 1.0 / 6.0, 1.0 / 12.0],
        [1.0 / 6.0, 0.0, 1.0 / 6.0],
        [1.0 / 12.0, 1.0 / 6.0, 1.0 / 12.0],
    ]
)


def hs_derivatives(
    frame0: np.ndarray, frame1: np.ndarray
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Horn-Schunck Ex, Ey, Et estimated over the 2x2x2 cube."""
    f0 = np.asarray(frame0, dtype=np.float64)
    f1 = np.asarray(frame1, dtype=np.float64)
    if f0.shape != f1.shape:
        raise ValueError("frames must share a shape")
    kx = 0.25 * np.array([[-1.0, 1.0], [-1.0, 1.0]])
    ky = 0.25 * np.array([[-1.0, -1.0], [1.0, 1.0]])
    kt = 0.25 * np.ones((2, 2))
    ex = ndimage.correlate(f0, kx, mode="nearest") + ndimage.correlate(f1, kx, mode="nearest")
    ey = ndimage.correlate(f0, ky, mode="nearest") + ndimage.correlate(f1, ky, mode="nearest")
    et = ndimage.correlate(f1, kt, mode="nearest") - ndimage.correlate(f0, kt, mode="nearest")
    return ex, ey, et


@dataclass(frozen=True)
class HornSchunckResult:
    """Dense flow plus the per-iteration mean update magnitude."""

    u: np.ndarray
    v: np.ndarray
    iterations: int
    convergence: tuple[float, ...]


def horn_schunck(
    frame0: np.ndarray,
    frame1: np.ndarray,
    alpha: float = 1.0,
    iterations: int = 100,
    tolerance: float = 0.0,
    boundary: str = "nearest",
) -> HornSchunckResult:
    """Sequential Horn-Schunck flow between two frames.

    Parameters
    ----------
    alpha:
        Smoothness weight (their regularization constant).
    iterations:
        Maximum Jacobi iterations.
    tolerance:
        Early-exit threshold on the mean update magnitude (0 disables).
    boundary:
        Averaging-stencil boundary mode: ``"nearest"`` (edge replicate,
        the usual choice) or ``"wrap"`` (toroidal -- matches the X-net
        mesh of the parallel implementation exactly).
    """
    if alpha <= 0:
        raise ValueError("alpha must be positive")
    if iterations < 1:
        raise ValueError("iterations must be >= 1")
    if boundary not in ("nearest", "wrap"):
        raise ValueError("boundary must be 'nearest' or 'wrap'")
    ex, ey, et = hs_derivatives(frame0, frame1)
    denom = alpha * alpha + ex * ex + ey * ey
    u = np.zeros_like(ex)
    v = np.zeros_like(ex)
    history: list[float] = []
    done = 0
    for done in range(1, iterations + 1):
        u_bar = ndimage.correlate(u, AVERAGE_KERNEL, mode=boundary)
        v_bar = ndimage.correlate(v, AVERAGE_KERNEL, mode=boundary)
        common = (ex * u_bar + ey * v_bar + et) / denom
        new_u = u_bar - ex * common
        new_v = v_bar - ey * common
        delta = float(np.mean(np.hypot(new_u - u, new_v - v)))
        history.append(delta)
        u, v = new_u, new_v
        if tolerance > 0 and delta < tolerance:
            break
    return HornSchunckResult(u=u, v=v, iterations=done, convergence=tuple(history))
