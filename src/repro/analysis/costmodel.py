"""Timing models regenerating the paper's Tables 2, 4 and Figure 4.

Absolute 1996 wall-clock numbers cannot be *measured* on modern
hardware; the paper's own sequential figures were largely projections
("a projected time of 397.34 days").  This module regenerates them the
same way the paper did -- operation counts times machine rates -- from
two models:

**Parallel (MP-2)** -- :func:`predict_parallel` replays the exact cost
charges of :class:`repro.parallel.parallel_sma.ParallelSMA` (surface
fit, geometric variables, semi-fluid mapping, hypothesis matching) at
any image scale without running the numerics, yielding a Table 2/4
shaped breakdown from the published MP-2 rates.

**Sequential (SGI Onyx R8000/90)** -- :class:`SGISequentialModel` is
calibrated against the paper's *own three anchors* and nothing else:

* Fig. 4's implied per-pixel correspondence time at the 121x121
  template (the paper states multiplying the Fig. 4 per-pixel time by
  the search-window and image pixel counts gives 313 days),
* the Table 2 sequential projection of 397.34 days (the paper
  attributes the 313-vs-397 gap to "the nonlinear scalability factor
  in the timing dependence on the z-Search window parameter" -- modeled
  here as a linear-in-search-rows overhead factor),
* the Table 4 sequential projection of 41.357 hours for the continuous
  model (which fixes the much cheaper continuous per-term cost).

Everything else -- the Fig. 4 curve across template sizes, the Hurricane
Luis throughput, all speed-up figures -- is *predicted* from those
calibrated constants, and the benchmarks assert the predictions retain
the paper's shape (orderings, crossovers, orders of magnitude).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..maspar.cost import CostLedger
from ..maspar.machine import GODDARD_MP2, MachineConfig
from ..maspar.mapping import HierarchicalMapping
from ..maspar.readout import RasterScanReadout, SnakeReadout
from ..params import FREDERIC_CONFIG, GOES9_CONFIG, NeighborhoodConfig, window_pixels
from ..parallel.parallel_sma import ParallelSMA

#: Paper anchors (Section 5).
FREDERIC_SEQUENTIAL_DAYS = 397.34
FREDERIC_FIG4_ESTIMATE_DAYS = 313.0
FREDERIC_PARALLEL_SECONDS = 33472.561776
FREDERIC_SPEEDUP = 1025.0
GOES9_SEQUENTIAL_HOURS = 41.357
GOES9_PARALLEL_SECONDS = 771.218708
GOES9_SPEEDUP = 193.0
LUIS_PARALLEL_MINUTES_PER_PAIR = 6.0
LUIS_SPEEDUP_FLOOR = 150.0

#: Table 2 rows (phase name, seconds) as published.
TABLE2_PAPER_ROWS: tuple[tuple[str, float], ...] = (
    ("Surface fit", 2.503216),
    ("Compute geometric variables", 0.037088),
    ("Semi-fluid mapping", 66.85848),
    ("Hypothesis matching", 33403.162992),
)

#: Table 4 rows as published (surface fit and geometry are merged there).
TABLE4_PAPER_ROWS: tuple[tuple[str, float], ...] = (
    ("Surface fit & compute geometric variables", 2.4609),
    ("Hypothesis matching", 768.7578),
)

SECONDS_PER_DAY = 86400.0
SECONDS_PER_HOUR = 3600.0
PAPER_PIXELS = 512 * 512


def predict_parallel(
    config: NeighborhoodConfig,
    shape: tuple[int, int],
    machine: MachineConfig = GODDARD_MP2,
    readout: RasterScanReadout | SnakeReadout | None = None,
    n_images: int | None = None,
) -> CostLedger:
    """MP-2 cost ledger for one frame pair at any scale, without running.

    Replays exactly the charges :class:`ParallelSMA` would make: the
    per-phase charging methods are shared, and the hypothesis phase is
    charged once per search-window hypothesis.
    """
    h, w = shape
    if h % machine.nyproc or w % machine.nxproc:
        raise ValueError(
            f"image {shape} does not fold onto the {machine.nyproc}x{machine.nxproc} grid"
        )
    driver = ParallelSMA(config, machine=machine, readout=readout)
    mapping = HierarchicalMapping(
        height=h, width=w, nyproc=machine.nyproc, nxproc=machine.nxproc
    )
    ledger = CostLedger(machine)
    if n_images is None:
        n_images = 4 if config.is_semifluid else 2
    driver._charge_surface_fit(ledger, mapping, n_images)
    driver._charge_geometry(ledger, mapping)
    if config.is_semifluid:
        driver._charge_semifluid(ledger, mapping)
    for _ in range(config.hypotheses_per_pixel):
        driver._charge_hypothesis(ledger, mapping)
    return ledger


@dataclass(frozen=True)
class SGISequentialModel:
    """Calibrated sequential (un-optimized) SMA timing on the SGI R8000.

    ``c_ge`` is the cost of one 6x6 Gaussian elimination plus its
    bookkeeping; ``c_term_semifluid`` / ``c_term_continuous`` the cost
    of one eq. (3) error term under each template-mapping model (the
    semi-fluid term carries the per-term F_semi evaluation, hence the
    ~5x premium); ``search_gamma`` the per-search-row overhead factor
    behind the paper's 313-vs-397-day discrepancy.
    """

    c_ge: float
    c_term_semifluid: float
    c_term_continuous: float
    search_gamma: float

    @classmethod
    def calibrated(cls) -> "SGISequentialModel":
        """Derive the constants from the paper's three anchors."""
        c_ge = 1.0e-4  # ~216 flops at the unoptimized code's ~2 MFlops
        # Fig. 4 anchor: per-pixel time at the 121x121 template such that
        # t_p * hypotheses * pixels = 313 days.
        frederic_hyp = FREDERIC_CONFIG.hypotheses_per_pixel  # 169
        frederic_terms = FREDERIC_CONFIG.template_pixels  # 14641
        t_p = (FREDERIC_FIG4_ESTIMATE_DAYS * SECONDS_PER_DAY) / (
            PAPER_PIXELS * frederic_hyp
        )
        c_sf = (t_p - c_ge) / frederic_terms
        # Table 2 anchor: the full projection exceeds the Fig. 4 estimate
        # by the search-window scalability factor.
        gamma = (FREDERIC_SEQUENTIAL_DAYS / FREDERIC_FIG4_ESTIMATE_DAYS - 1.0) / (
            2.0 * FREDERIC_CONFIG.n_zs
        )
        # Table 4 anchor fixes the continuous per-term cost.
        goes9_hyp = GOES9_CONFIG.hypotheses_per_pixel  # 225
        goes9_terms = GOES9_CONFIG.template_pixels  # 225
        goes9_total = GOES9_SEQUENTIAL_HOURS * SECONDS_PER_HOUR
        scal = 1.0 + gamma * 2.0 * GOES9_CONFIG.n_zs
        per_corr = goes9_total / (PAPER_PIXELS * goes9_hyp * scal)
        c_cont = (per_corr - c_ge) / goes9_terms
        if c_sf <= 0 or c_cont <= 0 or gamma <= 0:  # pragma: no cover
            raise ValueError("calibration produced non-physical constants")
        return cls(
            c_ge=c_ge,
            c_term_semifluid=c_sf,
            c_term_continuous=c_cont,
            search_gamma=gamma,
        )

    # -- predictions -----------------------------------------------------------------

    def per_pixel_correspondence_seconds(
        self, n_zt: int, semifluid: bool = True
    ) -> float:
        """Fig. 4's y-axis: time for one pixel correspondence evaluation."""
        terms = window_pixels(n_zt)
        c_term = self.c_term_semifluid if semifluid else self.c_term_continuous
        return self.c_ge + c_term * terms

    def fig4_curve(
        self, template_sides: tuple[int, ...] = (11, 31, 51, 71, 91, 111, 121, 131),
        semifluid: bool = True,
    ) -> list[tuple[int, float]]:
        """(template side, per-pixel seconds) pairs -- the Fig. 4 series."""
        points = []
        for side in template_sides:
            if side < 1 or side % 2 == 0:
                raise ValueError("template sides must be odd and positive")
            points.append(
                (side, self.per_pixel_correspondence_seconds((side - 1) // 2, semifluid))
            )
        return points

    def fig4_estimate_seconds(
        self, config: NeighborhoodConfig, shape: tuple[int, int]
    ) -> float:
        """The paper's Fig.-4-based extrapolation (the 313-day figure).

        "Multiplying the per pixel times with the number of pixels in
        the z-Search window and the number of pixels in the image" --
        no search-window scalability term, hence a slight underestimate.
        """
        h, w = shape
        t_p = self.per_pixel_correspondence_seconds(config.n_zt, config.is_semifluid)
        return t_p * config.hypotheses_per_pixel * h * w

    def total_seconds(self, config: NeighborhoodConfig, shape: tuple[int, int]) -> float:
        """Full sequential projection (the 397-day / 41.357-hour figures)."""
        scal = 1.0 + self.search_gamma * 2.0 * config.n_zs
        return self.fig4_estimate_seconds(config, shape) * scal


def speedup(
    config: NeighborhoodConfig,
    shape: tuple[int, int],
    machine: MachineConfig = GODDARD_MP2,
    sequential: SGISequentialModel | None = None,
) -> float:
    """Modeled parallel speed-up (sequential seconds / MP-2 seconds)."""
    sequential = sequential or SGISequentialModel.calibrated()
    parallel_seconds = predict_parallel(config, shape, machine).total_seconds()
    return sequential.total_seconds(config, shape) / parallel_seconds


def table2_model_rows(
    machine: MachineConfig = GODDARD_MP2,
    readout: RasterScanReadout | SnakeReadout | None = None,
) -> list[tuple[str, float]]:
    """Modeled Table 2 (Hurricane Frederic, full scale) phase rows."""
    ledger = predict_parallel(FREDERIC_CONFIG, (512, 512), machine, readout)
    return ledger.breakdown()


def table4_model_rows(
    machine: MachineConfig = GODDARD_MP2,
    readout: RasterScanReadout | SnakeReadout | None = None,
) -> list[tuple[str, float]]:
    """Modeled Table 4 (GOES-9 Florida, full scale) phase rows."""
    ledger = predict_parallel(GOES9_CONFIG, (512, 512), machine, readout, n_images=2)
    return ledger.breakdown()
