"""Multi-frame tracer trajectories through per-pair motion fields.

The paper's end product is *cloud tracking*: following identified
features across a whole sequence (Fig. 6 shows four timesteps; Luis ran
490 frames).  A per-pair dense motion field advances a tracer one frame
step; chaining fields integrates full trajectories, with bilinear
sampling of the field between pixels and validity checking along the
way.

:func:`integrate` advances seed points through a list of
:class:`~repro.core.field.MotionField`; :class:`Trajectory` carries the
per-step positions and liveness; :func:`trajectory_speeds` converts
paths to wind-speed series.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.field import MotionField


def sample_bilinear(field_component: np.ndarray, x: np.ndarray, y: np.ndarray) -> np.ndarray:
    """Bilinear interpolation of a per-pixel field at fractional points."""
    field_component = np.asarray(field_component, dtype=np.float64)
    h, w = field_component.shape
    x = np.clip(np.asarray(x, dtype=np.float64), 0.0, w - 1.0)
    y = np.clip(np.asarray(y, dtype=np.float64), 0.0, h - 1.0)
    x0 = np.floor(x).astype(np.int64)
    y0 = np.floor(y).astype(np.int64)
    x1 = np.minimum(x0 + 1, w - 1)
    y1 = np.minimum(y0 + 1, h - 1)
    tx = x - x0
    ty = y - y0
    return (
        field_component[y0, x0] * (1 - tx) * (1 - ty)
        + field_component[y0, x1] * tx * (1 - ty)
        + field_component[y1, x0] * (1 - tx) * ty
        + field_component[y1, x1] * tx * ty
    )


@dataclass
class Trajectory:
    """Tracer paths: positions (n_steps+1, n_points, 2) as (x, y), and
    per-point liveness (False once a tracer leaves the valid region)."""

    positions: np.ndarray
    alive: np.ndarray
    dt_seconds: tuple[float, ...]

    @property
    def n_points(self) -> int:
        return self.positions.shape[1]

    @property
    def n_steps(self) -> int:
        return self.positions.shape[0] - 1

    def displacements(self) -> np.ndarray:
        """Per-step (dx, dy), shape (n_steps, n_points, 2)."""
        return np.diff(self.positions, axis=0)

    def total_displacement(self) -> np.ndarray:
        """End-to-start displacement per tracer, shape (n_points, 2)."""
        return self.positions[-1] - self.positions[0]

    def path_length(self) -> np.ndarray:
        """Arc length of each tracer's path (pixels)."""
        steps = self.displacements()
        return np.hypot(steps[..., 0], steps[..., 1]).sum(axis=0)


def integrate(
    fields: list[MotionField], seeds: np.ndarray, stop_on_invalid: bool = True
) -> Trajectory:
    """Advance seed points through consecutive per-pair motion fields.

    Parameters
    ----------
    fields:
        T-1 motion fields for a T-frame sequence, in order.
    seeds:
        (n, 2) float array of (x, y) start positions in frame 0.
    stop_on_invalid:
        When True, a tracer that lands outside the valid region is
        frozen (its remaining positions repeat and ``alive`` goes
        False); when False it keeps integrating on clamped samples.
    """
    if not fields:
        raise ValueError("need at least one motion field")
    seeds = np.asarray(seeds, dtype=np.float64)
    if seeds.ndim != 2 or seeds.shape[1] != 2:
        raise ValueError("seeds must be (n, 2) as (x, y)")
    shape = fields[0].shape
    for f in fields:
        if f.shape != shape:
            raise ValueError("all motion fields must share a shape")

    n = seeds.shape[0]
    positions = np.empty((len(fields) + 1, n, 2), dtype=np.float64)
    positions[0] = seeds
    alive = np.ones(n, dtype=bool)

    for step, field in enumerate(fields):
        x = positions[step, :, 0]
        y = positions[step, :, 1]
        if stop_on_invalid:
            xi = np.clip(np.round(x).astype(np.int64), 0, shape[1] - 1)
            yi = np.clip(np.round(y).astype(np.int64), 0, shape[0] - 1)
            alive = alive & field.valid[yi, xi]
        du = sample_bilinear(field.u, x, y)
        dv = sample_bilinear(field.v, x, y)
        positions[step + 1, :, 0] = np.where(alive, x + du, x)
        positions[step + 1, :, 1] = np.where(alive, y + dv, y)

    return Trajectory(
        positions=positions,
        alive=alive,
        dt_seconds=tuple(f.dt_seconds for f in fields),
    )


def trajectory_speeds(trajectory: Trajectory, pixel_km: float = 1.0) -> np.ndarray:
    """Per-step wind speeds (m/s), shape (n_steps, n_points)."""
    if pixel_km <= 0:
        raise ValueError("pixel_km must be positive")
    steps = trajectory.displacements()
    meters = np.hypot(steps[..., 0], steps[..., 1]) * pixel_km * 1000.0
    dts = np.asarray(trajectory.dt_seconds, dtype=np.float64)[:, None]
    return meters / dts
