"""Exploring the MasPar MP-2 machine model (Section 3-4).

Walks through the simulator's substrate the way the paper's Sections 3
and 4 do: the PE array and its published rates, the 2-D hierarchical
data mapping, the two neighborhood read-out schemes, the 64 KB memory
wall and segmentation, and a genuine plural program (parallel
Horn-Schunck) with exact sequential agreement.

Run:  python examples/maspar_simulation.py
"""

import numpy as np

from repro.analysis.baselines import horn_schunck
from repro.analysis.report import format_table
from repro.data.noise import smooth_random_field
from repro.maspar import (
    GODDARD_MP2,
    HierarchicalMapping,
    RasterScanReadout,
    SnakeReadout,
    scaled_machine,
)
from repro.parallel import (
    max_feasible_segment_rows,
    parallel_horn_schunck,
    plan,
    template_mapping_bytes,
)
from repro.params import FREDERIC_CONFIG, NeighborhoodConfig


def main() -> None:
    m = GODDARD_MP2
    print("=== The NASA Goddard MasPar MP-2 (Section 3.1) ===")
    rows = [
        ("PE array", f"{m.nyproc} x {m.nxproc} = {m.n_pes} PEs"),
        ("clock", f"{m.clock_hz / 1e6:.1f} MHz ({m.cycle_seconds * 1e9:.0f} ns cycle)"),
        ("PE memory", f"{m.pe_memory_bytes // 1024} KiB ({m.total_memory_bytes >> 30} GiB aggregate)"),
        ("double-precision", f"{m.flops_double / 1e9:.1f} GFlops sustained"),
        ("X-net", f"{m.xnet_bw / 2**30:.1f} GiB/s"),
        ("router", f"{m.router_bw / 2**30:.1f} GiB/s (X-net is {m.xnet_router_ratio:.0f}x faster)"),
        ("MPDA disk", f"{m.disk_bw / 2**20:.0f} MiB/s sustained"),
    ]
    print(format_table(rows))

    print("=== 2-D hierarchical data mapping (Section 3.2, eq. 12-13) ===")
    mapping = HierarchicalMapping(height=512, width=512, nyproc=128, nxproc=128)
    print(f"512 x 512 image -> {mapping.layers} pixels (memory layers) per PE")
    for (x, y) in [(0, 0), (3, 2), (511, 511), (100, 255)]:
        iy, ix, mem = mapping.to_pe(x, y)
        print(f"  pixel ({x:3d},{y:3d}) -> PE ({int(iy):3d},{int(ix):3d}) layer {int(mem):2d}")

    print("\n=== Neighborhood read-out (Section 4.2, Fig. 3) ===")
    for half, label in [(6, "13x13 z-search"), (60, "121x121 z-template")]:
        snake = SnakeReadout().stats(mapping, half)
        raster = RasterScanReadout().stats(mapping, half)
        t_s = snake.seconds(m.xnet_bw, m.mem_direct_bw)
        t_r = raster.seconds(m.xnet_bw, m.mem_direct_bw)
        winner = "raster" if t_r < t_s else "snake"
        print(f"  {label}: snake {t_s * 1e3:8.2f} ms, raster {t_r * 1e3:8.2f} ms -> {winner}")
    print("  (the paper adopted the raster-scan scheme)")

    print("\n=== The 64 KB memory wall (Section 4.3) ===")
    over = template_mapping_bytes(search_half_width=11, layers=16)
    print(f"  23x23 search, 16 layers: {over} B = {over / 1000:.1f} KB "
          f"> {m.pe_memory_bytes} B -- the paper's sizing example")
    frederic = plan(FREDERIC_CONFIG, layers=16)
    print(f"  Table 1 (13x13 search) unsegmented: {frederic.total_bytes} B -> fits: "
          f"{frederic.fits(m.pe_memory_bytes)}")
    cfg23 = NeighborhoodConfig(n_w=2, n_zs=11, n_zt=60, n_ss=1, n_st=2)
    z = max_feasible_segment_rows(cfg23, 16, m)
    print(f"  23x23 search: largest feasible segment Z = {z} rows "
          f"(paper segmented at Z = 2)")

    print("\n=== A real plural program: parallel Horn-Schunck (ref. [2]) ===")
    size = 64
    f0 = smooth_random_field(size, seed=3, smoothing=2.0)
    f1 = np.roll(f0, 1, axis=1)
    machine = scaled_machine(size, size)
    par = parallel_horn_schunck(f0, f1, machine=machine, iterations=50)
    seq = horn_schunck(f0, f1, iterations=50, boundary="wrap")
    diff = max(np.abs(par.u - seq.u).max(), np.abs(par.v - seq.v).max())
    print(f"  50 Jacobi iterations on a {size}x{size} PE array")
    print(f"  max |parallel - sequential| = {diff:.2e}  (exact agreement)")
    for phase, seconds in par.ledger.breakdown():
        print(f"  modeled {phase:18s}: {seconds * 1e3:.3f} ms")
    print("OK")


if __name__ == "__main__":
    main()
