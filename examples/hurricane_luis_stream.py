"""Hurricane Luis: streaming a dense sequence through the disk array.

The paper processed 490 GOES-9 frames at ~1.5-minute cadence -- far
more data than the 1 GB of PE memory holds -- by exploiting the MPDA's
30 MB/s sustained throughput (Section 3.1).  This example streams a
reduced Luis sequence through the :class:`ParallelDiskArray`, tracks
every consecutive pair with the continuous model (the paper's 11x11
template / 9x9 search choice), and reports throughput both measured
(this machine) and modeled (the MP-2 at full 512x512 scale).

Run:  python examples/hurricane_luis_stream.py
"""

import time

import numpy as np

from repro import SMAnalyzer
from repro.analysis.costmodel import SGISequentialModel, predict_parallel, speedup
from repro.data import hurricane_luis
from repro.maspar import CostLedger, GODDARD_MP2, ParallelDiskArray
from repro.params import LUIS_CONFIG

SIZE = 64
N_FRAMES = 6


def main() -> None:
    print("=== Hurricane Luis dense-sequence streaming ===")
    ds = hurricane_luis(size=SIZE, n_frames=N_FRAMES, seed=1995_09)
    config = ds.config.replace(n_zs=2, n_zt=3)
    analyzer = SMAnalyzer(config, pixel_km=ds.pixel_km)

    # 1. Ingest the sequence onto the (simulated) parallel disk array.
    ledger = CostLedger(GODDARD_MP2)
    disk = ParallelDiskArray(GODDARD_MP2, ledger=ledger)
    for m, frame in enumerate(ds.frames):
        disk.write_frame(f"luis-{m:03d}", np.asarray(frame.surface))
    print(f"ingested {len(disk)} frames ({disk.stored_bytes / 2**20:.1f} MiB) "
          f"-> modeled MPDA write time {disk.transfer_seconds(disk.bytes_written):.3f} s")

    # 2. Stream pairs off disk and track.
    u_true, v_true = ds.truth_uv()
    start = time.perf_counter()
    fields = []
    for m in range(N_FRAMES - 1):
        f0 = disk.read_frame(f"luis-{m:03d}")
        f1 = disk.read_frame(f"luis-{m + 1:03d}")
        fields.append(analyzer.track_pair(f0, f1, dt_seconds=ds.dt_seconds))
    elapsed = time.perf_counter() - start
    rmses = [f.rmse_against(u_true, v_true) for f in fields]
    print(f"tracked {len(fields)} pairs in {elapsed:.2f} s "
          f"({elapsed / len(fields):.2f} s/pair on this machine)")
    print(f"RMSE vs truth per pair: {', '.join(f'{r:.2f}' for r in rmses)} px")

    # 3. Model the paper's full campaign: 490 frames, 512x512, MP-2.
    per_pair = predict_parallel(LUIS_CONFIG, (512, 512), n_images=2).total_seconds()
    s = speedup(LUIS_CONFIG, (512, 512))
    seq_hours = SGISequentialModel.calibrated().total_seconds(LUIS_CONFIG, (512, 512)) / 3600
    campaign_hours = per_pair * 489 / 3600
    print("\nfull-scale model (512x512 on the 16K-PE MP-2):")
    print(f"  {per_pair / 60:.2f} min per pair (paper: ~6 min)")
    print(f"  speed-up over the SGI sequential projection: {s:.0f}x (paper: > 150x)")
    print(f"  sequential would need {seq_hours:.1f} h per pair; "
          f"the parallel campaign takes ~{campaign_hours:.0f} h for all 489 pairs")
    print("OK")


if __name__ == "__main__":
    main()
