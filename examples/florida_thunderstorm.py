"""GOES-9 Florida thunderstorm: monocular rapid-scan tracking (Section 5.2).

A dense ~1-minute-cadence sequence with no stereo: "the intensity
images were treated as digital surfaces".  Tracks four consecutive
pairs with the continuous model (Table 3 windows), renders Fig. 6
style vector panels, and refines to sub-pixel with the extension.

Run:  python examples/florida_thunderstorm.py
"""

import numpy as np

from repro import SMAnalyzer
from repro.analysis.report import ascii_quiver
from repro.core.matching import prepare_frames, track_dense
from repro.data import florida_thunderstorm
from repro.data.noise import cloud_mask
from repro.extensions import refine

SIZE = 96


def main() -> None:
    print("=== GOES-9 Florida thunderstorm rapid scan ===")
    ds = florida_thunderstorm(size=SIZE, n_frames=5, seed=1995)
    config = ds.config.replace(n_zs=3, n_zt=4)  # Table 3 windows, reduced scale
    analyzer = SMAnalyzer(config, pixel_km=ds.pixel_km)
    u_true, v_true = ds.truth_uv()

    print(f"{ds.n_frames} frames at {ds.dt_seconds:.0f} s cadence, "
          f"continuous model ({config.hypotheses_per_pixel} hypotheses/pixel)")

    for m in range(4):
        frame0 = np.asarray(ds.frames[m].surface, dtype=float)
        frame1 = np.asarray(ds.frames[m + 1].surface, dtype=float)
        prepared = prepare_frames(frame0, frame1, config)
        integer = track_dense(prepared)
        subpixel = refine(prepared, integer)

        def field_rmse(result):
            err = np.hypot(result.u - u_true, result.v - v_true)[result.valid]
            return float(np.sqrt((err**2).mean()))

        print(f"pair {m}->{m + 1}: RMSE {field_rmse(integer):.3f} px integer, "
              f"{field_rmse(subpixel):.3f} px sub-pixel refined")

    # Fig. 6 style panel for the first pair: arrows over cloudy pixels.
    field = analyzer.track_pair(ds.frames[0], ds.frames[1])
    cloudy = cloud_mask(np.asarray(ds.frames[0].surface), coverage=0.5)
    print("\nFig. 6 style quiver (every 6th pixel, cloudy regions):")
    print(ascii_quiver(field.u, field.v, mask=field.valid & cloudy, stride=6))
    print("OK")


if __name__ == "__main__":
    main()
