"""Hurricane Frederic: the paper's full stereo pipeline (Section 5.1).

GOES-6/GOES-7 stereo pairs -> rectification -> hierarchical ASA
disparity -> cloud-top height maps -> semi-fluid motion tracking ->
wind-barb comparison.  Everything the 1979 campaign did, on a synthetic
hurricane with exact ground truth.

Run:  python examples/hurricane_frederic.py
"""

import numpy as np
from scipy import ndimage

from repro import Frame, SMAnalyzer
from repro.data import barbs_for_dataset, hurricane_frederic, rms_vector_error
from repro.stereo import ASAConfig, estimate_disparity, rectify_pair, surface_map

SIZE = 96


def main() -> None:
    print("=== Hurricane Frederic stereo pipeline ===")
    ds = hurricane_frederic(size=SIZE, n_frames=2, seed=1979)
    geometry = ds.stereo_pairs[0].geometry
    print(f"baseline geometry : {geometry.parallax_factor:.2f} km disparity per km height")
    print(f"frame interval    : {ds.dt_seconds / 60:.1f} min, pixels {ds.pixel_km:.1f} km")

    # 1. Stereo analysis per timestep: rectify, then coarse-to-fine ASA.
    asa_config = ASAConfig(levels=3, coarse_search=4, refine_search=2)
    heights = []
    for t, pair in enumerate(ds.stereo_pairs):
        right_rect, model = rectify_pair(pair.left, pair.right)
        result = estimate_disparity(pair.left, right_rect, asa_config)
        z = np.asarray(geometry.height_from_disparity(result.disparity))
        # regularize stereo noise before differential-geometry tracking
        z = ndimage.gaussian_filter(z, 2.0)
        true_z = ds.scenes[t].height_km
        err = np.abs(z - true_z)[12:-12, 12:-12]
        print(f"t={t}: rectification shift {model.vertical_shift:+.0f} px, "
              f"height error {err.mean():.2f} km mean / {np.quantile(err, 0.9):.2f} km p90")
        heights.append(z)

    # 2. Semi-fluid motion tracking on the estimated surfaces.
    config = ds.config.replace(n_zs=3, n_zt=4)  # Table 1 windows, reduced scale
    analyzer = SMAnalyzer(config, pixel_km=ds.pixel_km)
    field = analyzer.track_pair(
        Frame(heights[0], intensity=ds.scenes[0].intensity),
        Frame(heights[1], intensity=ds.scenes[1].intensity),
        dt_seconds=ds.dt_seconds,
    )

    # 3. The paper's evaluation: 32 wind barbs at trackable features.
    barbs = barbs_for_dataset(ds, field.valid, seed=12)
    estimated = field.sample(barbs.points)
    rmse = rms_vector_error(estimated, barbs.truth_uv)
    print(f"\n32 wind barbs, RMSE vs truth: {rmse:.3f} px "
          "(paper: < 1 px against manual estimates)")

    winds = field.wind_vectors(barbs.points)
    print("sample barbs (pixel -> speed, direction):")
    for (x, y), (speed, direction) in list(zip(barbs.points, winds))[:5]:
        print(f"  ({x:3d},{y:3d}) -> {speed:6.1f} m/s from {direction:5.1f} deg")

    assert rmse < 2.0
    print("OK")


if __name__ == "__main__":
    main()
