"""Quickstart: dense non-rigid motion from a pair of cloud images.

Generates a small synthetic cloud scene moving under a known flow,
tracks it with the Semi-fluid Motion Analysis algorithm, and compares
against the exact ground truth.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import SMAnalyzer, NeighborhoodConfig
from repro.data import RankineVortex, advect, hurricane_scene

SIZE = 96


def main() -> None:
    # 1. A synthetic hurricane scene and a known rotational flow.
    scene = hurricane_scene(SIZE, seed=7)
    center = ((SIZE - 1) / 2.0, (SIZE - 1) / 2.0)
    flow = RankineVortex(center=center, peak=2.0, core_radius=SIZE / 5.0)
    frame0 = scene.intensity
    frame1 = advect(frame0, flow)

    # 2. Configure the analyzer.  n_ss > 0 selects the semi-fluid
    #    template mapping; n_ss = 0 would be the continuous model.
    config = NeighborhoodConfig(n_w=2, n_zs=3, n_zt=4, n_ss=1, n_st=2, name="quickstart")
    analyzer = SMAnalyzer(config, pixel_km=4.0)

    # 3. Track (monocular mode: the intensity image is the surface).
    field = analyzer.track_pair(frame0, frame1, dt_seconds=450.0)

    # 4. Compare against the exact truth.
    u_true, v_true = flow.grid(SIZE, SIZE)
    rmse = field.rmse_against(u_true, v_true)
    mean_u, mean_v = field.mean_displacement()
    print(f"tracked {int(field.valid.sum())} pixels "
          f"({config.hypotheses_per_pixel} hypotheses each)")
    print(f"mean displacement : ({mean_u:+.2f}, {mean_v:+.2f}) px")
    print(f"RMSE vs truth     : {rmse:.3f} px  (paper regime: < 1 px)")

    # 5. Wind products, the paper's application.
    speeds = field.wind_speed()[field.valid]
    print(f"wind speeds       : {speeds.mean():.1f} m/s mean, "
          f"{speeds.max():.1f} m/s max")

    assert rmse < 1.0
    print("OK")


if __name__ == "__main__":
    main()
