"""Operational wind products: classification, diagnostics, trajectories.

The meteorological payoff of the SMA algorithm (Section 1: winds "for
meteorological weather forecasting, analysis, modeling and
assimilation").  This example runs the tracker over a multi-frame
hurricane sequence and derives the downstream products:

* per-cloud-class wind statistics (the paper's §6 cloud-classification
  direction),
* match-confidence maps from the hypothesis error volume,
* multi-frame tracer trajectories with view-geometry-corrected speeds
  (border pixels span ~4 sq-km vs ~1 sq-km at center -- Section 5.1).

Run:  python examples/wind_products.py
"""

import numpy as np

from repro import SMAnalyzer
from repro.analysis import integrate, peak_ratio, trajectory_speeds
from repro.core.matching import prepare_frames
from repro.data import hurricane_luis, pixel_scale_map, wind_speed_map
from repro.extensions import CloudClass, class_motion_statistics, classify
from repro.extensions.subpixel import track_dense_with_volume

SIZE = 80
N_FRAMES = 5


def main() -> None:
    print("=== SMA wind products ===")
    ds = hurricane_luis(size=SIZE, n_frames=N_FRAMES, seed=7)
    cfg = ds.config.replace(n_zs=2, n_zt=3)
    analyzer = SMAnalyzer(cfg, pixel_km=ds.pixel_km)

    # 1. Track the sequence.
    fields = analyzer.track_sequence(ds.frames)
    print(f"tracked {len(fields)} pairs at {ds.dt_seconds:.0f} s cadence")

    # 2. Cloud classification and per-class winds (first pair).
    # Monocular mode: build a height proxy from intensity for the classes.
    intensity = np.asarray(ds.frames[0].surface)
    height_proxy = 12.0 * intensity  # bright tops are high tops
    labels = classify(height_proxy, intensity)
    stats = class_motion_statistics(fields[0], labels)
    print("\nper-class winds (pair 0):")
    for s in stats:
        if s.pixels == 0:
            continue
        print(f"  {CloudClass(s.label).name:10s}: {s.pixels:5d} px, "
              f"{s.mean_speed_mps:5.1f} m/s mean "
              f"(u={s.mean_u:+.2f}, v={s.mean_v:+.2f} px)")

    # 3. Match confidence from the hypothesis error volume.
    prep = prepare_frames(
        np.asarray(ds.frames[0].surface, float),
        np.asarray(ds.frames[1].surface, float),
        cfg,
    )
    result, volume = track_dense_with_volume(prep)
    ratio = peak_ratio(volume)
    confident = (ratio < 0.5) & result.valid
    print(f"\nconfident matches: {100 * confident.sum() / result.valid.sum():.0f}% "
          "of valid pixels (peak ratio < 0.5)")

    # 4. Tracer trajectories through the sequence.
    c = SIZE / 2
    seeds = np.array([[c + 12.0, c], [c, c + 12.0], [c - 12.0, c]])
    traj = integrate(fields, seeds)
    speeds = trajectory_speeds(traj, pixel_km=ds.pixel_km)
    print(f"\ntrajectories over {traj.n_steps} steps:")
    for i in range(traj.n_points):
        x0, y0 = traj.positions[0, i]
        x1, y1 = traj.positions[-1, i]
        print(f"  tracer {i}: ({x0:.0f},{y0:.0f}) -> ({x1:.1f},{y1:.1f}), "
              f"path {traj.path_length()[i]:.1f} px, "
              f"mean {speeds[:, i].mean():.1f} m/s")

    # 5. View-geometry correction: the same displacement is a faster
    # wind at the image border.
    scale = pixel_scale_map(SIZE, center_gsd_km=ds.pixel_km)
    speed_map = wind_speed_map(fields[0].u, fields[0].v, scale, ds.dt_seconds)
    flat_speed = fields[0].wind_speed()
    m = fields[0].valid
    print(f"\nview-geometry correction: flat-scale mean "
          f"{flat_speed[m].mean():.1f} m/s vs corrected {speed_map[m].mean():.1f} m/s "
          f"(border pixels span ~{(scale[0, 0] / scale[SIZE // 2, SIZE // 2]) ** 2:.1f}x the area)")
    print("OK")


if __name__ == "__main__":
    main()
